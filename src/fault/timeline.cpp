#include "fault/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace mpleo::fault {
namespace {

// Exponential draw with mean `mean_s`; never exactly zero so alternating
// up/down edges stay strictly ordered.
double draw_exponential(util::Xoshiro256PlusPlus& rng, double mean_s) {
  const double u = rng.uniform();  // in [0, 1)
  return -mean_s * std::log1p(-u);
}

}  // namespace

const char* to_string(AssetKind kind) noexcept {
  switch (kind) {
    case AssetKind::kSatellite: return "satellite";
    case AssetKind::kGroundStation: return "ground-station";
  }
  return "?";
}

FaultTimeline::FaultTimeline(const orbit::TimeGrid& grid, std::size_t satellite_count,
                             std::size_t station_count)
    : grid_(grid), satellite_out_(satellite_count), station_out_(station_count) {
  if (grid.count == 0) {
    throw std::invalid_argument("FaultTimeline: empty time grid");
  }
  if (!(grid.step_seconds > 0.0)) {
    throw std::invalid_argument("FaultTimeline: grid step must be positive");
  }
}

std::vector<core::ConfigIssue> FaultTimeline::validate_window(double start_offset_s,
                                                              double end_offset_s) {
  std::vector<core::ConfigIssue> issues;
  if (!(start_offset_s >= 0.0) || !std::isfinite(start_offset_s)) {
    issues.push_back({"fault.timeline", "start_offset_s",
                      "must be finite and >= 0, got " + std::to_string(start_offset_s)});
  }
  if (!(end_offset_s > start_offset_s)) {
    issues.push_back({"fault.timeline", "end_offset_s",
                      "must be > start (" + std::to_string(start_offset_s) + "), got " +
                          std::to_string(end_offset_s) + " — inverted or empty window"});
  }
  return issues;
}

void FaultTimeline::add_outage(AssetKind kind, std::size_t index,
                               double start_offset_s, double end_offset_s) {
  auto& masks = kind == AssetKind::kSatellite ? satellite_out_ : station_out_;
  if (index >= masks.size()) {
    throw std::invalid_argument("FaultTimeline: asset index out of range");
  }
  core::throw_if_invalid("fault::FaultTimeline outage",
                         validate_window(start_offset_s, end_offset_s));
  cov::StepMask& mask = masks[index];
  if (mask.step_count() == 0) mask = cov::StepMask(grid_.count);

  // Step k samples the instant k * step; it is out when that instant falls
  // inside [start, end).
  const double step = grid_.step_seconds;
  const auto k_begin =
      static_cast<std::size_t>(std::max(0.0, std::ceil(start_offset_s / step)));
  const auto k_end = static_cast<std::size_t>(
      std::min(static_cast<double>(grid_.count), std::ceil(end_offset_s / step)));
  for (std::size_t k = k_begin; k < k_end; ++k) mask.set(k);

  records_.push_back({kind, index, start_offset_s, end_offset_s});
}

void FaultTimeline::add_satellite_outage(std::size_t satellite, double start_offset_s,
                                         double end_offset_s) {
  add_outage(AssetKind::kSatellite, satellite, start_offset_s, end_offset_s);
}

void FaultTimeline::add_station_outage(std::size_t station, double start_offset_s,
                                       double end_offset_s) {
  add_outage(AssetKind::kGroundStation, station, start_offset_s, end_offset_s);
}

void FaultTimeline::add_transponder_degradation(std::size_t satellite,
                                                double start_offset_s,
                                                double end_offset_s,
                                                double capacity_factor) {
  if (satellite >= satellite_out_.size()) {
    throw std::invalid_argument("FaultTimeline: satellite index out of range");
  }
  std::vector<core::ConfigIssue> issues = validate_window(start_offset_s, end_offset_s);
  if (!(capacity_factor > 0.0) || capacity_factor > 1.0) {
    issues.push_back({"fault.timeline", "capacity_factor",
                      "must be in (0, 1] (use an outage for 0), got " +
                          std::to_string(capacity_factor)});
  }
  core::throw_if_invalid("fault::FaultTimeline degradation", issues);
  degradations_.push_back({satellite, start_offset_s, end_offset_s, capacity_factor});
}

FaultTimeline FaultTimeline::stochastic(const orbit::TimeGrid& grid,
                                        std::size_t satellite_count,
                                        std::size_t station_count,
                                        const MtbfMttr& satellite_model,
                                        const MtbfMttr& station_model,
                                        std::uint64_t seed) {
  if (satellite_model.mtbf_seconds < 0.0 || satellite_model.mttr_seconds < 0.0 ||
      station_model.mtbf_seconds < 0.0 || station_model.mttr_seconds < 0.0) {
    throw std::invalid_argument("FaultTimeline: MTBF/MTTR must be non-negative");
  }
  FaultTimeline timeline(grid, satellite_count, station_count);
  const double window = grid.duration_seconds();
  const util::Xoshiro256PlusPlus base(seed);

  // Stream layout: satellite i -> child 2i, station i -> child 2i + 1, so
  // an asset's history never shifts when the other class grows.
  const auto fill = [&](AssetKind kind, std::size_t count, const MtbfMttr& model) {
    if (model.mtbf_seconds <= 0.0) return;
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t child =
          2 * static_cast<std::uint64_t>(i) + (kind == AssetKind::kSatellite ? 0 : 1);
      util::Xoshiro256PlusPlus stream = base.split(child);
      double t = 0.0;
      while (true) {
        t += draw_exponential(stream, model.mtbf_seconds);
        if (t >= window) break;
        const double down = draw_exponential(stream, model.mttr_seconds);
        const double end = std::min(t + down, window);
        if (end > t) timeline.add_outage(kind, i, t, end);
        t += down;
      }
    }
  };
  fill(AssetKind::kSatellite, satellite_count, satellite_model);
  fill(AssetKind::kGroundStation, station_count, station_model);
  return timeline;
}

bool FaultTimeline::satellite_available(std::size_t satellite,
                                        std::size_t step) const noexcept {
  const cov::StepMask* out = satellite_outage_steps(satellite);
  return out == nullptr || step >= out->step_count() || !out->test(step);
}

bool FaultTimeline::station_available(std::size_t station,
                                      std::size_t step) const noexcept {
  const cov::StepMask* out = station_outage_steps(station);
  return out == nullptr || step >= out->step_count() || !out->test(step);
}

double FaultTimeline::satellite_capacity_factor(std::size_t satellite,
                                                std::size_t step) const noexcept {
  if (!satellite_available(satellite, step)) return 0.0;
  double factor = 1.0;
  const double t = grid_.step_seconds * static_cast<double>(step);
  for (const Degradation& d : degradations_) {
    if (d.satellite_index == satellite && t >= d.start_offset_s && t < d.end_offset_s) {
      factor *= d.capacity_factor;
    }
  }
  return factor;
}

int FaultTimeline::degraded_beam_count(std::size_t satellite, std::size_t step,
                                       int nominal_beams) const noexcept {
  const double factor = satellite_capacity_factor(satellite, step);
  if (factor >= 1.0) return nominal_beams;  // full health: exactly nominal
  if (factor <= 0.0) return 0;
  const int beams = static_cast<int>(
      std::floor(static_cast<double>(nominal_beams) * factor + 1e-9));
  return std::clamp(beams, 0, nominal_beams);
}

const cov::StepMask* FaultTimeline::satellite_outage_steps(
    std::size_t satellite) const noexcept {
  if (satellite >= satellite_out_.size()) return nullptr;
  const cov::StepMask& mask = satellite_out_[satellite];
  return mask.step_count() == 0 ? nullptr : &mask;
}

const cov::StepMask* FaultTimeline::station_outage_steps(
    std::size_t station) const noexcept {
  if (station >= station_out_.size()) return nullptr;
  const cov::StepMask& mask = station_out_[station];
  return mask.step_count() == 0 ? nullptr : &mask;
}

cov::StepMask FaultTimeline::satellite_availability(std::size_t satellite) const {
  cov::StepMask available(grid_.count);
  for (std::size_t k = 0; k < grid_.count; ++k) available.set(k);
  if (const cov::StepMask* out = satellite_outage_steps(satellite)) {
    available.subtract(*out);
  }
  return available;
}

void FaultTimeline::normalize() {
  if (records_.empty()) return;
  const double window = grid_.duration_seconds();
  // Clip to the grid window first; records entirely outside it vanish.
  std::vector<OutageRecord> clipped;
  clipped.reserve(records_.size());
  for (const OutageRecord& r : records_) {
    const double start = std::max(0.0, r.start_offset_s);
    const double end = std::min(window, r.end_offset_s);
    if (end > start) clipped.push_back({r.kind, r.asset_index, start, end});
  }
  std::sort(clipped.begin(), clipped.end(),
            [](const OutageRecord& a, const OutageRecord& b) {
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.asset_index != b.asset_index) return a.asset_index < b.asset_index;
              if (a.start_offset_s != b.start_offset_s) {
                return a.start_offset_s < b.start_offset_s;
              }
              return a.end_offset_s < b.end_offset_s;
            });
  // Merge overlapping or touching records of the same asset.
  std::vector<OutageRecord> merged;
  merged.reserve(clipped.size());
  for (const OutageRecord& r : clipped) {
    if (!merged.empty()) {
      OutageRecord& last = merged.back();
      if (last.kind == r.kind && last.asset_index == r.asset_index &&
          r.start_offset_s <= last.end_offset_s) {
        last.end_offset_s = std::max(last.end_offset_s, r.end_offset_s);
        continue;
      }
    }
    merged.push_back(r);
  }
  records_ = std::move(merged);
}

std::vector<FaultEvent> FaultTimeline::events() const {
  const double window = grid_.duration_seconds();
  std::vector<FaultEvent> out;
  out.reserve(2 * records_.size());
  for (const OutageRecord& record : records_) {
    if (record.start_offset_s >= window) continue;
    out.push_back({record.start_offset_s, record.kind, record.asset_index, true});
    out.push_back(
        {std::min(record.end_offset_s, window), record.kind, record.asset_index, false});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return out;
}

std::vector<double> FaultTimeline::outage_seconds_by_party(
    std::span<const std::uint32_t> satellite_owner,
    std::span<const std::uint32_t> station_owner, std::size_t party_count) const {
  std::vector<double> totals(party_count, 0.0);
  const double window = grid_.duration_seconds();
  for (const OutageRecord& record : records_) {
    const auto owners =
        record.kind == AssetKind::kSatellite ? satellite_owner : station_owner;
    if (record.asset_index >= owners.size()) continue;
    const std::uint32_t party = owners[record.asset_index];
    if (party >= party_count) continue;  // kUnowned and out-of-range skip
    const double start = std::max(0.0, record.start_offset_s);
    const double end = std::min(window, record.end_offset_s);
    if (end > start) totals[party] += end - start;
  }
  return totals;
}

}  // namespace mpleo::fault
