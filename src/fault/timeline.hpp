// Fault injection: per-asset availability timelines over a TimeGrid (§3.4).
//
// The paper's robustness argument is about parties and satellites *leaving*;
// until this layer the repo only modeled permanent, instantaneous withdrawal.
// A FaultTimeline makes failure a first-class simulated input — satellite
// outages, ground-station outages, and partial transponder degradation —
// built either from explicit deterministic schedules or from seeded
// exponential MTBF/MTTR processes (one util::Xoshiro256PlusPlus::split
// stream per asset, so asset i's fault history depends only on the seed and
// its index, never on how many other assets exist). Outages materialize as
// StepMask-compatible masks the coverage, scheduler, SLA, and reputation
// layers intersect with; an empty timeline leaves every consumer bit-
// identical to the no-fault code path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/validation.hpp"
#include "coverage/step_mask.hpp"
#include "orbit/time.hpp"

namespace mpleo::fault {

enum class AssetKind : std::uint8_t { kSatellite, kGroundStation };

[[nodiscard]] const char* to_string(AssetKind kind) noexcept;

// One contiguous full outage of one asset, in seconds from grid start.
struct OutageRecord {
  AssetKind kind = AssetKind::kSatellite;
  std::size_t asset_index = 0;
  double start_offset_s = 0.0;
  double end_offset_s = 0.0;  // exclusive

  [[nodiscard]] double duration_s() const noexcept {
    return end_offset_s - start_offset_s;
  }
};

// Partial transponder degradation: the satellite stays up but only
// `capacity_factor` of its beams/capacity survives (cosmic-ray latch-up,
// thermal throttling, a failed amplifier chain).
struct Degradation {
  std::size_t satellite_index = 0;
  double start_offset_s = 0.0;
  double end_offset_s = 0.0;  // exclusive
  double capacity_factor = 1.0;  // in (0, 1]
};

// Exponential fail/repair model: time-to-failure ~ Exp(mtbf), repair
// duration ~ Exp(mttr). mtbf_seconds == 0 disables failures for the asset
// class.
struct MtbfMttr {
  double mtbf_seconds = 30.0 * 86400.0;
  double mttr_seconds = 6.0 * 3600.0;
};

// A fail or repair edge, for driving sim::SimEngine event interleaving.
struct FaultEvent {
  double time_s = 0.0;  // offset from grid start
  AssetKind kind = AssetKind::kSatellite;
  std::size_t asset_index = 0;
  bool failed = true;  // false = repaired
};

class FaultTimeline {
 public:
  // A default-constructed timeline is permanently fault-free (empty() is
  // true); every query reports full health.
  FaultTimeline() = default;
  FaultTimeline(const orbit::TimeGrid& grid, std::size_t satellite_count,
                std::size_t station_count);

  // True when no outage or degradation has been registered — the contract
  // consumers use to stay on the bit-identical no-fault fast path.
  [[nodiscard]] bool empty() const noexcept {
    return records_.empty() && degradations_.empty();
  }

  // Deterministic schedules. Offsets are seconds from grid start; a grid
  // step is affected when its sample instant falls inside [start, end).
  // Overlapping records are allowed and union. Windows are validated via
  // core::ConfigIssue (component "fault.timeline"): NaN, negative start or
  // end <= start throw std::invalid_argument with the structured report
  // instead of silently accepting an inverted window.
  void add_satellite_outage(std::size_t satellite, double start_offset_s,
                            double end_offset_s);
  void add_station_outage(std::size_t station, double start_offset_s,
                          double end_offset_s);
  void add_transponder_degradation(std::size_t satellite, double start_offset_s,
                                   double end_offset_s, double capacity_factor);

  // Seeded stochastic construction: each asset alternates Exp(mtbf) up-time
  // with Exp(mttr) down-time from its own split stream. Identical seeds
  // reproduce identical timelines; asset i's history is stable under changes
  // to the other assets' counts or models.
  [[nodiscard]] static FaultTimeline stochastic(const orbit::TimeGrid& grid,
                                               std::size_t satellite_count,
                                               std::size_t station_count,
                                               const MtbfMttr& satellite_model,
                                               const MtbfMttr& station_model,
                                               std::uint64_t seed);

  // Per-step health queries. Indices beyond the construction counts (and any
  // index on an empty timeline) report full health, so consumers need no
  // bounds bookkeeping.
  [[nodiscard]] bool satellite_available(std::size_t satellite,
                                         std::size_t step) const noexcept;
  [[nodiscard]] bool station_available(std::size_t station,
                                       std::size_t step) const noexcept;
  // Remaining transponder capacity: 0 during a full outage, otherwise the
  // product of all degradations active at the step (1 when healthy).
  [[nodiscard]] double satellite_capacity_factor(std::size_t satellite,
                                                 std::size_t step) const noexcept;
  // Usable beam count under degradation; exactly `nominal_beams` at full
  // health, 0 during a full outage.
  [[nodiscard]] int degraded_beam_count(std::size_t satellite, std::size_t step,
                                        int nominal_beams) const noexcept;

  // Outage masks (set bit = asset OUT at that step); nullptr when the asset
  // never faults, so callers can skip mask arithmetic entirely on healthy
  // assets — this is what keeps the no-fault path bit-identical.
  [[nodiscard]] const cov::StepMask* satellite_outage_steps(
      std::size_t satellite) const noexcept;
  [[nodiscard]] const cov::StepMask* station_outage_steps(
      std::size_t station) const noexcept;

  // Availability as a positive mask (set bit = healthy), always materialized.
  [[nodiscard]] cov::StepMask satellite_availability(std::size_t satellite) const;

  // Canonicalizes the outage record list in place: records are sorted by
  // (kind, asset, start), clipped to the grid window [0, duration), and
  // overlapping or touching records of the same asset are merged into one.
  // Masks are untouched (they already union), but events() stops emitting
  // redundant fail/repair edge pairs and outage_seconds_by_party stops
  // double-counting overlap — call this after bulk injection (EventBook
  // compilation does it automatically). Deterministic: the result depends
  // only on the record set, never on insertion order.
  void normalize();

  // The validation behind add_*: issues (component "fault.timeline") for a
  // non-finite / negative start or an end not strictly after the start.
  // Empty means the window is usable.
  [[nodiscard]] static std::vector<core::ConfigIssue> validate_window(
      double start_offset_s, double end_offset_s);

  [[nodiscard]] const std::vector<OutageRecord>& outages() const noexcept {
    return records_;
  }
  [[nodiscard]] const std::vector<Degradation>& degradations() const noexcept {
    return degradations_;
  }

  // Fail/repair edges sorted by time (ties in registration order), clamped
  // to the grid window — ready to schedule on a sim::SimEngine so market
  // examples can interleave faults with price updates.
  [[nodiscard]] std::vector<FaultEvent> events() const;

  // Total full-outage seconds attributed to each owning party (the
  // reputation layer's evidence). `satellite_owner[i]` / `station_owner[i]`
  // give the owning party of asset i; entries >= party_count (e.g.
  // constellation::Satellite::kUnowned) are skipped, as are assets beyond
  // the owner spans.
  [[nodiscard]] std::vector<double> outage_seconds_by_party(
      std::span<const std::uint32_t> satellite_owner,
      std::span<const std::uint32_t> station_owner, std::size_t party_count) const;

  [[nodiscard]] const orbit::TimeGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] std::size_t satellite_count() const noexcept {
    return satellite_out_.size();
  }
  [[nodiscard]] std::size_t station_count() const noexcept {
    return station_out_.size();
  }

 private:
  void add_outage(AssetKind kind, std::size_t index, double start_offset_s,
                  double end_offset_s);

  orbit::TimeGrid grid_;
  // Per-asset outage masks; a step_count() == 0 mask means "never faulted".
  std::vector<cov::StepMask> satellite_out_;
  std::vector<cov::StepMask> station_out_;
  std::vector<Degradation> degradations_;
  std::vector<OutageRecord> records_;
};

}  // namespace mpleo::fault
