// Correlated failure events: the shocks the paper's argument turns on (§2).
//
// FaultTimeline injects *independent* per-asset outages; the decentralization
// claim, however, is about correlated failure domains — a solar storm
// degrading every satellite in a shell, a grid blackout darkening every
// ground station in a region, an operator withdrawing its entire fleet, a
// debris cascade chewing through one orbital neighbourhood. An EventBook is
// a seeded, deterministic list of such events that COMPILES DOWN to the
// existing OutageRecord / Degradation representation on a FaultTimeline, so
// every current consumer (coverage, scheduler, handover, SLA, reputation,
// audits) inherits correlated faults without a single new branch, and an
// empty book leaves the timeline empty — bit-identical to the no-fault path.
//
// Determinism contract: compilation draws from util::Xoshiro256PlusPlus
// child streams keyed by (event class, event index, asset index), so event
// j's effect on satellite i depends only on the book seed and those indices
// — never on fleet size, registration order of other events, or compile
// count. Identical seeds reproduce identical timelines (the CRN property the
// chaos bench's centralized-vs-decentralized comparison relies on).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "constellation/shell.hpp"
#include "fault/timeline.hpp"
#include "net/ground_station.hpp"
#include "orbit/geodesy.hpp"

namespace mpleo::fault {

// Canonical event mixes for the --events= scenario flag and the chaos bench.
enum class EventProfile : std::uint8_t {
  kOff,         // empty book
  kStorm,       // one space-weather storm over the whole fleet
  kBlackout,    // one regional ground blackout
  kWithdrawal,  // party 0 withdraws its fleet, later rejoins
  kDebris,      // one debris cascade
  kMixed,       // all of the above, staggered
};

[[nodiscard]] const char* to_string(EventProfile profile) noexcept;
[[nodiscard]] std::optional<EventProfile> event_profile_from_string(
    std::string_view name) noexcept;

// Space-weather storm: every satellite whose shell altitude (semi-major axis
// minus the mean Earth radius) and inclination fall inside the affected
// bands is hit at `start_offset_s` for a per-satellite drawn duration.
// A seeded fraction of the affected satellites goes fully out (latch-up /
// safe-mode); the rest keep flying at `capacity_factor` of nominal.
struct StormEvent {
  double start_offset_s = 0.0;
  double mean_duration_s = 3600.0;
  // Per-satellite duration = mean * (1 - jitter/2 + jitter * u), u ~ U[0,1)
  // from the satellite's own child stream. 0 = every duration exactly mean.
  double duration_jitter = 0.5;
  double min_altitude_m = 0.0;
  double max_altitude_m = std::numeric_limits<double>::infinity();
  double min_inclination_deg = 0.0;
  double max_inclination_deg = 180.0;
  double capacity_factor = 0.5;  // degradation for surviving sats, in (0, 1]
  double outage_fraction = 0.0;  // fraction drawn fully out, in [0, 1]
};

// Regional ground blackout: every station within `radius_km` great-circle
// distance of the center goes dark for [start, start + duration).
struct RegionalBlackoutEvent {
  double start_offset_s = 0.0;
  double duration_s = 3600.0;
  double center_latitude_deg = 0.0;
  double center_longitude_deg = 0.0;
  double radius_km = 1000.0;
};

// Party-withdrawal shock: one party's whole fleet detaches at `start`,
// optionally rejoining at `rejoin` (infinity = never, clipped to window).
// The centralized-operator failure mode: with one party owning everything,
// this is a total network loss.
struct PartyWithdrawalEvent {
  std::uint32_t party = 0;
  double start_offset_s = 0.0;
  double rejoin_offset_s = std::numeric_limits<double>::infinity();
  bool include_stations = false;  // true: the party's ground segment too
};

// Debris cascade: a seeded epicenter satellite plus its `loss_count - 1`
// nearest orbital neighbours (by semi-major axis, inclination and RAAN
// plane) are lost permanently, staggered `inter_loss_spacing_s` apart in
// spread order — a Kessler-style cluster confined to one neighbourhood, not
// an independent sprinkle.
struct DebrisCascadeEvent {
  double start_offset_s = 0.0;
  std::size_t loss_count = 8;
  double inter_loss_spacing_s = 600.0;
};

class EventBook {
 public:
  EventBook() = default;
  explicit EventBook(std::uint64_t seed) noexcept : seed_(seed) {}

  // True when no event is registered; compiling an empty book is a no-op,
  // which is what keeps every consumer bit-identical to the no-fault path.
  [[nodiscard]] bool empty() const noexcept {
    return storms_.empty() && blackouts_.empty() && withdrawals_.empty() &&
           cascades_.empty();
  }

  EventBook& add_storm(const StormEvent& event);
  EventBook& add_blackout(const RegionalBlackoutEvent& event);
  EventBook& add_withdrawal(const PartyWithdrawalEvent& event);
  EventBook& add_debris_cascade(const DebrisCascadeEvent& event);

  // The canonical book for a profile, scaled to a grid window: event times
  // and durations are fractions of `window_s`, severities scale with
  // `intensity` (1 = the defaults the chaos bench records). kOff returns an
  // empty book.
  [[nodiscard]] static EventBook preset(EventProfile profile, double window_s,
                                        std::uint64_t seed, double intensity = 1.0);

  // Lowers every event onto `timeline` for the given fleet (asset order =
  // span order = scheduler construction order) and normalizes the record
  // list. The timeline must already be sized for the fleet. An empty book
  // changes nothing.
  void compile(FaultTimeline& timeline,
               std::span<const constellation::Satellite> satellites,
               std::span<const net::GroundStation> stations) const;

  // Convenience: a fresh timeline over `grid`, compiled.
  [[nodiscard]] FaultTimeline compile(
      const orbit::TimeGrid& grid,
      std::span<const constellation::Satellite> satellites,
      std::span<const net::GroundStation> stations) const;

  // The blackout geo-predicate, exposed so tests and site samplers agree
  // with compilation bit-for-bit: great-circle distance (haversine on the
  // mean Earth radius) from `site` to the center is <= radius.
  [[nodiscard]] static bool inside_circle(const orbit::Geodetic& site,
                                          double center_latitude_deg,
                                          double center_longitude_deg,
                                          double radius_km) noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<StormEvent>& storms() const noexcept {
    return storms_;
  }
  [[nodiscard]] const std::vector<RegionalBlackoutEvent>& blackouts() const noexcept {
    return blackouts_;
  }
  [[nodiscard]] const std::vector<PartyWithdrawalEvent>& withdrawals() const noexcept {
    return withdrawals_;
  }
  [[nodiscard]] const std::vector<DebrisCascadeEvent>& cascades() const noexcept {
    return cascades_;
  }
  [[nodiscard]] std::size_t event_count() const noexcept {
    return storms_.size() + blackouts_.size() + withdrawals_.size() +
           cascades_.size();
  }

 private:
  std::uint64_t seed_ = 0x65766b32ULL;  // "evk2"
  std::vector<StormEvent> storms_;
  std::vector<RegionalBlackoutEvent> blackouts_;
  std::vector<PartyWithdrawalEvent> withdrawals_;
  std::vector<DebrisCascadeEvent> cascades_;
};

}  // namespace mpleo::fault
