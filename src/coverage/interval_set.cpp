#include "coverage/interval_set.hpp"

#include <algorithm>

namespace mpleo::cov {

IntervalSet::IntervalSet(std::vector<Interval> intervals)
    : intervals_(std::move(intervals)) {
  normalise();
}

void IntervalSet::normalise() {
  std::erase_if(intervals_, [](const Interval& iv) { return !(iv.end > iv.start); });
  std::sort(intervals_.begin(), intervals_.end(),
            [](const Interval& a, const Interval& b) { return a.start < b.start; });
  std::vector<Interval> merged;
  merged.reserve(intervals_.size());
  for (const Interval& iv : intervals_) {
    if (!merged.empty() && iv.start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, iv.end);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
}

void IntervalSet::insert(double start, double end) {
  if (!(end > start)) return;
  // Find the insertion window of intervals that touch [start, end).
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), start,
      [](const Interval& iv, double s) { return iv.end < s; });
  auto last = first;
  double new_start = start;
  double new_end = end;
  while (last != intervals_.end() && last->start <= new_end) {
    new_start = std::min(new_start, last->start);
    new_end = std::max(new_end, last->end);
    ++last;
  }
  const auto pos = intervals_.erase(first, last);
  intervals_.insert(pos, Interval{new_start, new_end});
}

bool IntervalSet::contains(double t) const noexcept {
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(), t,
                             [](double tt, const Interval& iv) { return tt < iv.start; });
  if (it == intervals_.begin()) return false;
  --it;
  return t >= it->start && t < it->end;
}

double IntervalSet::total_length() const noexcept {
  double sum = 0.0;
  for (const Interval& iv : intervals_) sum += iv.length();
  return sum;
}

IntervalSet IntervalSet::union_with(const IntervalSet& other) const {
  std::vector<Interval> all = intervals_;
  all.insert(all.end(), other.intervals_.begin(), other.intervals_.end());
  return IntervalSet(std::move(all));
}

IntervalSet IntervalSet::intersect_with(const IntervalSet& other) const {
  std::vector<Interval> out;
  std::size_t i = 0, j = 0;
  while (i < intervals_.size() && j < other.intervals_.size()) {
    const Interval& a = intervals_[i];
    const Interval& b = other.intervals_[j];
    const double lo = std::max(a.start, b.start);
    const double hi = std::min(a.end, b.end);
    if (hi > lo) out.push_back({lo, hi});
    if (a.end < b.end) ++i; else ++j;
  }
  return IntervalSet(std::move(out));
}

IntervalSet IntervalSet::difference_with(const IntervalSet& other) const {
  if (intervals_.empty()) return {};
  const double lo = intervals_.front().start;
  const double hi = intervals_.back().end;
  return intersect_with(other.complement_within(lo, hi));
}

IntervalSet IntervalSet::complement_within(double window_start, double window_end) const {
  IntervalSet out;
  if (!(window_end > window_start)) return out;
  double cursor = window_start;
  for (const Interval& iv : intervals_) {
    if (iv.end <= window_start) continue;
    if (iv.start >= window_end) break;
    if (iv.start > cursor) out.insert(cursor, std::min(iv.start, window_end));
    cursor = std::max(cursor, iv.end);
    if (cursor >= window_end) break;
  }
  if (cursor < window_end) out.insert(cursor, window_end);
  return out;
}

double IntervalSet::max_gap_within(double window_start, double window_end) const {
  const IntervalSet gaps = complement_within(window_start, window_end);
  double longest = 0.0;
  for (const Interval& iv : gaps.intervals()) longest = std::max(longest, iv.length());
  return longest;
}

}  // namespace mpleo::cov
