#include "coverage/visibility_cull.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>

#include "util/units.hpp"

namespace mpleo::cov {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// Bound on the angle between the geodetic vertical and the geocentric
// radial; on WGS-84 it peaks at ~0.00336 rad near 45 deg latitude.
constexpr double kVerticalDeflection = 0.0035;
// Extra angular margin absorbing every numeric approximation in the cull
// chain (table round-off, incremental-rotation drift): ~1.4 km at LEO
// radii, many orders of magnitude above the actual error.
constexpr double kAngularSlack = 2e-4;
// Additional margin on the latitude band (~700 m) before converting it to
// argument-of-latitude arcs.
constexpr double kLatitudeSlack = 1e-4;

}  // namespace

VisibilityCuller::VisibilityCuller(const orbit::TimeGrid& grid, double elevation_mask_deg)
    : step_seconds_(grid.step_seconds),
      sin_mask_(std::sin(util::deg_to_rad(elevation_mask_deg))),
      exhaustive_(elevation_mask_deg < 0.0 || elevation_mask_deg >= 90.0) {
  if (exhaustive_) return;
  // With c = (R/r_max) * cos(m_eff) the cone half-angle is psi = acos(c) -
  // theta, and cos/sin(psi) expand through the angle-difference identities
  // using these precomputed cos/sin(theta) — no inverse trig per
  // (table, site).
  const double m_eff = util::deg_to_rad(elevation_mask_deg) - kVerticalDeflection;
  cull_cos_meff_ = std::cos(m_eff);
  const double theta_t = m_eff - kAngularSlack;  // threshold cone
  cull_cos_t_ = std::cos(theta_t);
  cull_sin_t_ = std::sin(theta_t);
  const double theta_b = theta_t - kLatitudeSlack;  // latitude band
  cull_cos_b_ = std::cos(theta_b);
  cull_sin_b_ = std::sin(theta_b);
}

template <class Sink>
void VisibilityCuller::fill_impl(const orbit::EphemerisTable& ephemeris,
                                 const orbit::TopocentricFrame& frame,
                                 Sink&& set_bit) const {
  const std::size_t n = ephemeris.size();
  const double* xs = ephemeris.x().data();
  const double* ys = ephemeris.y().data();
  const double* zs = ephemeris.z().data();

  const util::Vec3& origin = frame.origin_ecef();
  const double site_r = origin.norm();
  const double r_max = ephemeris.max_radius_m();
  // Degenerate geometry (mask outside the cone derivation's domain, site at
  // the geocentre, or the satellite not safely above the site's radius):
  // fall back to testing every step exactly.
  if (exhaustive_ || !(site_r > 0.0) || !(r_max > site_r * 1.001)) {
    for (std::size_t k = 0; k < n; ++k) {
      if (frame.visible_above({xs[k], ys[k], zs[k]}, sin_mask_)) set_bit(k);
    }
    return;
  }

  // Cone cull: a visible satellite has central angle psi <= acos(c) - theta_t
  // from the site's radial direction, with c = (R/r_max) * cos(m_eff). In
  // dot-product form dot(u_site, p) >= r * cos(psi_max); bound the right side
  // below over r in [r_min, r_max] and leave an absolute slack so borderline
  // steps are always tested exactly — the cull skips work, never flips bits.
  const double inv_r = 1.0 / site_r;
  const double ux = origin.x * inv_r;
  const double uy = origin.y * inv_r;
  const double uz = origin.z * inv_r;
  const double c = (site_r / r_max) * cull_cos_meff_;  // in (0, 1)
  const double s_c = std::sqrt(std::max(0.0, 1.0 - c * c));
  const double cos_psi = c * cull_cos_t_ + s_c * cull_sin_t_;
  const double r_ref = cos_psi >= 0.0 ? ephemeris.min_radius_m() : r_max;
  const double threshold = cos_psi * r_ref - 1e-6 * r_max;

  const auto exact = [&](std::size_t k) {
    const util::Vec3 p{xs[k], ys[k], zs[k]};
    if (ux * p.x + uy * p.y + uz * p.z >= threshold &&
        frame.visible_above(p, sin_mask_)) {
      set_bit(k);
    }
  };

  const orbit::LinearLatitudeArgument& arg = ephemeris.latitude_argument();
  if (!(arg.valid && arg.du > 1e-12 && arg.sin_incl > 1e-9)) {
    // Eccentric (or degenerate) orbit: cone-test every step; the cull still
    // rejects the vast majority with three multiplies.
    for (std::size_t k = 0; k < n; ++k) exact(k);
    return;
  }

  // Circular orbit: z(k) = r * sin_i * sin(u0 + du*k) exactly, so the cone's
  // latitude band |lat_sat - phi| <= psi_band translates into closed arcs of
  // the argument of latitude u. Only the grid steps whose u lands in an arc
  // can pass the cone; enumerate them directly instead of scanning. All band
  // trigonometry expands through angle-sum identities from the precomputed
  // constants: cos/sin(psi_band) from (c, s_c), then
  //   sin(phi +- psi_band) = sin_phi * cos_d -+ cos_phi * sin_d.
  const double cos_d = c * cull_cos_b_ + s_c * cull_sin_b_;
  const double sin_d = s_c * cull_cos_b_ - c * cull_sin_b_;
  const double sin_phi = origin.z * inv_r;  // geocentric site latitude
  const double cos_phi = std::sqrt(std::max(0.0, 1.0 - sin_phi * sin_phi));
  const double axial = sin_phi * cos_d;
  const double cross = cos_phi * sin_d;
  const double inv_sin_i = 1.0 / arg.sin_incl;
  // sin(u) bounds of the band; a band edge past a pole (phi +- psi_band
  // beyond +-pi/2, i.e. sin_phi beyond +-cos_d) leaves that side unbounded.
  const double ql =
      sin_phi <= -(cos_d - 1e-12) ? -2.0 : (axial - cross) * inv_sin_i;
  const double qh = sin_phi >= cos_d - 1e-12 ? 2.0 : (axial + cross) * inv_sin_i;
  if (ql > 1.0 || qh < -1.0) return;  // orbit never reaches the site's band

  const bool lo_open = ql <= -1.0;
  const bool hi_open = qh >= 1.0;
  if (lo_open && hi_open) {
    for (std::size_t k = 0; k < n; ++k) exact(k);
    return;
  }

  constexpr double kArcSlack = 1e-6;  // pure FP rounding of the asin path
  double arcs[2][2];
  std::size_t arc_count = 1;
  if (hi_open) {
    // sin(u) >= ql only: one arc through the ascending maximum.
    const double a1 = std::asin(ql);
    arcs[0][0] = a1 - kArcSlack;
    arcs[0][1] = kPi - a1 + kArcSlack;
  } else if (lo_open) {
    // sin(u) <= qh only: one arc through the descending minimum.
    const double a2 = std::asin(qh);
    arcs[0][0] = kPi - a2 - kArcSlack;
    arcs[0][1] = kTwoPi + a2 + kArcSlack;
  } else {
    const double a1 = std::asin(ql);
    const double a2 = std::asin(qh);
    arcs[0][0] = a1 - kArcSlack;
    arcs[0][1] = a2 + kArcSlack;
    arcs[1][0] = kPi - a2 - kArcSlack;
    arcs[1][1] = kPi - a1 + kArcSlack;
    arc_count = 2;
  }

  // Crossing prefilter: the satellite's ECEF direction drifts at most v_ang
  // radians per step (orbital rate plus Earth rotation), so if the middle
  // step of a band crossing sits further than psi_max + alpha from the
  // site's radial — alpha covering half the crossing width plus margin — no
  // step of that crossing can be inside the cone and the whole run is
  // skipped with a single dot product. Disabled (never skips) whenever the
  // relaxed angle reaches pi, where the cos comparison would flip.
  const double inv_du = 1.0 / arg.du;
  const double sin_psi = std::max(0.0, s_c * cull_cos_t_ - c * cull_sin_t_);
  const double widest = std::max(arcs[0][1] - arcs[0][0],
                                 arc_count == 2 ? arcs[1][1] - arcs[1][0] : 0.0);
  const double v_ang = arg.du + 7.2921159e-5 * step_seconds_;
  const double alpha = (0.5 * widest * inv_du + 2.0) * v_ang;
  double relaxed_threshold = -4.0 * r_max;  // passes every crossing
  if (alpha < kPi && cos_psi > -std::cos(alpha) + 1e-12) {
    const double cos_rel = cos_psi * std::cos(alpha) - sin_psi * std::sin(alpha);
    const double r_ref_rel = cos_rel >= 0.0 ? ephemeris.min_radius_m() : r_max;
    relaxed_threshold = cos_rel * r_ref_rel - 1e-6 * r_max;
  }

  // Each arc recurs once per orbit; walk its 2*pi translates across the grid
  // with an incremental step counter (no divisions in the loop).
  const double u_first = arg.u0;
  const double steps_per_orbit = kTwoPi * inv_du;
  const double last_step = static_cast<double>(n - 1) + 1e-9;
  for (std::size_t ai = 0; ai < arc_count; ++ai) {
    const double lo = arcs[ai][0];
    const double hi = arcs[ai][1];
    // First translate whose end can reach the grid start (biased one orbit
    // early; an empty clamped range below costs nothing).
    const double m0 = std::ceil((u_first - hi) / kTwoPi) - 1.0;
    double k_lo = (lo + kTwoPi * m0 - u_first) * inv_du;
    double k_hi = k_lo + (hi - lo) * inv_du;
    while (k_lo <= last_step) {
      const long k_begin = std::max(0L, static_cast<long>(std::ceil(k_lo - 1e-9)));
      const long k_end = std::min(static_cast<long>(n) - 1,
                                  static_cast<long>(std::floor(k_hi + 1e-9)));
      if (k_begin <= k_end) {
        const std::size_t k_mid = static_cast<std::size_t>((k_begin + k_end) / 2);
        if (ux * xs[k_mid] + uy * ys[k_mid] + uz * zs[k_mid] >= relaxed_threshold) {
          for (long k = k_begin; k <= k_end; ++k) exact(static_cast<std::size_t>(k));
        }
      }
      k_lo += steps_per_orbit;
      k_hi += steps_per_orbit;
    }
  }
}

void VisibilityCuller::fill(const orbit::EphemerisTable& ephemeris,
                            const orbit::TopocentricFrame& frame, StepMask& out) const {
  fill_impl(ephemeris, frame, [&out](std::size_t k) { out.set(k); });
}

void VisibilityCuller::fill(const orbit::EphemerisTable& ephemeris,
                            const orbit::TopocentricFrame& frame, StepMask& out,
                            const CullCounters& counters) const {
  fill(ephemeris, frame, out);
  counters.masks_filled.add(1);
  counters.visible_steps.add(out.count());
}

void VisibilityCuller::fill(const orbit::EphemerisTable& ephemeris,
                            const orbit::TopocentricFrame& frame,
                            std::span<std::uint64_t> words) const {
  fill_impl(ephemeris, frame, [words](std::size_t k) {
    words[k >> 6] |= std::uint64_t{1} << (k & 63);
  });
}

void VisibilityCuller::fill(const orbit::EphemerisTable& ephemeris,
                            const orbit::TopocentricFrame& frame,
                            std::span<std::uint64_t> words,
                            const CullCounters& counters) const {
  fill(ephemeris, frame, words);
  std::size_t visible = 0;
  for (const std::uint64_t w : words) visible += static_cast<std::size_t>(std::popcount(w));
  counters.masks_filled.add(1);
  counters.visible_steps.add(visible);
}

}  // namespace mpleo::cov
