// Satellite-to-ground visibility: pass extraction and footprint geometry.
#pragma once

#include <vector>

#include "constellation/shell.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/time.hpp"

namespace mpleo::cov {

// One contiguous visibility window of a satellite over a site.
struct Pass {
  double start_offset_s = 0.0;  // seconds from grid start
  double end_offset_s = 0.0;    // exclusive
  double max_elevation_rad = 0.0;

  [[nodiscard]] double duration_s() const noexcept { return end_offset_s - start_offset_s; }
};

// Finds all passes of `satellite` over `site` on the grid, with the peak
// elevation sampled at grid resolution. Propagates with the J2 analytic
// model; use the EphemerisTable overload to honor a scenario's backend.
[[nodiscard]] std::vector<Pass> find_passes(const constellation::Satellite& satellite,
                                            const orbit::TopocentricFrame& site,
                                            const orbit::TimeGrid& grid,
                                            double elevation_mask_deg);

// Same pass extraction from a precomputed ephemeris table (any backend),
// e.g. CoverageEngine::ephemeris. The table must cover `grid`.
[[nodiscard]] std::vector<Pass> find_passes(const orbit::EphemerisTable& ephemeris,
                                            const orbit::TopocentricFrame& site,
                                            const orbit::TimeGrid& grid,
                                            double elevation_mask_deg);

// Earth-central half-angle of the coverage footprint of a satellite at
// `altitude_m` with elevation mask `elevation_mask_deg` (spherical Earth).
// This is the analytic quantity behind "a satellite covers ~0.5% of Earth".
[[nodiscard]] double footprint_half_angle_rad(double altitude_m, double elevation_mask_deg);

// Fraction of the sphere covered by one such footprint.
[[nodiscard]] double footprint_area_fraction(double altitude_m, double elevation_mask_deg);

}  // namespace mpleo::cov
