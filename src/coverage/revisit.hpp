// Revisit statistics: the standard constellation-engineering metrics derived
// from a coverage timeline — how long between passes, and how bad the tail
// is. Used by the sovereign-vs-shared comparisons and the DTN bootstrap
// model (a store-and-forward message waits one revisit gap on each leg).
#pragma once

#include <vector>

#include "coverage/step_mask.hpp"

namespace mpleo::cov {

struct RevisitStats {
  std::size_t pass_count = 0;
  std::size_t gap_count = 0;
  double mean_pass_seconds = 0.0;
  double mean_gap_seconds = 0.0;
  double max_gap_seconds = 0.0;
  double p50_gap_seconds = 0.0;
  double p95_gap_seconds = 0.0;
  // Fraction of the window covered.
  double covered_fraction = 0.0;
};

// Computes pass/gap statistics from a coverage mask. Leading and trailing
// gaps (before the first / after the last pass) are included as gaps.
[[nodiscard]] RevisitStats revisit_stats(const StepMask& mask, double step_seconds);

// The raw gap lengths (seconds), in timeline order — the latency
// distribution a delay-tolerant message faces waiting for the next pass.
[[nodiscard]] std::vector<double> gap_lengths(const StepMask& mask, double step_seconds);

}  // namespace mpleo::cov
