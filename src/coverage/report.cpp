#include "coverage/report.hpp"

#include <sstream>

#include "util/table.hpp"

namespace mpleo::cov {

std::string summarize(const CoverageStats& stats) {
  std::ostringstream os;
  os << "covered " << util::Table::pct(stats.covered_fraction) << " | longest gap "
     << util::Table::duration(stats.max_gap_seconds) << " | " << stats.pass_count
     << " passes";
  return os.str();
}

std::string site_report(const std::string& site_name, const CoverageStats& stats) {
  std::ostringstream os;
  os << site_name << ":\n"
     << "  covered   : " << util::Table::pct(stats.covered_fraction) << " ("
     << util::Table::duration(stats.covered_seconds) << ")\n"
     << "  uncovered : " << util::Table::duration(stats.uncovered_seconds) << "\n"
     << "  max gap   : " << util::Table::duration(stats.max_gap_seconds) << "\n"
     << "  passes    : " << stats.pass_count << "\n";
  return os.str();
}

}  // namespace mpleo::cov
