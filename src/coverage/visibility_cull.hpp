// The conservative zenith-cone visibility cull, factored out of
// CoverageEngine so any pair-visibility consumer (the coverage fill, the
// pipelined bent-pipe scheduler, latency/Doppler sampling) can pack
// (satellite, site) visibility into StepMasks without owning an engine.
//
// The cull rests on spherical coverage geometry: a satellite at geocentric
// radius r with central angle psi from a site at radius R sits at geocentric
// elevation el with psi = acos((R/r) * cos(el)) - el, monotone in r.
// Geodetic elevation >= mask therefore implies
//   psi <= psi_max = acos((R/r_max) * cos(mask - deflection)) - (mask - ...)
// where `deflection` bounds the angle between the geodetic vertical (which
// elevation masks are measured against) and the geocentric radial. The cull
// only skips work — every surviving step still runs the exact
// visible_above test — so the filled mask is bit-identical to the
// exhaustive per-step scan over the same ephemeris table.
#pragma once

#include <cstdint>
#include <span>

#include "coverage/step_mask.hpp"
#include "obs/metrics.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/time.hpp"

namespace mpleo::cov {

// Observability hooks for mask fills. The handles are null-safe, so a
// default-constructed CullCounters makes the instrumented fill() behave
// exactly like the plain one.
struct CullCounters {
  obs::Counter masks_filled;   // one per completed fill
  obs::Counter visible_steps;  // set bits emitted across fills
};

class VisibilityCuller {
 public:
  VisibilityCuller() = default;

  // `grid` supplies the step cadence for the crossing prefilter. Masks
  // outside [0, 90) degrees disable the cone geometry (every step is tested
  // exactly), preserving whatever semantics the caller's sin(mask) has.
  VisibilityCuller(const orbit::TimeGrid& grid, double elevation_mask_deg);

  // sin of the elevation mask — the threshold fill() tests against.
  [[nodiscard]] double sin_mask() const noexcept { return sin_mask_; }

  // Sets in `out` (all-zero on entry) exactly the steps of `ephemeris` at
  // which the satellite clears the mask over `frame` — identical to testing
  // frame.visible_above(position, sin_mask()) at every step.
  void fill(const orbit::EphemerisTable& ephemeris, const orbit::TopocentricFrame& frame,
            StepMask& out) const;

  // Instrumented fill: identical output bits, plus counter updates. Safe to
  // call concurrently from pool workers — counters accumulate into
  // per-thread shards.
  void fill(const orbit::EphemerisTable& ephemeris, const orbit::TopocentricFrame& frame,
            StepMask& out, const CullCounters& counters) const;

  // Word-span fill: the same bits as the StepMask overloads OR-ed into a
  // caller-owned word array (low bit of words[0] = step 0 — the StepMask
  // layout). This is the PackedMasks path, where tens of millions of pair
  // masks share slab storage instead of owning vectors. The counters variant
  // popcounts the span afterwards, so it expects `words` all-zero on entry
  // (which the plain overload also assumes, like the StepMask ones do).
  void fill(const orbit::EphemerisTable& ephemeris, const orbit::TopocentricFrame& frame,
            std::span<std::uint64_t> words) const;
  void fill(const orbit::EphemerisTable& ephemeris, const orbit::TopocentricFrame& frame,
            std::span<std::uint64_t> words, const CullCounters& counters) const;

 private:
  // The one cull body behind every overload; Sink is called with each step
  // index at which the satellite clears the mask, in no particular order.
  template <class Sink>
  void fill_impl(const orbit::EphemerisTable& ephemeris,
                 const orbit::TopocentricFrame& frame, Sink&& set_bit) const;

  double step_seconds_ = 0.0;
  double sin_mask_ = 0.0;
  bool exhaustive_ = false;  // mask outside [0, 90): no cone, test every step
  // Fixed trigonometry of the cull chain (see fill for the derivation).
  double cull_cos_meff_ = 1.0;
  double cull_cos_t_ = 1.0, cull_sin_t_ = 0.0;
  double cull_cos_b_ = 1.0, cull_sin_b_ = 0.0;
};

}  // namespace mpleo::cov
