#include "coverage/doppler.hpp"

#include <bit>
#include <cmath>

#include "coverage/step_mask.hpp"
#include "coverage/visibility_cull.hpp"
#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace mpleo::cov {

RangeRate range_rate_ecef(const util::Vec3& v_eci, double gmst,
                          const util::Vec3& r_ecef,
                          const util::Vec3& site_origin_ecef) noexcept {
  const util::Vec3 omega{0.0, 0.0, util::kEarthRotationRateRadPerSec};
  // Velocity in the rotating frame: rotate the inertial velocity, then
  // subtract the frame-rotation term omega x r.
  const util::Vec3 v_rotated = orbit::eci_to_ecef(v_eci, gmst);
  const util::Vec3 v_ecef = v_rotated - cross(omega, r_ecef);

  const util::Vec3 rho = r_ecef - site_origin_ecef;
  RangeRate result;
  result.range_m = rho.norm();
  result.range_rate_m_per_s =
      result.range_m > 0.0 ? dot(v_ecef, rho) / result.range_m : 0.0;
  return result;
}

double doppler_shift_hz(double range_rate_m_per_s, double carrier_hz) noexcept {
  return -range_rate_m_per_s / util::kSpeedOfLightMPerSec * carrier_hz;
}

std::vector<DopplerSample> doppler_profile(const constellation::Satellite& satellite,
                                           const orbit::EphemerisTable& ephemeris,
                                           const orbit::TopocentricFrame& site,
                                           const orbit::TimeGrid& grid,
                                           double elevation_mask_deg, double carrier_hz,
                                           orbit::PropagatorBackend backend) {
  orbit::EphemerisSpec spec{satellite.elements, satellite.epoch,
                            orbit::Perturbation::kJ2Secular};
  spec.backend = backend;
  const orbit::AnyPropagator prop = orbit::make_propagator(spec);
  const double mask_rad = util::deg_to_rad(elevation_mask_deg);

  // Candidate steps from the shared cull; the full state vector (position +
  // inertial velocity) is only evaluated inside passes.
  const VisibilityCuller culler(grid, elevation_mask_deg);
  StepMask visible(ephemeris.size());
  culler.fill(ephemeris, site, visible);

  std::vector<DopplerSample> samples;
  const std::span<const std::uint64_t> words = visible.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const std::size_t i = w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const orbit::TimePoint t = grid.at(i);
      const orbit::StateVector state = prop.state_at(t);
      const double gmst = orbit::gmst_rad(t);
      const util::Vec3 r_ecef = orbit::eci_to_ecef(state.position, gmst);

      const double elevation = site.elevation_rad(r_ecef);
      if (elevation < mask_rad) continue;

      const RangeRate rr =
          range_rate_ecef(state.velocity, gmst, r_ecef, site.origin_ecef());

      DopplerSample sample;
      sample.offset_seconds = grid.step_seconds * static_cast<double>(i);
      sample.range_m = rr.range_m;
      sample.range_rate_m_per_s = rr.range_rate_m_per_s;
      sample.doppler_shift_hz = doppler_shift_hz(rr.range_rate_m_per_s, carrier_hz);
      sample.elevation_rad = elevation;
      samples.push_back(sample);
    }
  }
  return samples;
}

std::vector<DopplerSample> doppler_profile(const constellation::Satellite& satellite,
                                           const orbit::TopocentricFrame& site,
                                           const orbit::TimeGrid& grid,
                                           double elevation_mask_deg, double carrier_hz,
                                           orbit::PropagatorBackend backend) {
  orbit::EphemerisSpec spec{satellite.elements, satellite.epoch,
                            orbit::Perturbation::kJ2Secular};
  spec.backend = backend;
  const orbit::EphemerisTable table =
      orbit::EphemerisTable::compute(orbit::make_propagator(spec), grid);
  return doppler_profile(satellite, table, site, grid, elevation_mask_deg, carrier_hz,
                         backend);
}

double max_doppler_bound_hz(double altitude_m, double carrier_hz) {
  const double orbital_speed =
      std::sqrt(util::kMuEarth / (util::kEarthMeanRadiusM + altitude_m));
  return carrier_hz * orbital_speed / util::kSpeedOfLightMPerSec;
}

}  // namespace mpleo::cov
