#include "coverage/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "fault/timeline.hpp"
#include "orbit/propagator.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace mpleo::cov {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;

// The conservative cull rests on spherical coverage geometry: a satellite at
// geocentric radius r with central angle psi from a site at radius R sits at
// geocentric elevation el with psi = acos((R/r) * cos(el)) - el, monotone in
// r. Geodetic elevation >= mask therefore implies
//   psi <= psi_max = acos((R/r_max) * cos(mask - deflection)) - (mask - ...)
// where `deflection` bounds the angle between the geodetic vertical (which
// elevation masks are measured against) and the geocentric radial; on WGS-84
// it peaks at ~0.00336 rad near 45 deg latitude.
constexpr double kVerticalDeflection = 0.0035;
// Extra angular margin absorbing every numeric approximation in the cull
// chain (table round-off, incremental-rotation drift): ~1.4 km at LEO
// radii, many orders of magnitude above the actual error.
constexpr double kAngularSlack = 2e-4;
// Additional margin on the latitude band (~700 m) before converting it to
// argument-of-latitude arcs.
constexpr double kLatitudeSlack = 1e-4;

}  // namespace

GroundSite GroundSite::from_city(const City& city, double weight) {
  return {city.name, orbit::TopocentricFrame(city.location), weight};
}

std::vector<GroundSite> sites_from_cities(std::span<const City> cities,
                                          bool population_weighted) {
  std::vector<GroundSite> sites;
  sites.reserve(cities.size());
  for (const City& city : cities) {
    sites.push_back(GroundSite::from_city(city, population_weighted ? city.population : 1.0));
  }
  return sites;
}

std::vector<orbit::EphemerisSpec> ephemeris_specs(
    std::span<const constellation::Satellite> satellites) {
  std::vector<orbit::EphemerisSpec> specs;
  specs.reserve(satellites.size());
  for (const constellation::Satellite& sat : satellites) {
    specs.push_back({sat.elements, sat.epoch, orbit::Perturbation::kJ2Secular});
  }
  return specs;
}

CoverageEngine::CoverageEngine(const orbit::TimeGrid& grid, double elevation_mask_deg)
    : grid_(grid),
      mask_deg_(elevation_mask_deg),
      mask_rad_(util::deg_to_rad(elevation_mask_deg)),
      sin_mask_(std::sin(util::deg_to_rad(elevation_mask_deg))),
      gmst_(orbit::GmstTable::for_grid(grid)) {
  if (elevation_mask_deg < 0.0 || elevation_mask_deg >= 90.0) {
    throw std::invalid_argument("CoverageEngine: elevation mask must be in [0, 90)");
  }
  if (grid.count == 0) throw std::invalid_argument("CoverageEngine: empty time grid");
  if (!(grid.step_seconds > 0.0)) {
    throw std::invalid_argument("CoverageEngine: grid step must be positive");
  }
  // Fixed trigonometry of the cull chain (see fill_visibility). With
  // c = (R/r_max) * cos(m_eff) the cone half-angle is psi = acos(c) - theta,
  // and cos/sin(psi) expand through the angle-difference identities using
  // these precomputed cos/sin(theta) — no inverse trig per (table, site).
  const double m_eff = mask_rad_ - kVerticalDeflection;
  cull_cos_meff_ = std::cos(m_eff);
  const double theta_t = m_eff - kAngularSlack;  // threshold cone
  cull_cos_t_ = std::cos(theta_t);
  cull_sin_t_ = std::sin(theta_t);
  const double theta_b = theta_t - kLatitudeSlack;  // latitude band
  cull_cos_b_ = std::cos(theta_b);
  cull_sin_b_ = std::sin(theta_b);
}

orbit::EphemerisTable CoverageEngine::ephemeris(
    const constellation::Satellite& satellite) const {
  const orbit::KeplerianPropagator prop(satellite.elements, satellite.epoch);
  return orbit::EphemerisTable::compute(prop, grid_, gmst_);
}

orbit::EphemerisSet CoverageEngine::ephemerides(
    std::span<const constellation::Satellite> satellites, util::ThreadPool* pool) const {
  const std::vector<orbit::EphemerisSpec> specs = ephemeris_specs(satellites);
  return orbit::EphemerisSet::compute(specs, grid_, gmst_, pool);
}

StepMask CoverageEngine::visibility_mask(const constellation::Satellite& satellite,
                                         const orbit::TopocentricFrame& site) const {
  const GroundSite wrapped{"ad-hoc-site", site, 1.0};
  return visibility_masks(satellite, std::span<const GroundSite>(&wrapped, 1)).front();
}

std::vector<StepMask> CoverageEngine::visibility_masks(
    const constellation::Satellite& satellite, std::span<const GroundSite> sites) const {
  return visibility_masks(ephemeris(satellite), sites);
}

std::vector<StepMask> CoverageEngine::visibility_masks(
    const orbit::EphemerisTable& ephemeris, std::span<const GroundSite> sites) const {
  if (ephemeris.size() != grid_.count) {
    throw std::invalid_argument("CoverageEngine: ephemeris table does not match grid");
  }
  std::vector<StepMask> masks(sites.size(), StepMask(grid_.count));
  for (std::size_t j = 0; j < sites.size(); ++j) {
    fill_visibility(ephemeris, sites[j], masks[j]);
  }
  return masks;
}

std::vector<StepMask> CoverageEngine::visibility_masks_reference(
    const constellation::Satellite& satellite, std::span<const GroundSite> sites) const {
  std::vector<StepMask> masks(sites.size(), StepMask(grid_.count));
  const orbit::KeplerianPropagator prop(satellite.elements, satellite.epoch);
  const double t0 = grid_.start.seconds_since(satellite.epoch);

  for (std::size_t step = 0; step < grid_.count; ++step) {
    const double dt = t0 + grid_.step_seconds * static_cast<double>(step);
    const util::Vec3 eci = prop.position_eci_at_offset(dt);
    const double c = gmst_.cos_gmst[step];
    const double s = gmst_.sin_gmst[step];
    const util::Vec3 ecef{c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z};
    for (std::size_t j = 0; j < sites.size(); ++j) {
      if (sites[j].frame.visible_above(ecef, sin_mask_)) masks[j].set(step);
    }
  }
  return masks;
}

void CoverageEngine::fill_visibility(const orbit::EphemerisTable& ephemeris,
                                     const GroundSite& site, StepMask& out) const {
  const std::size_t n = ephemeris.size();
  const orbit::TopocentricFrame& frame = site.frame;
  const double* xs = ephemeris.x().data();
  const double* ys = ephemeris.y().data();
  const double* zs = ephemeris.z().data();

  const util::Vec3& origin = frame.origin_ecef();
  const double site_r = origin.norm();
  const double r_max = ephemeris.max_radius_m();
  // Degenerate geometry (site at the geocentre, or the satellite not safely
  // above the site's radius): fall back to testing every step exactly.
  if (!(site_r > 0.0) || !(r_max > site_r * 1.001)) {
    for (std::size_t k = 0; k < n; ++k) {
      if (frame.visible_above({xs[k], ys[k], zs[k]}, sin_mask_)) out.set(k);
    }
    return;
  }

  // Cone cull: a visible satellite has central angle psi <= acos(c) - theta_t
  // from the site's radial direction, with c = (R/r_max) * cos(m_eff). In
  // dot-product form dot(u_site, p) >= r * cos(psi_max); bound the right side
  // below over r in [r_min, r_max] and leave an absolute slack so borderline
  // steps are always tested exactly — the cull skips work, never flips bits.
  const double inv_r = 1.0 / site_r;
  const double ux = origin.x * inv_r;
  const double uy = origin.y * inv_r;
  const double uz = origin.z * inv_r;
  const double c = (site_r / r_max) * cull_cos_meff_;  // in (0, 1)
  const double s_c = std::sqrt(std::max(0.0, 1.0 - c * c));
  const double cos_psi = c * cull_cos_t_ + s_c * cull_sin_t_;
  const double r_ref = cos_psi >= 0.0 ? ephemeris.min_radius_m() : r_max;
  const double threshold = cos_psi * r_ref - 1e-6 * r_max;

  const auto exact = [&](std::size_t k) {
    const util::Vec3 p{xs[k], ys[k], zs[k]};
    if (ux * p.x + uy * p.y + uz * p.z >= threshold &&
        frame.visible_above(p, sin_mask_)) {
      out.set(k);
    }
  };

  const orbit::LinearLatitudeArgument& arg = ephemeris.latitude_argument();
  if (!(arg.valid && arg.du > 1e-12 && arg.sin_incl > 1e-9)) {
    // Eccentric (or degenerate) orbit: cone-test every step; the cull still
    // rejects the vast majority with three multiplies.
    for (std::size_t k = 0; k < n; ++k) exact(k);
    return;
  }

  // Circular orbit: z(k) = r * sin_i * sin(u0 + du*k) exactly, so the cone's
  // latitude band |lat_sat - phi| <= psi_band translates into closed arcs of
  // the argument of latitude u. Only the grid steps whose u lands in an arc
  // can pass the cone; enumerate them directly instead of scanning. All band
  // trigonometry expands through angle-sum identities from the precomputed
  // constants: cos/sin(psi_band) from (c, s_c), then
  //   sin(phi +- psi_band) = sin_phi * cos_d -+ cos_phi * sin_d.
  const double cos_d = c * cull_cos_b_ + s_c * cull_sin_b_;
  const double sin_d = s_c * cull_cos_b_ - c * cull_sin_b_;
  const double sin_phi = origin.z * inv_r;  // geocentric site latitude
  const double cos_phi = std::sqrt(std::max(0.0, 1.0 - sin_phi * sin_phi));
  const double axial = sin_phi * cos_d;
  const double cross = cos_phi * sin_d;
  const double inv_sin_i = 1.0 / arg.sin_incl;
  // sin(u) bounds of the band; a band edge past a pole (phi +- psi_band
  // beyond +-pi/2, i.e. sin_phi beyond +-cos_d) leaves that side unbounded.
  const double ql =
      sin_phi <= -(cos_d - 1e-12) ? -2.0 : (axial - cross) * inv_sin_i;
  const double qh = sin_phi >= cos_d - 1e-12 ? 2.0 : (axial + cross) * inv_sin_i;
  if (ql > 1.0 || qh < -1.0) return;  // orbit never reaches the site's band

  const bool lo_open = ql <= -1.0;
  const bool hi_open = qh >= 1.0;
  if (lo_open && hi_open) {
    for (std::size_t k = 0; k < n; ++k) exact(k);
    return;
  }

  constexpr double kArcSlack = 1e-6;  // pure FP rounding of the asin path
  double arcs[2][2];
  std::size_t arc_count = 1;
  if (hi_open) {
    // sin(u) >= ql only: one arc through the ascending maximum.
    const double a1 = std::asin(ql);
    arcs[0][0] = a1 - kArcSlack;
    arcs[0][1] = kPi - a1 + kArcSlack;
  } else if (lo_open) {
    // sin(u) <= qh only: one arc through the descending minimum.
    const double a2 = std::asin(qh);
    arcs[0][0] = kPi - a2 - kArcSlack;
    arcs[0][1] = kTwoPi + a2 + kArcSlack;
  } else {
    const double a1 = std::asin(ql);
    const double a2 = std::asin(qh);
    arcs[0][0] = a1 - kArcSlack;
    arcs[0][1] = a2 + kArcSlack;
    arcs[1][0] = kPi - a2 - kArcSlack;
    arcs[1][1] = kPi - a1 + kArcSlack;
    arc_count = 2;
  }

  // Crossing prefilter: the satellite's ECEF direction drifts at most v_ang
  // radians per step (orbital rate plus Earth rotation), so if the middle
  // step of a band crossing sits further than psi_max + alpha from the
  // site's radial — alpha covering half the crossing width plus margin — no
  // step of that crossing can be inside the cone and the whole run is
  // skipped with a single dot product. Disabled (never skips) whenever the
  // relaxed angle reaches pi, where the cos comparison would flip.
  const double inv_du = 1.0 / arg.du;
  const double sin_psi = std::max(0.0, s_c * cull_cos_t_ - c * cull_sin_t_);
  const double widest = std::max(arcs[0][1] - arcs[0][0],
                                 arc_count == 2 ? arcs[1][1] - arcs[1][0] : 0.0);
  const double v_ang = arg.du + 7.2921159e-5 * grid_.step_seconds;
  const double alpha = (0.5 * widest * inv_du + 2.0) * v_ang;
  double relaxed_threshold = -4.0 * r_max;  // passes every crossing
  if (alpha < kPi && cos_psi > -std::cos(alpha) + 1e-12) {
    const double cos_rel = cos_psi * std::cos(alpha) - sin_psi * std::sin(alpha);
    const double r_ref_rel = cos_rel >= 0.0 ? ephemeris.min_radius_m() : r_max;
    relaxed_threshold = cos_rel * r_ref_rel - 1e-6 * r_max;
  }

  // Each arc recurs once per orbit; walk its 2*pi translates across the grid
  // with an incremental step counter (no divisions in the loop).
  const double u_first = arg.u0;
  const double steps_per_orbit = kTwoPi * inv_du;
  const double last_step = static_cast<double>(n - 1) + 1e-9;
  for (std::size_t ai = 0; ai < arc_count; ++ai) {
    const double lo = arcs[ai][0];
    const double hi = arcs[ai][1];
    // First translate whose end can reach the grid start (biased one orbit
    // early; an empty clamped range below costs nothing).
    const double m0 = std::ceil((u_first - hi) / kTwoPi) - 1.0;
    double k_lo = (lo + kTwoPi * m0 - u_first) * inv_du;
    double k_hi = k_lo + (hi - lo) * inv_du;
    while (k_lo <= last_step) {
      const long k_begin = std::max(0L, static_cast<long>(std::ceil(k_lo - 1e-9)));
      const long k_end = std::min(static_cast<long>(n) - 1,
                                  static_cast<long>(std::floor(k_hi + 1e-9)));
      if (k_begin <= k_end) {
        const std::size_t k_mid = static_cast<std::size_t>((k_begin + k_end) / 2);
        if (ux * xs[k_mid] + uy * ys[k_mid] + uz * zs[k_mid] >= relaxed_threshold) {
          for (long k = k_begin; k <= k_end; ++k) exact(static_cast<std::size_t>(k));
        }
      }
      k_lo += steps_per_orbit;
      k_hi += steps_per_orbit;
    }
  }
}

StepMask CoverageEngine::coverage_mask(std::span<const constellation::Satellite> satellites,
                                       const orbit::TopocentricFrame& site) const {
  StepMask result(grid_.count);
  for (const constellation::Satellite& sat : satellites) {
    result |= visibility_mask(sat, site);
  }
  return result;
}

StepMask CoverageEngine::coverage_mask(std::span<const constellation::Satellite> satellites,
                                       const orbit::TopocentricFrame& site,
                                       const fault::FaultTimeline* faults) const {
  if (faults == nullptr || faults->empty()) return coverage_mask(satellites, site);
  StepMask result(grid_.count);
  for (std::size_t i = 0; i < satellites.size(); ++i) {
    StepMask mask = visibility_mask(satellites[i], site);
    if (const StepMask* out = faults->satellite_outage_steps(i)) mask.subtract(*out);
    result |= mask;
  }
  return result;
}

CoverageStats CoverageEngine::stats(const StepMask& mask) const {
  assert(mask.step_count() == grid_.count);
  CoverageStats out;
  out.covered_fraction = mask.fraction();
  const double window = grid_.duration_seconds();
  out.covered_seconds = out.covered_fraction * window;
  out.uncovered_seconds = window - out.covered_seconds;
  out.max_gap_seconds =
      static_cast<double>(mask.longest_zero_run()) * grid_.step_seconds;
  out.pass_count = mask.to_intervals(grid_.step_seconds).size();
  return out;
}

double CoverageEngine::weighted_coverage_seconds(
    std::span<const constellation::Satellite> satellites,
    std::span<const GroundSite> sites) const {
  double weight_total = 0.0;
  for (const GroundSite& site : sites) weight_total += site.weight;
  if (weight_total <= 0.0) return 0.0;

  std::vector<StepMask> unions(sites.size(), StepMask(grid_.count));
  for (const constellation::Satellite& sat : satellites) {
    const std::vector<StepMask> per_site = visibility_masks(sat, sites);
    for (std::size_t j = 0; j < sites.size(); ++j) unions[j] |= per_site[j];
  }

  double weighted = 0.0;
  for (std::size_t j = 0; j < sites.size(); ++j) {
    weighted += sites[j].weight / weight_total * unions[j].fraction();
  }
  return weighted * grid_.duration_seconds();
}

double CoverageEngine::idle_fraction(const constellation::Satellite& satellite,
                                     std::span<const GroundSite> sites) const {
  const std::vector<StepMask> per_site = visibility_masks(satellite, sites);
  StepMask busy(grid_.count);
  for (const StepMask& mask : per_site) busy |= mask;
  return 1.0 - busy.fraction();
}

VisibilityCache::VisibilityCache(const CoverageEngine& engine,
                                 std::span<const constellation::Satellite> catalog,
                                 std::span<const GroundSite> sites)
    : engine_(&engine),
      catalog_(catalog),
      sites_(sites.begin(), sites.end()),
      masks_(catalog.size() * sites.size()),
      computed_(catalog.size(), 0) {
  double total = 0.0;
  for (const GroundSite& site : sites_) total += site.weight;
  normalised_weights_.reserve(sites_.size());
  for (const GroundSite& site : sites_) {
    normalised_weights_.push_back(total > 0.0 ? site.weight / total : 0.0);
  }
}

void VisibilityCache::ensure_computed(std::size_t satellite_index) {
  assert(satellite_index < catalog_.size());
  if (computed_[satellite_index]) return;
  std::vector<StepMask> per_site =
      engine_->visibility_masks(catalog_[satellite_index], sites_);
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    masks_[satellite_index * sites_.size() + j] = std::move(per_site[j]);
  }
  computed_[satellite_index] = 1;
}

void VisibilityCache::precompute_all(util::ThreadPool* pool) {
  if (pool != nullptr) {
    // Each index touches only its own mask slots and computed_ byte, so the
    // parallel fill is race-free and bit-identical to the serial one.
    pool->parallel_for(catalog_.size(),
                       [this](std::size_t sat) { ensure_computed(sat); });
  } else {
    for (std::size_t sat = 0; sat < catalog_.size(); ++sat) ensure_computed(sat);
  }
}

const StepMask& VisibilityCache::mask(std::size_t satellite_index, std::size_t site_index) {
  ensure_computed(satellite_index);
  return masks_[satellite_index * sites_.size() + site_index];
}

StepMask VisibilityCache::union_mask(std::span<const std::size_t> satellite_indices,
                                     std::size_t site_index) {
  StepMask out(engine_->grid().count);
  for (std::size_t sat : satellite_indices) out |= mask(sat, site_index);
  return out;
}

StepMask VisibilityCache::union_mask(std::span<const std::size_t> satellite_indices,
                                     std::size_t site_index,
                                     const fault::FaultTimeline* faults) {
  if (faults == nullptr || faults->empty()) {
    return union_mask(satellite_indices, site_index);
  }
  StepMask out(engine_->grid().count);
  StepMask scratch;
  for (std::size_t sat : satellite_indices) {
    const StepMask& visible = mask(sat, site_index);
    if (const StepMask* outage = faults->satellite_outage_steps(sat)) {
      scratch = visible;
      scratch.subtract(*outage);
      out |= scratch;
    } else {
      out |= visible;
    }
  }
  return out;
}

double VisibilityCache::weighted_coverage_fraction(
    std::span<const std::size_t> satellite_indices) {
  double weighted = 0.0;
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    if (normalised_weights_[j] <= 0.0) continue;
    weighted += normalised_weights_[j] * union_mask(satellite_indices, j).fraction();
  }
  return weighted;
}

double VisibilityCache::weighted_coverage_fraction(
    std::span<const std::size_t> satellite_indices, const fault::FaultTimeline* faults) {
  if (faults == nullptr || faults->empty()) {
    return weighted_coverage_fraction(satellite_indices);
  }
  double weighted = 0.0;
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    if (normalised_weights_[j] <= 0.0) continue;
    weighted +=
        normalised_weights_[j] * union_mask(satellite_indices, j, faults).fraction();
  }
  return weighted;
}

}  // namespace mpleo::cov
