#include "coverage/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "coverage/footprint_index.hpp"
#include "fault/timeline.hpp"
#include "obs/metrics.hpp"
#include "orbit/propagator.hpp"
#include "sim/run_context.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace mpleo::cov {

GroundSite GroundSite::from_city(const City& city, double weight) {
  return {city.name, orbit::TopocentricFrame(city.location), weight};
}

std::vector<GroundSite> sites_from_cities(std::span<const City> cities,
                                          bool population_weighted) {
  std::vector<GroundSite> sites;
  sites.reserve(cities.size());
  for (const City& city : cities) {
    sites.push_back(GroundSite::from_city(city, population_weighted ? city.population : 1.0));
  }
  return sites;
}

std::vector<orbit::EphemerisSpec> ephemeris_specs(
    std::span<const constellation::Satellite> satellites,
    orbit::PropagatorBackend backend) {
  std::vector<orbit::EphemerisSpec> specs;
  specs.reserve(satellites.size());
  for (const constellation::Satellite& sat : satellites) {
    orbit::EphemerisSpec spec{sat.elements, sat.epoch, orbit::Perturbation::kJ2Secular};
    spec.backend = backend;
    specs.push_back(std::move(spec));
  }
  return specs;
}

CoverageEngine::CoverageEngine(const orbit::TimeGrid& grid, double elevation_mask_deg,
                               orbit::PropagatorBackend backend)
    : grid_(grid),
      mask_deg_(elevation_mask_deg),
      default_backend_(backend),
      mask_rad_(util::deg_to_rad(elevation_mask_deg)),
      sin_mask_(std::sin(util::deg_to_rad(elevation_mask_deg))),
      culler_(grid, elevation_mask_deg),
      gmst_(orbit::GmstTable::for_grid(grid)) {
  if (elevation_mask_deg < 0.0 || elevation_mask_deg >= 90.0) {
    throw std::invalid_argument("CoverageEngine: elevation mask must be in [0, 90)");
  }
  if (grid.count == 0) throw std::invalid_argument("CoverageEngine: empty time grid");
  if (!(grid.step_seconds > 0.0)) {
    throw std::invalid_argument("CoverageEngine: grid step must be positive");
  }
}

orbit::EphemerisTable CoverageEngine::ephemeris(
    const constellation::Satellite& satellite) const {
  return ephemeris(satellite, default_backend_);
}

orbit::EphemerisTable CoverageEngine::ephemeris(
    const constellation::Satellite& satellite, orbit::PropagatorBackend backend) const {
  if (backend == orbit::PropagatorBackend::kJ2Analytic) {
    const orbit::KeplerianPropagator prop(satellite.elements, satellite.epoch);
    return orbit::EphemerisTable::compute(prop, grid_, gmst_);
  }
  orbit::EphemerisSpec spec{satellite.elements, satellite.epoch,
                            orbit::Perturbation::kJ2Secular};
  spec.backend = backend;
  return orbit::EphemerisTable::compute(orbit::make_propagator(spec), grid_, gmst_);
}

orbit::EphemerisSet CoverageEngine::ephemerides(
    std::span<const constellation::Satellite> satellites, util::ThreadPool* pool) const {
  return ephemerides(satellites, pool, default_backend_);
}

orbit::EphemerisSet CoverageEngine::ephemerides(
    std::span<const constellation::Satellite> satellites, util::ThreadPool* pool,
    orbit::PropagatorBackend backend) const {
  const std::vector<orbit::EphemerisSpec> specs = ephemeris_specs(satellites, backend);
  return orbit::EphemerisSet::compute(specs, grid_, gmst_, pool);
}

orbit::EphemerisSet CoverageEngine::ephemerides(
    std::span<const constellation::Satellite> satellites, sim::RunContext& context) const {
  obs::ScopedTimer timer(context.metrics().histogram("cov.propagate_seconds"));
  orbit::EphemerisSet set =
      ephemerides(satellites, context.pool(), context.scenario().propagator);
  context.metrics().counter("cov.ephemeris_tables").add(satellites.size());
  return set;
}

StepMask CoverageEngine::visibility_mask(const constellation::Satellite& satellite,
                                         const orbit::TopocentricFrame& site) const {
  const GroundSite wrapped{"ad-hoc-site", site, 1.0};
  return visibility_masks(satellite, std::span<const GroundSite>(&wrapped, 1)).front();
}

std::vector<StepMask> CoverageEngine::visibility_masks(
    const constellation::Satellite& satellite, std::span<const GroundSite> sites) const {
  return visibility_masks(ephemeris(satellite), sites);
}

std::vector<StepMask> CoverageEngine::visibility_masks(
    const orbit::EphemerisTable& ephemeris, std::span<const GroundSite> sites) const {
  if (ephemeris.size() != grid_.count) {
    throw std::invalid_argument("CoverageEngine: ephemeris table does not match grid");
  }
  std::vector<StepMask> masks(sites.size(), StepMask(grid_.count));

  // Latitude-band prune: one conservative footprint cone for the whole site
  // family (built on the family's minimum site radius, so it is at least as
  // wide as any per-site cone) plus the table's latitude reach. A site whose
  // latitude the satellite provably cannot reach keeps its all-zero mask
  // without running the cull at all — the fill only ever sets bits the exact
  // elevation test confirms, and an unreachable site has none to set.
  double site_r_min = 0.0;
  for (std::size_t j = 0; j < sites.size(); ++j) {
    const double r = sites[j].frame.origin_ecef().norm();
    site_r_min = j == 0 ? r : std::min(site_r_min, r);
  }
  const FootprintCone cone = FootprintCone::make(
      ephemeris.min_radius_m(), ephemeris.max_radius_m(), site_r_min, mask_deg_);
  const double max_sin_lat = max_abs_sin_latitude(ephemeris);

  for (std::size_t j = 0; j < sites.size(); ++j) {
    const util::Vec3& origin = sites[j].frame.origin_ecef();
    const double r = origin.norm();
    const double site_sin_lat = r > 0.0 ? origin.z / r : 0.0;
    if (!latitude_reachable(max_sin_lat, cone.psi_rad, site_sin_lat)) continue;
    fill_visibility(ephemeris, sites[j], masks[j]);
  }
  return masks;
}

std::vector<StepMask> CoverageEngine::visibility_masks_reference(
    const constellation::Satellite& satellite, std::span<const GroundSite> sites) const {
  std::vector<StepMask> masks(sites.size(), StepMask(grid_.count));
  const orbit::KeplerianPropagator prop(satellite.elements, satellite.epoch);
  const double t0 = grid_.start.seconds_since(satellite.epoch);

  for (std::size_t step = 0; step < grid_.count; ++step) {
    const double dt = t0 + grid_.step_seconds * static_cast<double>(step);
    const util::Vec3 eci = prop.position_eci_at_offset(dt);
    const double c = gmst_.cos_gmst[step];
    const double s = gmst_.sin_gmst[step];
    const util::Vec3 ecef{c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z};
    for (std::size_t j = 0; j < sites.size(); ++j) {
      if (sites[j].frame.visible_above(ecef, sin_mask_)) masks[j].set(step);
    }
  }
  return masks;
}

void CoverageEngine::fill_visibility(const orbit::EphemerisTable& ephemeris,
                                     const GroundSite& site, StepMask& out) const {
  culler_.fill(ephemeris, site.frame, out);
}

StepMask CoverageEngine::coverage_mask(std::span<const constellation::Satellite> satellites,
                                       const orbit::TopocentricFrame& site) const {
  StepMask result(grid_.count);
  for (const constellation::Satellite& sat : satellites) {
    result |= visibility_mask(sat, site);
  }
  return result;
}

StepMask CoverageEngine::coverage_mask(std::span<const constellation::Satellite> satellites,
                                       const orbit::TopocentricFrame& site,
                                       const fault::FaultTimeline* faults) const {
  if (faults == nullptr || faults->empty()) return coverage_mask(satellites, site);
  StepMask result(grid_.count);
  for (std::size_t i = 0; i < satellites.size(); ++i) {
    StepMask mask = visibility_mask(satellites[i], site);
    if (const StepMask* out = faults->satellite_outage_steps(i)) mask.subtract(*out);
    result |= mask;
  }
  return result;
}

CoverageStats CoverageEngine::stats(const StepMask& mask) const {
  assert(mask.step_count() == grid_.count);
  CoverageStats out;
  out.covered_fraction = mask.fraction();
  const double window = grid_.duration_seconds();
  out.covered_seconds = out.covered_fraction * window;
  out.uncovered_seconds = window - out.covered_seconds;
  out.max_gap_seconds =
      static_cast<double>(mask.longest_zero_run()) * grid_.step_seconds;
  out.pass_count = mask.to_intervals(grid_.step_seconds).size();
  return out;
}

double CoverageEngine::weighted_coverage_seconds(
    std::span<const constellation::Satellite> satellites,
    std::span<const GroundSite> sites) const {
  double weight_total = 0.0;
  for (const GroundSite& site : sites) weight_total += site.weight;
  if (weight_total <= 0.0) return 0.0;

  std::vector<StepMask> unions(sites.size(), StepMask(grid_.count));
  for (const constellation::Satellite& sat : satellites) {
    const std::vector<StepMask> per_site = visibility_masks(sat, sites);
    for (std::size_t j = 0; j < sites.size(); ++j) unions[j] |= per_site[j];
  }

  double weighted = 0.0;
  for (std::size_t j = 0; j < sites.size(); ++j) {
    weighted += sites[j].weight / weight_total * unions[j].fraction();
  }
  return weighted * grid_.duration_seconds();
}

double CoverageEngine::idle_fraction(const constellation::Satellite& satellite,
                                     std::span<const GroundSite> sites) const {
  const std::vector<StepMask> per_site = visibility_masks(satellite, sites);
  StepMask busy(grid_.count);
  for (const StepMask& mask : per_site) busy |= mask;
  return 1.0 - busy.fraction();
}

VisibilityCache::VisibilityCache(const CoverageEngine& engine,
                                 std::span<const constellation::Satellite> catalog,
                                 std::span<const GroundSite> sites)
    : engine_(&engine),
      catalog_(catalog),
      sites_(sites.begin(), sites.end()),
      masks_(catalog.size() * sites.size()),
      computed_(catalog.size(), 0) {
  double total = 0.0;
  for (const GroundSite& site : sites_) total += site.weight;
  normalised_weights_.reserve(sites_.size());
  for (const GroundSite& site : sites_) {
    normalised_weights_.push_back(total > 0.0 ? site.weight / total : 0.0);
  }
}

void VisibilityCache::ensure_computed(std::size_t satellite_index) {
  assert(satellite_index < catalog_.size());
  if (computed_[satellite_index]) return;
  std::vector<StepMask> per_site =
      engine_->visibility_masks(catalog_[satellite_index], sites_);
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    masks_[satellite_index * sites_.size() + j] = std::move(per_site[j]);
  }
  computed_[satellite_index] = 1;
}

void VisibilityCache::precompute_all(sim::RunContext& context) {
  obs::ScopedTimer timer(context.metrics().histogram("cov.precompute_seconds"));
  // Count only the fills this call performs, not masks already cached.
  std::vector<std::size_t> fresh;
  fresh.reserve(catalog_.size());
  for (std::size_t sat = 0; sat < catalog_.size(); ++sat) {
    if (computed_[sat] == 0) fresh.push_back(sat);
  }
  precompute_all(context.pool());
  std::size_t visible = 0;
  for (const std::size_t sat : fresh) {
    for (std::size_t j = 0; j < sites_.size(); ++j) {
      visible += masks_[sat * sites_.size() + j].count();
    }
  }
  context.metrics().counter("cov.masks_filled").add(fresh.size() * sites_.size());
  context.metrics().counter("cov.visible_steps").add(visible);
}

void VisibilityCache::precompute_all(util::ThreadPool* pool) {
  if (pool != nullptr) {
    // Each index touches only its own mask slots and computed_ byte, so the
    // parallel fill is race-free and bit-identical to the serial one.
    pool->parallel_for(catalog_.size(),
                       [this](std::size_t sat) { ensure_computed(sat); });
  } else {
    for (std::size_t sat = 0; sat < catalog_.size(); ++sat) ensure_computed(sat);
  }
}

const StepMask& VisibilityCache::mask(std::size_t satellite_index, std::size_t site_index) {
  ensure_computed(satellite_index);
  return masks_[satellite_index * sites_.size() + site_index];
}

StepMask VisibilityCache::union_mask(std::span<const std::size_t> satellite_indices,
                                     std::size_t site_index) {
  StepMask out(engine_->grid().count);
  for (std::size_t sat : satellite_indices) out |= mask(sat, site_index);
  return out;
}

StepMask VisibilityCache::union_mask(std::span<const std::size_t> satellite_indices,
                                     std::size_t site_index,
                                     const fault::FaultTimeline* faults) {
  if (faults == nullptr || faults->empty()) {
    return union_mask(satellite_indices, site_index);
  }
  StepMask out(engine_->grid().count);
  StepMask scratch;
  for (std::size_t sat : satellite_indices) {
    const StepMask& visible = mask(sat, site_index);
    if (const StepMask* outage = faults->satellite_outage_steps(sat)) {
      scratch = visible;
      scratch.subtract(*outage);
      out |= scratch;
    } else {
      out |= visible;
    }
  }
  return out;
}

double VisibilityCache::weighted_coverage_fraction(
    std::span<const std::size_t> satellite_indices) {
  double weighted = 0.0;
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    if (normalised_weights_[j] <= 0.0) continue;
    weighted += normalised_weights_[j] * union_mask(satellite_indices, j).fraction();
  }
  return weighted;
}

double VisibilityCache::weighted_coverage_fraction(
    std::span<const std::size_t> satellite_indices, const fault::FaultTimeline* faults) {
  if (faults == nullptr || faults->empty()) {
    return weighted_coverage_fraction(satellite_indices);
  }
  double weighted = 0.0;
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    if (normalised_weights_[j] <= 0.0) continue;
    weighted +=
        normalised_weights_[j] * union_mask(satellite_indices, j, faults).fraction();
  }
  return weighted;
}

}  // namespace mpleo::cov
