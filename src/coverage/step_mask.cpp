#include "coverage/step_mask.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace mpleo::cov {

StepMask::StepMask(std::size_t step_count)
    : steps_(step_count), words_((step_count + 63) / 64, 0) {}

void StepMask::set(std::size_t index) noexcept {
  assert(index < steps_);
  words_[index >> 6] |= (std::uint64_t{1} << (index & 63));
}

void StepMask::reset(std::size_t index) noexcept {
  assert(index < steps_);
  words_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
}

bool StepMask::test(std::size_t index) const noexcept {
  assert(index < steps_);
  return (words_[index >> 6] >> (index & 63)) & 1;
}

std::size_t StepMask::count() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

double StepMask::fraction() const noexcept {
  if (steps_ == 0) return 0.0;
  return static_cast<double>(count()) / static_cast<double>(steps_);
}

StepMask& StepMask::operator|=(const StepMask& other) noexcept {
  assert(steps_ == other.steps_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

StepMask& StepMask::operator&=(const StepMask& other) noexcept {
  assert(steps_ == other.steps_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

StepMask& StepMask::subtract(const StepMask& other) noexcept {
  assert(steps_ == other.steps_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

StepMask StepMask::operator|(const StepMask& other) const {
  StepMask out = *this;
  out |= other;
  return out;
}

StepMask StepMask::operator&(const StepMask& other) const {
  StepMask out = *this;
  out &= other;
  return out;
}

std::size_t StepMask::longest_zero_run() const noexcept {
  std::size_t longest = 0;
  std::size_t current = 0;
  for (std::size_t i = 0; i < steps_; ++i) {
    if (test(i)) {
      current = 0;
    } else {
      ++current;
      longest = std::max(longest, current);
    }
  }
  return longest;
}

IntervalSet StepMask::to_intervals(double step_seconds) const {
  IntervalSet out;
  std::size_t run_start = 0;
  bool in_run = false;
  for (std::size_t i = 0; i < steps_; ++i) {
    if (test(i) && !in_run) {
      in_run = true;
      run_start = i;
    } else if (!test(i) && in_run) {
      in_run = false;
      out.insert(static_cast<double>(run_start) * step_seconds,
                 static_cast<double>(i) * step_seconds);
    }
  }
  if (in_run) {
    out.insert(static_cast<double>(run_start) * step_seconds,
               static_cast<double>(steps_) * step_seconds);
  }
  return out;
}

}  // namespace mpleo::cov
