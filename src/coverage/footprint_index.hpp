// Spatial index over ground sites for mega-constellation visibility.
//
// At 30k satellites x 1M terminals the O(sats x sites) pair enumeration that
// feeds the visibility cull is itself the bottleneck (3e10 pairs before a
// single mask word is written). FootprintIndex buckets sites by geocentric
// latitude band and longitude cell (cells per band scaled by cos(latitude),
// the same equal-area scheme as cov::EarthGrid) so a satellite's footprint
// swath — a spherical cap of conservative half-angle psi around the
// subsatellite direction — touches only the handful of cells its bounding
// box intersects. Everything here is a PRUNING structure in the
// VisibilityCuller tradition: a queried superset always contains every site
// the exact visible_above test would accept, so consumers that re-test
// survivors exactly stay bit-identical to the exhaustive pair scan.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "orbit/ephemeris.hpp"
#include "orbit/geodesy.hpp"
#include "util/vec3.hpp"

namespace mpleo::cov {

// Conservative footprint-cone constants for a family of satellites whose
// geocentric radius stays within [r_min_m, r_max_m], over sites at radius
// >= site_r_min_m, under an elevation mask. Mirrors the VisibilityCuller's
// zenith-cone derivation (same vertical-deflection and angular slacks), with
// the family bounds substituted for the per-satellite/per-site values — every
// substitution widens the cone, so the cap is a superset of each member's
// exact cap and pruning with it can only skip work, never flip bits.
struct FootprintCone {
  // Cap half-angle: a site more than psi_rad of central angle away from the
  // satellite's geocentric direction cannot clear the elevation mask.
  double psi_rad = 0.0;
  // Dot-product form of the same test: a site with unit direction u can see
  // a satellite at ECEF position p only if dot(u, p) >= dot_threshold.
  double dot_threshold = 0.0;
  // Degenerate geometry (mask outside [0, 90), non-positive radii, satellite
  // family not safely above the sites): psi_rad is pi and dot_threshold
  // passes everything, i.e. no pruning.
  bool exhaustive = false;

  [[nodiscard]] static FootprintCone make(double r_min_m, double r_max_m,
                                          double site_r_min_m,
                                          double elevation_mask_deg);
};

// Largest |sin(geocentric latitude)| the table's sampled positions reach.
// Exact over the grid (visibility is only ever evaluated at sampled steps),
// valid for any orbit shape.
[[nodiscard]] double max_abs_sin_latitude(const orbit::EphemerisTable& table);

// Latitude-band reachability: can a satellite whose |sin(latitude)| never
// exceeds `max_abs_sin_lat` place a site whose geocentric sin(latitude) is
// `site_sin_lat` inside a cap of half-angle psi_rad? False means the site's
// visibility mask over that satellite is provably empty. Conservative (small
// angular pad), so callers may skip the fill entirely on false.
[[nodiscard]] bool latitude_reachable(double max_abs_sin_lat, double psi_rad,
                                      double site_sin_lat);

class FootprintIndex {
 public:
  // A contiguous [begin, end) slice of the index's SoA arrays — one run of
  // sites sharing a (band, cell) neighbourhood.
  struct Range {
    std::uint32_t begin = 0;
    std::uint32_t end = 0;
  };

  FootprintIndex() = default;

  // Buckets the sites behind `frames` (their ECEF origins) into latitude
  // bands of `band_height_deg`, each split into longitude cells scaled by
  // cos(latitude).
  explicit FootprintIndex(std::span<const orbit::TopocentricFrame> frames,
                          double band_height_deg = 4.0);

  [[nodiscard]] std::size_t site_count() const noexcept { return site_ids_.size(); }
  // Smallest site geocentric radius — the site_r_min_m a conservative
  // FootprintCone over these sites needs. 0 for an empty index.
  [[nodiscard]] double min_site_radius_m() const noexcept { return min_site_radius_m_; }

  // SoA views over the bucketed sites, sorted by (band, cell) so a cap query
  // yields contiguous runs the cone dot-test can stream through. unit_*()
  // are the sites' unit ECEF directions; site_ids()[j] maps slot j back to
  // the index of the frame it was built from.
  [[nodiscard]] std::span<const double> unit_x() const noexcept { return ux_; }
  [[nodiscard]] std::span<const double> unit_y() const noexcept { return uy_; }
  [[nodiscard]] std::span<const double> unit_z() const noexcept { return uz_; }
  [[nodiscard]] std::span<const std::uint32_t> site_ids() const noexcept {
    return site_ids_;
  }

  // Appends to `out` the SoA ranges of every cell whose latitude/longitude
  // bounds intersect the spherical cap of half-angle `psi_rad` centred on
  // `center` (need not be normalised; a zero vector yields everything).
  // Conservative: the union of the ranges covers every site within psi_rad
  // of the cap centre. Ranges are disjoint and ascending.
  void query_cap(const util::Vec3& center, double psi_rad,
                 std::vector<Range>& out) const;

  // Appends to `out` the original site indices of every band intersecting
  // geocentric sin(latitude) range [sin_lat_lo, sin_lat_hi] (inclusive,
  // conservative). Order follows the index layout, not the original one.
  void query_latitude_band(double sin_lat_lo, double sin_lat_hi,
                           std::vector<std::uint32_t>& out) const;

 private:
  [[nodiscard]] std::size_t band_of(double lat_rad) const noexcept;

  double band_height_rad_ = 0.0;
  double min_site_radius_m_ = 0.0;
  std::size_t band_count_ = 0;
  // Flat cell table: band b owns cells [band_cell_begin_[b],
  // band_cell_begin_[b + 1]); cell_offsets_[c] is the first SoA slot of flat
  // cell c (one-past table, size total_cells + 1).
  std::vector<std::uint32_t> band_cell_begin_;
  std::vector<std::uint32_t> cell_offsets_;
  std::vector<double> ux_, uy_, uz_;
  std::vector<std::uint32_t> site_ids_;
};

}  // namespace mpleo::cov
