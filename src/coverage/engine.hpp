// The coverage engine: per-satellite visibility timelines, constellation
// coverage unions, gap statistics, idle time, and population-weighted
// coverage — everything the paper's Figures 2–6 are computed from.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "constellation/shell.hpp"
#include "coverage/cities.hpp"
#include "coverage/step_mask.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/time.hpp"

namespace mpleo::cov {

// A ground site prepared for fast visibility testing.
struct GroundSite {
  std::string name;
  orbit::TopocentricFrame frame;
  double weight = 1.0;

  [[nodiscard]] static GroundSite from_city(const City& city, double weight = 1.0);
};

[[nodiscard]] std::vector<GroundSite> sites_from_cities(std::span<const City> cities,
                                                        bool population_weighted = true);

// Gap statistics of one site's coverage timeline.
struct CoverageStats {
  double covered_fraction = 0.0;    // fraction of the window with >=1 satellite
  double covered_seconds = 0.0;
  double uncovered_seconds = 0.0;
  double max_gap_seconds = 0.0;     // longest continuous outage
  std::size_t pass_count = 0;       // number of distinct covered runs
};

class CoverageEngine {
 public:
  // `elevation_mask_deg` is the minimum elevation for a usable link; 25° is
  // Starlink's operational terminal mask and the library default.
  CoverageEngine(const orbit::TimeGrid& grid, double elevation_mask_deg = 25.0);

  [[nodiscard]] const orbit::TimeGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] double elevation_mask_deg() const noexcept { return mask_deg_; }

  // Visibility timeline of one satellite over one site.
  [[nodiscard]] StepMask visibility_mask(const constellation::Satellite& satellite,
                                         const orbit::TopocentricFrame& site) const;

  // One propagation sweep, all sites: masks[i] corresponds to sites[i].
  [[nodiscard]] std::vector<StepMask> visibility_masks(
      const constellation::Satellite& satellite,
      std::span<const GroundSite> sites) const;

  // Union coverage of a satellite set over one site.
  [[nodiscard]] StepMask coverage_mask(std::span<const constellation::Satellite> satellites,
                                       const orbit::TopocentricFrame& site) const;

  [[nodiscard]] CoverageStats stats(const StepMask& mask) const;

  // Population-weighted covered time in seconds: sum_i weight_i * covered_i.
  // Weights are taken from the sites (normalised by their sum).
  [[nodiscard]] double weighted_coverage_seconds(
      std::span<const constellation::Satellite> satellites,
      std::span<const GroundSite> sites) const;

  // Idle fraction of one satellite: fraction of the window during which the
  // satellite sees none of the sites (the paper's §2 idle-time metric).
  [[nodiscard]] double idle_fraction(const constellation::Satellite& satellite,
                                     std::span<const GroundSite> sites) const;

 private:
  orbit::TimeGrid grid_;
  double mask_deg_;
  double sin_mask_;
  orbit::GmstTable gmst_;
};

// Memoised per-(satellite, site) masks over a fixed catalog — the working set
// of the Monte-Carlo benches. Masks are computed lazily, one propagation
// sweep per satellite covering all sites.
class VisibilityCache {
 public:
  VisibilityCache(const CoverageEngine& engine,
                  std::span<const constellation::Satellite> catalog,
                  std::span<const GroundSite> sites);

  [[nodiscard]] const StepMask& mask(std::size_t satellite_index, std::size_t site_index);

  // Union over the given satellites at one site.
  [[nodiscard]] StepMask union_mask(std::span<const std::size_t> satellite_indices,
                                    std::size_t site_index);

  // Weighted coverage fraction over all sites for the given satellite set.
  [[nodiscard]] double weighted_coverage_fraction(
      std::span<const std::size_t> satellite_indices);

  [[nodiscard]] std::size_t site_count() const noexcept { return sites_.size(); }
  [[nodiscard]] std::size_t satellite_count() const noexcept { return catalog_.size(); }
  [[nodiscard]] const CoverageEngine& engine() const noexcept { return *engine_; }

 private:
  void ensure_computed(std::size_t satellite_index);

  const CoverageEngine* engine_;
  std::span<const constellation::Satellite> catalog_;
  std::vector<GroundSite> sites_;
  std::vector<double> normalised_weights_;
  // masks_[sat * site_count + site]; empty() until computed.
  std::vector<StepMask> masks_;
  std::vector<bool> computed_;
};

}  // namespace mpleo::cov
