// The coverage engine: per-satellite visibility timelines, constellation
// coverage unions, gap statistics, idle time, and population-weighted
// coverage — everything the paper's Figures 2–6 are computed from.
//
// All visibility flows through the shared ephemeris kernel: a satellite is
// propagated once per grid into an orbit::EphemerisTable and every consumer
// (masks, contact plans, ISL relays, handover timelines, placement) reads
// that table. The per-site fill culls with a conservative geometric cone —
// a satellite further than psi_max from the site's zenith direction cannot
// clear the elevation mask — so only a few percent of the grid ever reaches
// the exact elevation test, with results identical to the exhaustive scan.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "constellation/shell.hpp"
#include "coverage/cities.hpp"
#include "coverage/step_mask.hpp"
#include "coverage/visibility_cull.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/time.hpp"

namespace mpleo::util {
class ThreadPool;
}
namespace mpleo::fault {
class FaultTimeline;
}
namespace mpleo::sim {
class RunContext;
}

namespace mpleo::cov {

// A ground site prepared for fast visibility testing.
struct GroundSite {
  std::string name;
  orbit::TopocentricFrame frame;
  double weight = 1.0;

  [[nodiscard]] static GroundSite from_city(const City& city, double weight = 1.0);
};

[[nodiscard]] std::vector<GroundSite> sites_from_cities(std::span<const City> cities,
                                                        bool population_weighted = true);

// Ephemeris inputs for a catalog, in catalog order. The backend selects
// which propagator fills each table; kJ2Analytic is bit-identical to the
// historical single-backend path.
[[nodiscard]] std::vector<orbit::EphemerisSpec> ephemeris_specs(
    std::span<const constellation::Satellite> satellites,
    orbit::PropagatorBackend backend = orbit::PropagatorBackend::kJ2Analytic);

// Gap statistics of one site's coverage timeline.
struct CoverageStats {
  double covered_fraction = 0.0;    // fraction of the window with >=1 satellite
  double covered_seconds = 0.0;
  double uncovered_seconds = 0.0;
  double max_gap_seconds = 0.0;     // longest continuous outage
  std::size_t pass_count = 0;       // number of distinct covered runs
};

class CoverageEngine {
 public:
  // `elevation_mask_deg` is the minimum elevation for a usable link; 25° is
  // Starlink's operational terminal mask and the library default. `backend`
  // is the propagator every entry point without an explicit backend uses
  // (e.g. a scenario's --propagator=); the default keeps the engine
  // bit-identical to the historical J2-only behavior.
  CoverageEngine(const orbit::TimeGrid& grid, double elevation_mask_deg = 25.0,
                 orbit::PropagatorBackend backend = orbit::PropagatorBackend::kJ2Analytic);

  [[nodiscard]] const orbit::TimeGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] double elevation_mask_deg() const noexcept { return mask_deg_; }
  [[nodiscard]] orbit::PropagatorBackend default_backend() const noexcept {
    return default_backend_;
  }
  [[nodiscard]] const orbit::GmstTable& gmst() const noexcept { return gmst_; }
  // The pair-visibility cull kernel every fill rides; shared with other
  // mask consumers (e.g. the pipelined scheduler) so they cull identically.
  [[nodiscard]] const VisibilityCuller& culler() const noexcept { return culler_; }

  // One satellite propagated over the engine's grid (reusing the shared
  // GMST table). The table can serve any number of sites or consumers.
  // Without an explicit backend the engine's default applies.
  [[nodiscard]] orbit::EphemerisTable ephemeris(
      const constellation::Satellite& satellite) const;
  [[nodiscard]] orbit::EphemerisTable ephemeris(
      const constellation::Satellite& satellite,
      orbit::PropagatorBackend backend) const;

  // Shared ephemerides of a whole catalog; parallel across satellites when a
  // pool is given. Without an explicit backend the engine's default applies
  // (bit-identical to the historical single-backend fill when that default
  // is kJ2Analytic).
  [[nodiscard]] orbit::EphemerisSet ephemerides(
      std::span<const constellation::Satellite> satellites,
      util::ThreadPool* pool = nullptr) const;
  [[nodiscard]] orbit::EphemerisSet ephemerides(
      std::span<const constellation::Satellite> satellites, util::ThreadPool* pool,
      orbit::PropagatorBackend backend) const;

  // RunContext entry point: pool and propagator backend from the context's
  // scenario, propagation time and table counts recorded into
  // context.metrics() under "cov.". Bit-identical to the pool overload for
  // any context whose scenario keeps the default backend.
  [[nodiscard]] orbit::EphemerisSet ephemerides(
      std::span<const constellation::Satellite> satellites, sim::RunContext& context) const;

  // Visibility timeline of one satellite over one site.
  [[nodiscard]] StepMask visibility_mask(const constellation::Satellite& satellite,
                                         const orbit::TopocentricFrame& site) const;

  // One propagation sweep, all sites: masks[i] corresponds to sites[i].
  [[nodiscard]] std::vector<StepMask> visibility_masks(
      const constellation::Satellite& satellite,
      std::span<const GroundSite> sites) const;

  // Same masks from a precomputed ephemeris table (the shared-kernel entry
  // point used by the batched pipeline).
  [[nodiscard]] std::vector<StepMask> visibility_masks(
      const orbit::EphemerisTable& ephemeris, std::span<const GroundSite> sites) const;

  // Exhaustive per-step scan without the ephemeris table or culling — the
  // scalar reference the batched kernel is validated and benchmarked
  // against. Slow; use visibility_masks.
  [[nodiscard]] std::vector<StepMask> visibility_masks_reference(
      const constellation::Satellite& satellite,
      std::span<const GroundSite> sites) const;

  // Union coverage of a satellite set over one site.
  [[nodiscard]] StepMask coverage_mask(std::span<const constellation::Satellite> satellites,
                                       const orbit::TopocentricFrame& site) const;

  // Fault-aware union: satellite i of the span is intersected with its
  // availability in `faults` (fault asset index == span index) before the
  // union. nullptr or an empty timeline is bit-identical to the overload
  // above.
  [[nodiscard]] StepMask coverage_mask(std::span<const constellation::Satellite> satellites,
                                       const orbit::TopocentricFrame& site,
                                       const fault::FaultTimeline* faults) const;

  [[nodiscard]] CoverageStats stats(const StepMask& mask) const;

  // Population-weighted covered time in seconds: sum_i weight_i * covered_i.
  // Weights are taken from the sites (normalised by their sum).
  [[nodiscard]] double weighted_coverage_seconds(
      std::span<const constellation::Satellite> satellites,
      std::span<const GroundSite> sites) const;

  // Idle fraction of one satellite: fraction of the window during which the
  // satellite sees none of the sites (the paper's §2 idle-time metric).
  [[nodiscard]] double idle_fraction(const constellation::Satellite& satellite,
                                     std::span<const GroundSite> sites) const;

 private:
  // Sets the visible steps of `ephemeris` over `site` in `out` (all-zero on
  // entry).
  void fill_visibility(const orbit::EphemerisTable& ephemeris, const GroundSite& site,
                       StepMask& out) const;

  orbit::TimeGrid grid_;
  double mask_deg_;
  orbit::PropagatorBackend default_backend_;
  double mask_rad_;
  double sin_mask_;
  VisibilityCuller culler_;
  orbit::GmstTable gmst_;
};

// Memoised per-(satellite, site) masks over a fixed catalog — the working set
// of the Monte-Carlo benches. Masks are computed lazily one satellite at a
// time, or eagerly for the whole catalog with precompute_all (optionally in
// parallel across satellites; the parallel fill is bit-identical to the
// serial one). The lazy accessors are not thread-safe; precompute first when
// sharing a cache across threads.
class VisibilityCache {
 public:
  VisibilityCache(const CoverageEngine& engine,
                  std::span<const constellation::Satellite> catalog,
                  std::span<const GroundSite> sites);

  // Computes every satellite's masks up front. With a pool, satellites are
  // filled concurrently (each writes only its own mask slots).
  void precompute_all(util::ThreadPool* pool = nullptr);

  // RunContext entry point: pool from the context, fill time and mask/step
  // counts recorded into context.metrics() under "cov.". Bit-identical to
  // the pool overload for any context.
  void precompute_all(sim::RunContext& context);

  [[nodiscard]] const StepMask& mask(std::size_t satellite_index, std::size_t site_index);

  // Union over the given satellites at one site.
  [[nodiscard]] StepMask union_mask(std::span<const std::size_t> satellite_indices,
                                    std::size_t site_index);

  // Fault-aware union: each satellite's mask is intersected with its
  // availability (fault asset index == catalog index) before the union.
  // nullptr or an empty timeline is bit-identical to the overload above;
  // satellites the timeline never faults skip the mask arithmetic entirely.
  [[nodiscard]] StepMask union_mask(std::span<const std::size_t> satellite_indices,
                                    std::size_t site_index,
                                    const fault::FaultTimeline* faults);

  // Weighted coverage fraction over all sites for the given satellite set.
  [[nodiscard]] double weighted_coverage_fraction(
      std::span<const std::size_t> satellite_indices);

  // Fault-degraded weighted coverage; same bit-identity contract as the
  // fault-aware union_mask.
  [[nodiscard]] double weighted_coverage_fraction(
      std::span<const std::size_t> satellite_indices,
      const fault::FaultTimeline* faults);

  // Normalised site weight (sums to 1 over all sites with positive weight).
  [[nodiscard]] double site_weight(std::size_t site_index) const {
    return normalised_weights_[site_index];
  }

  [[nodiscard]] std::size_t site_count() const noexcept { return sites_.size(); }
  [[nodiscard]] std::size_t satellite_count() const noexcept { return catalog_.size(); }
  [[nodiscard]] const CoverageEngine& engine() const noexcept { return *engine_; }

 private:
  void ensure_computed(std::size_t satellite_index);

  const CoverageEngine* engine_;
  std::span<const constellation::Satellite> catalog_;
  std::vector<GroundSite> sites_;
  std::vector<double> normalised_weights_;
  // masks_[sat * site_count + site]; empty() until computed.
  std::vector<StepMask> masks_;
  // Byte flags (not vector<bool>): distinct satellites touch distinct bytes,
  // so the parallel precompute writes race-free.
  std::vector<std::uint8_t> computed_;
};

}  // namespace mpleo::cov
