// The paper's ground-site set: the 20 most populated cities limited to one
// per country, plus Melbourne for Australian-continent representation (§2,
// §3.2), and Taipei as the Fig-2 sovereign-coverage case study.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "orbit/geodesy.hpp"

namespace mpleo::cov {

struct City {
  std::string name;
  std::string country;
  orbit::Geodetic location;
  double population = 0.0;  // metro population, used as the coverage weight
};

// The paper's 21-city list in descending population order. Stable ordering:
// experiments that "serve the first k cities" index this list directly.
[[nodiscard]] const std::vector<City>& paper_cities();

// Taipei, the Fig-2 receiver site.
[[nodiscard]] const City& taipei();

// Population weights normalised to sum to 1 over `cities`.
[[nodiscard]] std::vector<double> population_weights(std::span<const City> cities);

}  // namespace mpleo::cov
