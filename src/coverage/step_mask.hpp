// A per-step boolean timeline over a TimeGrid, packed 64 steps per word.
//
// Monte-Carlo coverage experiments union thousands of per-satellite
// visibility timelines; with masks that union is a word-wide OR, making a
// 100-run sampling experiment over a 1-week grid essentially free once the
// per-satellite masks exist.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coverage/interval_set.hpp"

namespace mpleo::cov {

class StepMask {
 public:
  StepMask() = default;
  explicit StepMask(std::size_t step_count);

  [[nodiscard]] std::size_t step_count() const noexcept { return steps_; }

  void set(std::size_t index) noexcept;
  void reset(std::size_t index) noexcept;
  [[nodiscard]] bool test(std::size_t index) const noexcept;

  // Number of set steps.
  [[nodiscard]] std::size_t count() const noexcept;
  // Fraction of steps set, in [0, 1]; 0 for an empty mask.
  [[nodiscard]] double fraction() const noexcept;

  // In-place bitwise ops. Preconditions: same step_count.
  StepMask& operator|=(const StepMask& other) noexcept;
  StepMask& operator&=(const StepMask& other) noexcept;
  // Clears in *this every step set in `other` (and-not).
  StepMask& subtract(const StepMask& other) noexcept;

  [[nodiscard]] StepMask operator|(const StepMask& other) const;
  [[nodiscard]] StepMask operator&(const StepMask& other) const;

  // Longest run of consecutive unset steps.
  [[nodiscard]] std::size_t longest_zero_run() const noexcept;

  // Raw 64-step words, low bit = lowest step index; bits at or beyond
  // step_count() are always zero. Word-at-a-time consumers (the pipelined
  // scheduler's candidate walk) use this to skip empty 64-step chunks with
  // one load instead of 64 tests.
  [[nodiscard]] std::span<const std::uint64_t> words() const noexcept { return words_; }

  // Converts set runs to intervals on [0, step_count*step_seconds).
  [[nodiscard]] IntervalSet to_intervals(double step_seconds) const;

  friend bool operator==(const StepMask&, const StepMask&) = default;

 private:
  std::size_t steps_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mpleo::cov
