#include "coverage/grid.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "coverage/engine.hpp"
#include "util/units.hpp"

namespace mpleo::cov {

EarthGrid::EarthGrid(double band_height_deg, double max_latitude_deg) {
  if (band_height_deg <= 0.0 || max_latitude_deg <= 0.0 || max_latitude_deg > 90.0) {
    throw std::invalid_argument("EarthGrid: invalid band height or latitude cap");
  }
  // Cells per band at the equator; scaled down by cos(lat) toward the poles.
  const auto equator_cells =
      static_cast<int>(std::lround(360.0 / band_height_deg));

  double total_weight = 0.0;
  for (double lat = -max_latitude_deg + band_height_deg / 2.0; lat < max_latitude_deg;
       lat += band_height_deg) {
    const double cos_lat = std::cos(util::deg_to_rad(lat));
    const int cells_in_band =
        std::max(1, static_cast<int>(std::lround(equator_cells * cos_lat)));
    const double lon_step = 360.0 / cells_in_band;
    for (int c = 0; c < cells_in_band; ++c) {
      Cell cell;
      cell.center = orbit::Geodetic::from_degrees(lat, -180.0 + lon_step * (c + 0.5));
      cell.area_weight = cos_lat;  // proportional to band area per cell count
      cells_.push_back(cell);
      total_weight += cos_lat;
    }
  }
  for (Cell& cell : cells_) cell.area_weight /= total_weight;
}

std::vector<double> cell_coverage(const CoverageEngine& engine, const EarthGrid& grid,
                                  std::span<const constellation::Satellite> satellites) {
  std::vector<GroundSite> sites;
  sites.reserve(grid.size());
  for (const EarthGrid::Cell& cell : grid.cells()) {
    sites.push_back({"cell", orbit::TopocentricFrame(cell.center), cell.area_weight});
  }

  std::vector<StepMask> unions(sites.size(), StepMask(engine.grid().count));
  for (const constellation::Satellite& sat : satellites) {
    const std::vector<StepMask> per_cell = engine.visibility_masks(sat, sites);
    for (std::size_t i = 0; i < sites.size(); ++i) unions[i] |= per_cell[i];
  }

  std::vector<double> fractions;
  fractions.reserve(sites.size());
  for (const StepMask& mask : unions) fractions.push_back(mask.fraction());
  return fractions;
}

double global_coverage_fraction(const EarthGrid& grid,
                                std::span<const double> cell_fractions) {
  if (cell_fractions.size() != grid.size()) {
    throw std::invalid_argument("global_coverage_fraction: arity mismatch");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    total += grid.cells()[i].area_weight * cell_fractions[i];
  }
  return total;
}

std::vector<std::size_t> worst_cells(std::span<const double> cell_fractions,
                                     std::size_t k) {
  std::vector<std::size_t> order(cell_fractions.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return cell_fractions[a] < cell_fractions[b];
                    });
  order.resize(k);
  return order;
}

std::string ascii_coverage_map(const EarthGrid& grid,
                               std::span<const double> cell_fractions) {
  if (cell_fractions.size() != grid.size()) {
    throw std::invalid_argument("ascii_coverage_map: arity mismatch");
  }
  auto glyph = [](double f) {
    if (f >= 0.9) return '#';
    if (f >= 0.6) return '+';
    if (f >= 0.3) return '-';
    if (f > 0.0) return '.';
    return ' ';
  };

  // Group cells by latitude band (cells are generated south->north, each
  // band contiguous); render north at the top.
  std::string out;
  std::vector<std::string> rows;
  std::size_t i = 0;
  while (i < grid.size()) {
    const double lat = grid.cells()[i].center.latitude_rad;
    std::string row;
    while (i < grid.size() && grid.cells()[i].center.latitude_rad == lat) {
      row += glyph(cell_fractions[i]);
      ++i;
    }
    rows.push_back(std::move(row));
  }
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    out += *it;
    out += '\n';
  }
  return out;
}

}  // namespace mpleo::cov
