#include "coverage/footprint_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "util/units.hpp"

namespace mpleo::cov {
namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kTwoPi = 2.0 * std::numbers::pi;
constexpr double kHalfPi = 0.5 * std::numbers::pi;

// Same bounds the VisibilityCuller bakes into its cone (visibility_cull.cpp):
// geodetic-vertical vs geocentric-radial deflection, plus the angular slack
// absorbing table round-off. Keeping the constants identical means a
// FootprintCone is exactly the culler's cone with the family-wide extreme
// radii substituted in — never tighter.
constexpr double kVerticalDeflection = 0.0035;
constexpr double kAngularSlack = 2e-4;
// Pure floating-point pad on the asin/acos/atan2 chain in cap queries; the
// geometric margins above dwarf it.
constexpr double kQuerySlack = 1e-9;

[[nodiscard]] double clamp_unit(double v) { return std::clamp(v, -1.0, 1.0); }

[[nodiscard]] double wrap_lon(double lon) {
  lon = std::fmod(lon, kTwoPi);
  if (lon < 0.0) lon += kTwoPi;
  return lon;
}

}  // namespace

FootprintCone FootprintCone::make(double r_min_m, double r_max_m,
                                  double site_r_min_m,
                                  double elevation_mask_deg) {
  FootprintCone cone;
  // Degenerate geometry mirrors the culler's exhaustive fallback: outside the
  // cone derivation's domain the cap is the whole sphere and the dot test
  // passes everything (threshold below -|p| for any table position).
  const bool bad_mask = elevation_mask_deg < 0.0 || elevation_mask_deg >= 90.0;
  if (bad_mask || !(site_r_min_m > 0.0) || !(r_min_m > 0.0) ||
      !(r_max_m >= r_min_m) || !(r_max_m > site_r_min_m * 1.001)) {
    cone.psi_rad = kPi;
    cone.dot_threshold = -4.0 * std::max(r_max_m, 1.0);
    cone.exhaustive = true;
    return cone;
  }

  // psi = acos(c) - theta_t with c = (R/r_max) * cos(m_eff). Substituting the
  // family minimum R and maximum r_max minimises c, hence maximises psi: the
  // family cone contains every member/site cone, and a site outside it is
  // outside all of them.
  const double m_eff = util::deg_to_rad(elevation_mask_deg) - kVerticalDeflection;
  const double theta_t = m_eff - kAngularSlack;
  const double c = (site_r_min_m / r_max_m) * std::cos(m_eff);  // in (0, 1)
  const double s_c = std::sqrt(std::max(0.0, 1.0 - c * c));
  const double cos_psi = c * std::cos(theta_t) + s_c * std::sin(theta_t);
  cone.psi_rad = std::acos(clamp_unit(cos_psi));
  // Dot form, bounded below over r in [r_min, r_max] exactly as the culler
  // does: visible at radius r implies dot(u, p) = r * cos(angle) >=
  // r * cos_psi >= r_ref * cos_psi > threshold.
  const double r_ref = cos_psi >= 0.0 ? r_min_m : r_max_m;
  cone.dot_threshold = cos_psi * r_ref - 1e-6 * r_max_m;
  return cone;
}

double max_abs_sin_latitude(const orbit::EphemerisTable& table) {
  const std::span<const double> zs = table.z();
  const std::span<const double> rs = table.radius_m();
  double max_sin = 0.0;
  for (std::size_t k = 0; k < zs.size(); ++k) {
    if (!(rs[k] > 0.0)) return 1.0;  // degenerate position: assume anywhere
    max_sin = std::max(max_sin, std::abs(zs[k]) / rs[k]);
  }
  return std::min(max_sin, 1.0);
}

bool latitude_reachable(double max_abs_sin_lat, double psi_rad,
                        double site_sin_lat) {
  if (psi_rad >= kHalfPi) return true;
  const double sat_lat = std::asin(clamp_unit(max_abs_sin_lat));
  const double site_lat = std::abs(std::asin(clamp_unit(site_sin_lat)));
  // Visible => central angle <= psi => |lat_site - lat_sat| <= psi.
  return site_lat <= sat_lat + psi_rad + kQuerySlack;
}

FootprintIndex::FootprintIndex(std::span<const orbit::TopocentricFrame> frames,
                               double band_height_deg) {
  if (!(band_height_deg > 0.0) || band_height_deg > 180.0) band_height_deg = 4.0;
  band_height_rad_ = util::deg_to_rad(band_height_deg);
  band_count_ = static_cast<std::size_t>(std::ceil(kPi / band_height_rad_));
  const std::size_t n = frames.size();

  // Cells per band shrink with cos(latitude) so cells stay roughly square
  // (equal-area, same scheme as cov::EarthGrid); the equatorial band gets
  // ~2*pi / band_height cells.
  const double base_cells = std::ceil(kTwoPi / band_height_rad_);
  band_cell_begin_.assign(band_count_ + 1, 0);
  for (std::size_t b = 0; b < band_count_; ++b) {
    const double center =
        -kHalfPi + (static_cast<double>(b) + 0.5) * band_height_rad_;
    const double cos_c = std::cos(std::clamp(center, -kHalfPi, kHalfPi));
    const auto cells = static_cast<std::uint32_t>(
        std::max(1.0, std::round(base_cells * std::max(0.0, cos_c))));
    band_cell_begin_[b + 1] = band_cell_begin_[b] + cells;
  }
  const std::size_t total_cells = band_cell_begin_[band_count_];

  // Two passes: count sites per flat cell, prefix-sum, scatter into SoA.
  std::vector<std::uint32_t> cell_of(n, 0);
  std::vector<std::uint32_t> counts(total_cells, 0);
  std::vector<double> unit(3 * n, 0.0);
  min_site_radius_m_ = n == 0 ? 0.0 : std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < n; ++i) {
    const util::Vec3& origin = frames[i].origin_ecef();
    const double r = origin.norm();
    min_site_radius_m_ = std::min(min_site_radius_m_, r);
    double lat = 0.0, lon = 0.0;
    if (r > 0.0) {
      const double inv_r = 1.0 / r;
      unit[3 * i] = origin.x * inv_r;
      unit[3 * i + 1] = origin.y * inv_r;
      unit[3 * i + 2] = origin.z * inv_r;
      lat = std::asin(clamp_unit(origin.z * inv_r));
      lon = wrap_lon(std::atan2(origin.y, origin.x));
    }
    // Zero-radius sites keep a zero unit vector and land in the equatorial
    // cell; min_site_radius_m() == 0 then forces the paired FootprintCone
    // exhaustive (psi = pi), so every query still returns them.
    const std::size_t b = band_of(lat);
    const std::uint32_t cells_b = band_cell_begin_[b + 1] - band_cell_begin_[b];
    auto ci = static_cast<std::uint32_t>(lon / kTwoPi * cells_b);
    ci = std::min(ci, cells_b - 1);
    cell_of[i] = band_cell_begin_[b] + ci;
    ++counts[cell_of[i]];
  }
  if (n == 0) min_site_radius_m_ = 0.0;

  cell_offsets_.assign(total_cells + 1, 0);
  for (std::size_t c = 0; c < total_cells; ++c) {
    cell_offsets_[c + 1] = cell_offsets_[c] + counts[c];
  }
  ux_.resize(n);
  uy_.resize(n);
  uz_.resize(n);
  site_ids_.resize(n);
  std::vector<std::uint32_t> cursor(cell_offsets_.begin(),
                                    cell_offsets_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t slot = cursor[cell_of[i]]++;
    ux_[slot] = unit[3 * i];
    uy_[slot] = unit[3 * i + 1];
    uz_[slot] = unit[3 * i + 2];
    site_ids_[slot] = static_cast<std::uint32_t>(i);
  }
}

std::size_t FootprintIndex::band_of(double lat_rad) const noexcept {
  const double shifted = (lat_rad + kHalfPi) / band_height_rad_;
  const auto b = static_cast<long>(std::floor(shifted));
  return static_cast<std::size_t>(
      std::clamp(b, 0L, static_cast<long>(band_count_) - 1L));
}

void FootprintIndex::query_cap(const util::Vec3& center, double psi_rad,
                               std::vector<Range>& out) const {
  const auto size = static_cast<std::uint32_t>(site_ids_.size());
  if (size == 0) return;
  const double norm = center.norm();
  if (!(norm > 0.0) || psi_rad >= kPi - kQuerySlack) {
    out.push_back({0, size});
    return;
  }
  const double lat0 = std::asin(clamp_unit(center.z / norm));
  const double lon0 = wrap_lon(std::atan2(center.y, center.x));
  const double sin0 = std::sin(lat0);
  const double cos0 = std::cos(lat0);
  const double psi = psi_rad + kQuerySlack;
  const double cos_psi = std::cos(psi);

  const std::size_t b_lo = band_of(lat0 - psi);
  const std::size_t b_hi = band_of(lat0 + psi);
  for (std::size_t b = b_lo; b <= b_hi; ++b) {
    const double band_lo = -kHalfPi + static_cast<double>(b) * band_height_rad_;
    const double band_hi = band_lo + band_height_rad_;
    // Latitudes this band shares with the cap's latitude belt.
    const double lo = std::clamp(std::max(band_lo, lat0 - psi), -kHalfPi, kHalfPi);
    const double hi = std::clamp(std::min(band_hi, lat0 + psi), -kHalfPi, kHalfPi);
    if (lo > hi) continue;

    // Longitude half-width at latitude lambda: cos(dlon) >= f(lambda) with
    // f = (cos psi - sin lat0 * sin lambda) / (cos lat0 * cos lambda).
    // Minimise f over [lo, hi]: the interior critical point solves
    // sin(lambda*) = sin(lat0) / cos(psi); evaluate it plus both endpoints.
    double min_f = std::numeric_limits<double>::max();
    bool all_lon = false;
    const auto eval = [&](double lambda) {
      const double denom = cos0 * std::cos(lambda);
      const double numer = cos_psi - sin0 * std::sin(lambda);
      if (denom <= 1e-12) {
        // Cap centred at a pole, or the band touches one: every longitude is
        // within reach unless the cap provably misses the whole latitude
        // (numer > 0 with a vanishing denominator) — keep it conservative.
        if (numer <= 1e-12) all_lon = true;
        return;
      }
      min_f = std::min(min_f, numer / denom);
    };
    eval(lo);
    eval(hi);
    if (cos_psi > 1e-12) {
      const double s = sin0 / cos_psi;
      if (s >= -1.0 && s <= 1.0) {
        const double crit = std::asin(s);
        if (crit > lo && crit < hi) eval(crit);
      }
    } else {
      // psi >= 90 deg: f is monotone in tan(lambda) only for cos_psi > 0;
      // cover the wide-cap case by accepting all longitudes in this band.
      all_lon = true;
    }

    const std::uint32_t cell_begin = band_cell_begin_[b];
    const std::uint32_t cells_b = band_cell_begin_[b + 1] - cell_begin;
    const auto emit_cells = [&](std::uint32_t c0, std::uint32_t c1) {
      const std::uint32_t first = cell_offsets_[cell_begin + c0];
      const std::uint32_t last = cell_offsets_[cell_begin + c1 + 1];
      if (first < last) out.push_back({first, last});
    };
    if (all_lon || min_f <= -1.0 + 1e-12) {
      emit_cells(0, cells_b - 1);
      continue;
    }
    if (min_f > 1.0) continue;  // band corner outside the cap entirely
    const double dlon = std::acos(clamp_unit(min_f)) + kQuerySlack;
    const double width = kTwoPi / static_cast<double>(cells_b);
    const auto c_lo = static_cast<long>(std::floor((lon0 - dlon) / width));
    const auto c_hi = static_cast<long>(std::floor((lon0 + dlon) / width));
    if (c_hi - c_lo + 1 >= static_cast<long>(cells_b)) {
      emit_cells(0, cells_b - 1);
      continue;
    }
    const auto wrap = [&](long c) {
      long m = c % static_cast<long>(cells_b);
      if (m < 0) m += static_cast<long>(cells_b);
      return static_cast<std::uint32_t>(m);
    };
    const std::uint32_t w_lo = wrap(c_lo);
    const std::uint32_t w_hi = wrap(c_hi);
    if (w_lo <= w_hi) {
      emit_cells(w_lo, w_hi);
    } else {
      // Dateline wrap: two ascending, disjoint runs.
      emit_cells(0, w_hi);
      emit_cells(w_lo, cells_b - 1);
    }
  }
}

void FootprintIndex::query_latitude_band(double sin_lat_lo, double sin_lat_hi,
                                         std::vector<std::uint32_t>& out) const {
  if (site_ids_.empty() || sin_lat_lo > sin_lat_hi) return;
  const double lat_lo = std::asin(clamp_unit(sin_lat_lo)) - kQuerySlack;
  const double lat_hi = std::asin(clamp_unit(sin_lat_hi)) + kQuerySlack;
  const std::size_t b_lo = band_of(lat_lo);
  const std::size_t b_hi = band_of(lat_hi);
  const std::uint32_t first = cell_offsets_[band_cell_begin_[b_lo]];
  const std::uint32_t last = cell_offsets_[band_cell_begin_[b_hi + 1]];
  for (std::uint32_t j = first; j < last; ++j) out.push_back(site_ids_[j]);
}

}  // namespace mpleo::cov
