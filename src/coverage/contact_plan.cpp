#include "coverage/contact_plan.hpp"

#include <algorithm>
#include <sstream>

#include "util/csv.hpp"

namespace mpleo::cov {

std::vector<Contact> build_contact_plan(const CoverageEngine& engine,
                                        std::span<const constellation::Satellite> satellites,
                                        std::span<const GroundSite> sites,
                                        util::ThreadPool* pool) {
  std::vector<Contact> contacts;
  const double step = engine.grid().step_seconds;
  const orbit::EphemerisSet ephemerides = engine.ephemerides(satellites, pool);
  for (std::size_t i = 0; i < satellites.size(); ++i) {
    const constellation::Satellite& sat = satellites[i];
    const std::vector<StepMask> masks =
        engine.visibility_masks(ephemerides.table(i), sites);
    for (std::size_t j = 0; j < sites.size(); ++j) {
      // Keep the IntervalSet alive for the loop (iterating a temporary's
      // member would dangle under C++20 range-for rules).
      const IntervalSet windows = masks[j].to_intervals(step);
      for (const Interval& window : windows.intervals()) {
        contacts.push_back({sat.id, sites[j].name, window.start, window.end});
      }
    }
  }
  std::sort(contacts.begin(), contacts.end(), [](const Contact& a, const Contact& b) {
    if (a.start_offset_s != b.start_offset_s) return a.start_offset_s < b.start_offset_s;
    return a.satellite < b.satellite;
  });
  return contacts;
}

std::string contact_plan_csv(std::span<const Contact> contacts) {
  std::ostringstream os;
  util::CsvWriter writer(os);
  writer.write_row({"satellite", "site", "start_s", "end_s", "duration_s"});
  for (const Contact& c : contacts) {
    writer.write_row({std::to_string(c.satellite), c.site_name,
                      std::to_string(c.start_offset_s), std::to_string(c.end_offset_s),
                      std::to_string(c.duration_s())});
  }
  return os.str();
}

double total_contact_seconds(std::span<const Contact> contacts,
                             const std::string& site_name) {
  double total = 0.0;
  for (const Contact& c : contacts) {
    if (c.site_name == site_name) total += c.duration_s();
  }
  return total;
}

}  // namespace mpleo::cov
