// Slab-chunked storage for large families of fixed-width step masks.
//
// The pipelined scheduler keeps one visibility mask per (satellite, site)
// pair; at mega-constellation scale that is tens of millions of masks, and a
// vector<StepMask> spends more memory on per-mask vector headers and
// allocator metadata than on bits. PackedMasks lays the same words out as a
// small list of fixed-size slabs (so no single allocation needs gigabytes of
// contiguous address space, and slabs release back to the OS independently),
// with each mask fully inside one slab for branch-free word addressing.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coverage/step_mask.hpp"

namespace mpleo::cov {

class PackedMasks {
 public:
  PackedMasks() = default;

  // `mask_count` masks of `step_count` bits each, all zero. Slabs are
  // ~`slab_bytes` (rounded so masks never straddle a slab boundary).
  PackedMasks(std::size_t mask_count, std::size_t step_count,
              std::size_t slab_bytes = std::size_t{8} << 20);

  [[nodiscard]] std::size_t mask_count() const noexcept { return mask_count_; }
  [[nodiscard]] std::size_t step_count() const noexcept { return step_count_; }
  [[nodiscard]] std::size_t words_per_mask() const noexcept { return words_per_mask_; }

  // The 64-step words of mask i, low bit = lowest step — same layout as
  // StepMask::words(). The mutable span is how producers fill bits (e.g. the
  // culler's word-span fill overload).
  [[nodiscard]] std::span<std::uint64_t> words(std::size_t i) noexcept {
    return {slabs_[i / masks_per_slab_].data() +
                (i % masks_per_slab_) * words_per_mask_,
            words_per_mask_};
  }
  [[nodiscard]] std::span<const std::uint64_t> words(std::size_t i) const noexcept {
    return {slabs_[i / masks_per_slab_].data() +
                (i % masks_per_slab_) * words_per_mask_,
            words_per_mask_};
  }

  [[nodiscard]] bool test(std::size_t i, std::size_t step) const noexcept {
    return (words(i)[step >> 6] >> (step & 63)) & 1u;
  }

  // Set bits in mask i.
  [[nodiscard]] std::size_t count(std::size_t i) const noexcept;

  // mask[i] &= ~other (and-not), the outage-subtraction primitive.
  // Precondition: other.step_count() == step_count().
  void subtract(std::size_t i, const StepMask& other) noexcept;

  // out |= mask[i]. Precondition: out.step_count() == step_count().
  void or_into(StepMask& out, std::size_t i) const noexcept;

  // Copies mask i into a standalone StepMask (for callers that need the
  // richer API on one mask).
  [[nodiscard]] StepMask to_step_mask(std::size_t i) const;

 private:
  std::size_t mask_count_ = 0;
  std::size_t step_count_ = 0;
  std::size_t words_per_mask_ = 0;
  std::size_t masks_per_slab_ = 1;
  std::vector<std::vector<std::uint64_t>> slabs_;
};

}  // namespace mpleo::cov
