#include "coverage/visibility.hpp"

#include <cmath>

#include "util/units.hpp"

namespace mpleo::cov {

namespace {

// Shared sweep over per-step ECEF positions; `position(i)` supplies step i.
template <typename PositionFn>
std::vector<Pass> find_passes_impl(PositionFn&& position, std::size_t count,
                                   const orbit::TopocentricFrame& site,
                                   const orbit::TimeGrid& grid,
                                   double elevation_mask_deg) {
  const double mask_rad = util::deg_to_rad(elevation_mask_deg);
  std::vector<Pass> passes;
  bool in_pass = false;
  Pass current;
  for (std::size_t i = 0; i < count; ++i) {
    const double elevation = site.elevation_rad(position(i));
    const bool visible = elevation >= mask_rad;
    const double offset = grid.step_seconds * static_cast<double>(i);
    if (visible && !in_pass) {
      in_pass = true;
      current = Pass{offset, offset + grid.step_seconds, elevation};
    } else if (visible) {
      current.end_offset_s = offset + grid.step_seconds;
      current.max_elevation_rad = std::max(current.max_elevation_rad, elevation);
    } else if (in_pass) {
      in_pass = false;
      passes.push_back(current);
    }
  }
  if (in_pass) passes.push_back(current);
  return passes;
}

}  // namespace

std::vector<Pass> find_passes(const constellation::Satellite& satellite,
                              const orbit::TopocentricFrame& site,
                              const orbit::TimeGrid& grid, double elevation_mask_deg) {
  const orbit::KeplerianPropagator prop(satellite.elements, satellite.epoch);
  const std::vector<util::Vec3> positions = orbit::ecef_positions(prop, grid);
  return find_passes_impl([&](std::size_t i) { return positions[i]; },
                          positions.size(), site, grid, elevation_mask_deg);
}

std::vector<Pass> find_passes(const orbit::EphemerisTable& ephemeris,
                              const orbit::TopocentricFrame& site,
                              const orbit::TimeGrid& grid, double elevation_mask_deg) {
  return find_passes_impl([&](std::size_t i) { return ephemeris.position_ecef(i); },
                          ephemeris.size(), site, grid, elevation_mask_deg);
}

double footprint_half_angle_rad(double altitude_m, double elevation_mask_deg) {
  const double re = util::kEarthMeanRadiusM;
  const double el = util::deg_to_rad(elevation_mask_deg);
  // lambda = acos(Re/(Re+h) * cos(el)) - el   (spherical Earth geometry)
  return std::acos(re / (re + altitude_m) * std::cos(el)) - el;
}

double footprint_area_fraction(double altitude_m, double elevation_mask_deg) {
  const double lambda = footprint_half_angle_rad(altitude_m, elevation_mask_deg);
  return (1.0 - std::cos(lambda)) / 2.0;
}

}  // namespace mpleo::cov
