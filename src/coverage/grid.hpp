// Global coverage grids: an equal-area mesh over Earth for whole-planet
// coverage fractions, coverage-hole finding (§3.2's "reduce coverage holes
// in space-time"), and ASCII coverage maps.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "constellation/shell.hpp"
#include "coverage/step_mask.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/time.hpp"

namespace mpleo::cov {

class CoverageEngine;

// An approximately equal-area grid: latitude bands of `band_height_deg`,
// each band split into cells scaled by cos(latitude).
class EarthGrid {
 public:
  struct Cell {
    orbit::Geodetic center;
    double area_weight = 0.0;  // normalised, sums to 1 over the grid
  };

  explicit EarthGrid(double band_height_deg = 10.0,
                     double max_latitude_deg = 80.0);

  [[nodiscard]] const std::vector<Cell>& cells() const noexcept { return cells_; }
  [[nodiscard]] std::size_t size() const noexcept { return cells_.size(); }

 private:
  std::vector<Cell> cells_;
};

// Time-averaged coverage of each grid cell by the satellite set: result[i]
// is the fraction of the engine's window during which cell i sees at least
// one satellite.
[[nodiscard]] std::vector<double> cell_coverage(
    const CoverageEngine& engine, const EarthGrid& grid,
    std::span<const constellation::Satellite> satellites);

// Area-weighted global coverage fraction in [0, 1].
[[nodiscard]] double global_coverage_fraction(const EarthGrid& grid,
                                              std::span<const double> cell_fractions);

// Indices of the k worst-covered cells (the coverage holes a gap-filling
// reward schedule should target), worst first.
[[nodiscard]] std::vector<std::size_t> worst_cells(std::span<const double> cell_fractions,
                                                   std::size_t k);

// Renders a small ASCII world map of the per-cell coverage — '#': >=90%,
// '+': >=60%, '-': >=30%, '.': >0, ' ': none. One row per latitude band,
// north at the top.
[[nodiscard]] std::string ascii_coverage_map(const EarthGrid& grid,
                                             std::span<const double> cell_fractions);

}  // namespace mpleo::cov
