// Propagation-latency statistics — the paper's §2 LEO-vs-GEO argument
// ("orders of magnitude degradation in network latency") made quantitative.
#pragma once

#include "constellation/shell.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/time.hpp"

namespace mpleo::cov {

struct LatencyStats {
  std::size_t visible_steps = 0;
  double min_one_way_ms = 0.0;
  double mean_one_way_ms = 0.0;
  double max_one_way_ms = 0.0;
  // Bent-pipe RTT through a co-located ground station: 4 hops (up, down,
  // and back), i.e. 4x the one-way satellite delay at the sampled range.
  [[nodiscard]] double mean_bent_pipe_rtt_ms() const noexcept {
    return 4.0 * mean_one_way_ms;
  }
};

// Samples the slant range from `site` at every step of a precomputed
// ephemeris where the satellite is above `elevation_mask_deg`, converting to
// light-time. Visible steps are found through the shared zenith-cone cull,
// so only a few percent of the grid reaches the range computation.
[[nodiscard]] LatencyStats propagation_latency_stats(
    const orbit::EphemerisTable& ephemeris, const orbit::TopocentricFrame& site,
    const orbit::TimeGrid& grid, double elevation_mask_deg);

// Convenience overload: propagates `satellite` over the grid through the
// shared ephemeris kernel (with the selected backend) and delegates to the
// table form.
[[nodiscard]] LatencyStats propagation_latency_stats(
    const constellation::Satellite& satellite, const orbit::TopocentricFrame& site,
    const orbit::TimeGrid& grid, double elevation_mask_deg,
    orbit::PropagatorBackend backend = orbit::PropagatorBackend::kJ2Analytic);

// One-way light time (ms) for a given slant range in metres.
[[nodiscard]] double one_way_delay_ms(double range_m) noexcept;

// Geostationary reference: one-way delay to a GEO satellite at zenith
// (35786 km) — the number the paper's "second-level latency" claim rests on
// once processing and bent-pipe double-hops are included.
[[nodiscard]] double geo_zenith_one_way_delay_ms() noexcept;

}  // namespace mpleo::cov
