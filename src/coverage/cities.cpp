#include "coverage/cities.hpp"

namespace mpleo::cov {
namespace {

std::vector<City> make_paper_cities() {
  using orbit::Geodetic;
  // UN World Urbanization Prospects metro populations (millions), one city
  // per country, descending; Melbourne appended for Australia.
  return {
      {"Tokyo", "Japan", Geodetic::from_degrees(35.6762, 139.6503), 37.4e6},
      {"Delhi", "India", Geodetic::from_degrees(28.7041, 77.1025), 31.0e6},
      {"Shanghai", "China", Geodetic::from_degrees(31.2304, 121.4737), 27.8e6},
      {"Sao Paulo", "Brazil", Geodetic::from_degrees(-23.5505, -46.6333), 22.4e6},
      {"Mexico City", "Mexico", Geodetic::from_degrees(19.4326, -99.1332), 21.9e6},
      {"Cairo", "Egypt", Geodetic::from_degrees(30.0444, 31.2357), 21.3e6},
      {"Dhaka", "Bangladesh", Geodetic::from_degrees(23.8103, 90.4125), 21.0e6},
      {"New York", "United States", Geodetic::from_degrees(40.7128, -74.0060), 18.8e6},
      {"Karachi", "Pakistan", Geodetic::from_degrees(24.8607, 67.0011), 16.4e6},
      {"Istanbul", "Turkey", Geodetic::from_degrees(41.0082, 28.9784), 15.4e6},
      {"Buenos Aires", "Argentina", Geodetic::from_degrees(-34.6037, -58.3816), 15.2e6},
      {"Manila", "Philippines", Geodetic::from_degrees(14.5995, 120.9842), 14.2e6},
      {"Lagos", "Nigeria", Geodetic::from_degrees(6.5244, 3.3792), 14.9e6},
      {"Kinshasa", "DR Congo", Geodetic::from_degrees(-4.4419, 15.2663), 14.3e6},
      {"Moscow", "Russia", Geodetic::from_degrees(55.7558, 37.6173), 12.5e6},
      {"Bangkok", "Thailand", Geodetic::from_degrees(13.7563, 100.5018), 10.7e6},
      {"Seoul", "South Korea", Geodetic::from_degrees(37.5665, 126.9780), 9.9e6},
      {"London", "United Kingdom", Geodetic::from_degrees(51.5074, -0.1278), 9.4e6},
      {"Lima", "Peru", Geodetic::from_degrees(-12.0464, -77.0428), 10.9e6},
      {"Tehran", "Iran", Geodetic::from_degrees(35.6892, 51.3890), 9.3e6},
      {"Melbourne", "Australia", Geodetic::from_degrees(-37.8136, 144.9631), 5.1e6},
  };
}

}  // namespace

const std::vector<City>& paper_cities() {
  static const std::vector<City> cities = make_paper_cities();
  return cities;
}

const City& taipei() {
  static const City city{"Taipei", "Taiwan", orbit::Geodetic::from_degrees(25.0330, 121.5654),
                         7.0e6};
  return city;
}

std::vector<double> population_weights(std::span<const City> cities) {
  double total = 0.0;
  for (const City& city : cities) total += city.population;
  std::vector<double> weights;
  weights.reserve(cities.size());
  for (const City& city : cities) {
    weights.push_back(total > 0.0 ? city.population / total : 0.0);
  }
  return weights;
}

}  // namespace mpleo::cov
