#include "coverage/revisit.hpp"

#include <algorithm>

#include "util/stats.hpp"

namespace mpleo::cov {

std::vector<double> gap_lengths(const StepMask& mask, double step_seconds) {
  std::vector<double> gaps;
  std::size_t run = 0;
  for (std::size_t i = 0; i < mask.step_count(); ++i) {
    if (!mask.test(i)) {
      ++run;
    } else if (run > 0) {
      gaps.push_back(static_cast<double>(run) * step_seconds);
      run = 0;
    }
  }
  if (run > 0) gaps.push_back(static_cast<double>(run) * step_seconds);
  return gaps;
}

RevisitStats revisit_stats(const StepMask& mask, double step_seconds) {
  RevisitStats stats;
  stats.covered_fraction = mask.fraction();

  const IntervalSet passes = mask.to_intervals(step_seconds);
  stats.pass_count = passes.size();
  if (stats.pass_count > 0) {
    stats.mean_pass_seconds =
        passes.total_length() / static_cast<double>(stats.pass_count);
  }

  const std::vector<double> gaps = gap_lengths(mask, step_seconds);
  stats.gap_count = gaps.size();
  if (!gaps.empty()) {
    stats.mean_gap_seconds = util::mean_of(gaps);
    stats.max_gap_seconds = *std::max_element(gaps.begin(), gaps.end());
    stats.p50_gap_seconds = util::percentile(gaps, 50.0);
    stats.p95_gap_seconds = util::percentile(gaps, 95.0);
  }
  return stats;
}

}  // namespace mpleo::cov
