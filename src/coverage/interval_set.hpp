// A set of disjoint, sorted, half-open time intervals [start, end), seconds
// on some experiment-local axis. Used for pass windows, coverage timelines,
// and gap statistics.
#pragma once

#include <vector>

namespace mpleo::cov {

struct Interval {
  double start = 0.0;
  double end = 0.0;  // exclusive

  [[nodiscard]] double length() const noexcept { return end - start; }
  friend bool operator==(const Interval&, const Interval&) = default;
};

class IntervalSet {
 public:
  IntervalSet() = default;
  // Builds from possibly-overlapping, unsorted intervals (normalises).
  explicit IntervalSet(std::vector<Interval> intervals);

  // Inserts [start, end), merging with any overlapping/adjacent intervals.
  // Empty or inverted inputs are ignored.
  void insert(double start, double end);

  [[nodiscard]] bool contains(double t) const noexcept;
  [[nodiscard]] bool empty() const noexcept { return intervals_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return intervals_.size(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const noexcept { return intervals_; }

  // Sum of interval lengths.
  [[nodiscard]] double total_length() const noexcept;

  [[nodiscard]] IntervalSet union_with(const IntervalSet& other) const;
  [[nodiscard]] IntervalSet intersect_with(const IntervalSet& other) const;
  // Set difference: parts of *this not in `other`.
  [[nodiscard]] IntervalSet difference_with(const IntervalSet& other) const;
  // Complement within the window [window_start, window_end): the gaps.
  [[nodiscard]] IntervalSet complement_within(double window_start, double window_end) const;

  // Longest gap length within the window (0 when fully covered).
  [[nodiscard]] double max_gap_within(double window_start, double window_end) const;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  void normalise();
  std::vector<Interval> intervals_;  // invariant: sorted, disjoint, non-empty each
};

}  // namespace mpleo::cov
