// Doppler profiles of satellite passes. The transparent bent-pipe pushes all
// demodulation to ground stations and terminals (§3.1), so *they* must track
// the Doppler trajectory; this module computes it for SDR ground-segment
// design (open-source terminals are a §4 open question).
#pragma once

#include <vector>

#include "constellation/shell.hpp"
#include "orbit/ephemeris.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/time.hpp"

namespace mpleo::cov {

struct DopplerSample {
  double offset_seconds = 0.0;
  double range_m = 0.0;
  double range_rate_m_per_s = 0.0;  // negative = approaching
  double doppler_shift_hz = 0.0;    // at the requested carrier
  double elevation_rad = 0.0;
};

// Range and range-rate of a satellite relative to a ground site, both in the
// Earth-fixed frame.
struct RangeRate {
  double range_m = 0.0;
  double range_rate_m_per_s = 0.0;  // negative = approaching
};

// The shared range-rate kernel: rotates the inertial velocity into ECEF,
// subtracts the frame-rotation term omega x r, and projects onto the line of
// sight. `r_ecef` must be the ECEF position at the same `gmst` (the caller
// usually already has it for the elevation check). Every consumer of
// range-rate — the pass profiles below and the RF receipt audit's predicted
// Doppler tracks — goes through this one function so they agree bit for bit.
[[nodiscard]] RangeRate range_rate_ecef(const util::Vec3& v_eci, double gmst,
                                        const util::Vec3& r_ecef,
                                        const util::Vec3& site_origin_ecef) noexcept;

// Doppler shift of `carrier_hz` for a line-of-sight `range_rate_m_per_s`
// (negative range-rate = approaching = positive shift).
[[nodiscard]] double doppler_shift_hz(double range_rate_m_per_s, double carrier_hz) noexcept;

// Samples range, range-rate and Doppler at every grid step where the
// satellite is above `elevation_mask_deg`. Range-rate is computed from the
// true relative velocity in the Earth-fixed frame (satellite inertial
// velocity corrected for frame rotation), not finite differences. Candidate
// steps come from the shared ephemeris kernel's culled visibility mask, so
// the full state is evaluated only during passes, never across the whole
// grid.
[[nodiscard]] std::vector<DopplerSample> doppler_profile(
    const constellation::Satellite& satellite, const orbit::TopocentricFrame& site,
    const orbit::TimeGrid& grid, double elevation_mask_deg, double carrier_hz,
    orbit::PropagatorBackend backend = orbit::PropagatorBackend::kJ2Analytic);

// Same profile reusing a precomputed ephemeris table of `satellite` over
// `grid` (the batched pipeline's entry point — one table can feed latency,
// Doppler and visibility without re-propagating). The backend must match the
// one that filled `ephemeris` for the in-pass states to agree with the table.
[[nodiscard]] std::vector<DopplerSample> doppler_profile(
    const constellation::Satellite& satellite, const orbit::EphemerisTable& ephemeris,
    const orbit::TopocentricFrame& site, const orbit::TimeGrid& grid,
    double elevation_mask_deg, double carrier_hz,
    orbit::PropagatorBackend backend = orbit::PropagatorBackend::kJ2Analytic);

// Upper bound on |Doppler| for a circular orbit at `altitude_m`:
// f * v_orbital / c — useful for sizing acquisition search windows.
[[nodiscard]] double max_doppler_bound_hz(double altitude_m, double carrier_hz);

}  // namespace mpleo::cov
