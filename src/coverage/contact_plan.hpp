// Contact plans: the schedule of (satellite, site, start, end) windows that
// DTN routers and ground-station schedulers consume. This is the standard
// interchange artifact between a constellation simulator and an operations
// stack; exported as CSV for external tooling.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "constellation/shell.hpp"
#include "coverage/engine.hpp"

namespace mpleo::util {
class ThreadPool;
}

namespace mpleo::cov {

struct Contact {
  constellation::SatelliteId satellite = 0;
  std::string site_name;
  double start_offset_s = 0.0;
  double end_offset_s = 0.0;

  [[nodiscard]] double duration_s() const noexcept { return end_offset_s - start_offset_s; }
};

// Builds the full contact plan of `satellites` over `sites` on the engine's
// grid, sorted by start time (ties by satellite id). The shared ephemeris
// tables are filled in parallel across satellites when a pool is given.
[[nodiscard]] std::vector<Contact> build_contact_plan(
    const CoverageEngine& engine,
    std::span<const constellation::Satellite> satellites,
    std::span<const GroundSite> sites, util::ThreadPool* pool = nullptr);

// CSV rendering: header "satellite,site,start_s,end_s,duration_s".
[[nodiscard]] std::string contact_plan_csv(std::span<const Contact> contacts);

// Total contact seconds per site name (aggregation used by capacity checks).
[[nodiscard]] double total_contact_seconds(std::span<const Contact> contacts,
                                           const std::string& site_name);

}  // namespace mpleo::cov
