#include "coverage/latency.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "coverage/step_mask.hpp"
#include "coverage/visibility_cull.hpp"
#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace mpleo::cov {

double one_way_delay_ms(double range_m) noexcept {
  return range_m / util::kSpeedOfLightMPerSec * 1000.0;
}

double geo_zenith_one_way_delay_ms() noexcept { return one_way_delay_ms(35786e3); }

LatencyStats propagation_latency_stats(const orbit::EphemerisTable& ephemeris,
                                       const orbit::TopocentricFrame& site,
                                       const orbit::TimeGrid& grid,
                                       double elevation_mask_deg) {
  const VisibilityCuller culler(grid, elevation_mask_deg);
  StepMask visible(ephemeris.size());
  culler.fill(ephemeris, site, visible);

  LatencyStats stats;
  double sum_ms = 0.0;
  const std::span<const std::uint64_t> words = visible.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t bits = words[w];
    while (bits != 0) {
      const std::size_t step = w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const double delay = one_way_delay_ms(site.range_m(ephemeris.position_ecef(step)));
      if (stats.visible_steps == 0) {
        stats.min_one_way_ms = delay;
        stats.max_one_way_ms = delay;
      } else {
        stats.min_one_way_ms = std::min(stats.min_one_way_ms, delay);
        stats.max_one_way_ms = std::max(stats.max_one_way_ms, delay);
      }
      sum_ms += delay;
      ++stats.visible_steps;
    }
  }
  if (stats.visible_steps > 0) {
    stats.mean_one_way_ms = sum_ms / static_cast<double>(stats.visible_steps);
  }
  return stats;
}

LatencyStats propagation_latency_stats(const constellation::Satellite& satellite,
                                       const orbit::TopocentricFrame& site,
                                       const orbit::TimeGrid& grid,
                                       double elevation_mask_deg,
                                       orbit::PropagatorBackend backend) {
  orbit::EphemerisSpec spec{satellite.elements, satellite.epoch,
                            orbit::Perturbation::kJ2Secular};
  spec.backend = backend;
  return propagation_latency_stats(
      orbit::EphemerisTable::compute(orbit::make_propagator(spec), grid), site, grid,
      elevation_mask_deg);
}

}  // namespace mpleo::cov
