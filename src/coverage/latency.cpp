#include "coverage/latency.hpp"

#include <algorithm>
#include <cmath>

#include "orbit/ephemeris.hpp"
#include "orbit/propagator.hpp"
#include "util/units.hpp"

namespace mpleo::cov {

double one_way_delay_ms(double range_m) noexcept {
  return range_m / util::kSpeedOfLightMPerSec * 1000.0;
}

double geo_zenith_one_way_delay_ms() noexcept { return one_way_delay_ms(35786e3); }

LatencyStats propagation_latency_stats(const constellation::Satellite& satellite,
                                       const orbit::TopocentricFrame& site,
                                       const orbit::TimeGrid& grid,
                                       double elevation_mask_deg) {
  const orbit::KeplerianPropagator prop(satellite.elements, satellite.epoch);
  const std::vector<util::Vec3> positions = orbit::ecef_positions(prop, grid);
  const double sin_mask = std::sin(util::deg_to_rad(elevation_mask_deg));

  LatencyStats stats;
  double sum_ms = 0.0;
  for (const util::Vec3& pos : positions) {
    if (!site.visible_above(pos, sin_mask)) continue;
    const double delay = one_way_delay_ms(site.range_m(pos));
    if (stats.visible_steps == 0) {
      stats.min_one_way_ms = delay;
      stats.max_one_way_ms = delay;
    } else {
      stats.min_one_way_ms = std::min(stats.min_one_way_ms, delay);
      stats.max_one_way_ms = std::max(stats.max_one_way_ms, delay);
    }
    sum_ms += delay;
    ++stats.visible_steps;
  }
  if (stats.visible_steps > 0) {
    stats.mean_one_way_ms = sum_ms / static_cast<double>(stats.visible_steps);
  }
  return stats;
}

}  // namespace mpleo::cov
