// Human-readable formatting of coverage results.
#pragma once

#include <string>

#include "coverage/engine.hpp"

namespace mpleo::cov {

// One-line summary, e.g. "covered 94.32% | longest gap 1h 12m | 214 passes".
[[nodiscard]] std::string summarize(const CoverageStats& stats);

// Multi-line report for a named site.
[[nodiscard]] std::string site_report(const std::string& site_name,
                                      const CoverageStats& stats);

}  // namespace mpleo::cov
