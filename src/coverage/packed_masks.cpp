#include "coverage/packed_masks.hpp"

#include <algorithm>
#include <bit>

namespace mpleo::cov {

PackedMasks::PackedMasks(std::size_t mask_count, std::size_t step_count,
                         std::size_t slab_bytes)
    : mask_count_(mask_count),
      step_count_(step_count),
      words_per_mask_((step_count + 63) / 64) {
  if (mask_count_ == 0 || words_per_mask_ == 0) {
    words_per_mask_ = std::max<std::size_t>(words_per_mask_, 1);
    return;
  }
  const std::size_t slab_words = std::max<std::size_t>(slab_bytes / 8, 1);
  masks_per_slab_ = std::max<std::size_t>(slab_words / words_per_mask_, 1);
  masks_per_slab_ = std::min(masks_per_slab_, mask_count_);
  const std::size_t slab_count =
      (mask_count_ + masks_per_slab_ - 1) / masks_per_slab_;
  slabs_.resize(slab_count);
  for (std::size_t s = 0; s < slab_count; ++s) {
    const std::size_t masks_here =
        std::min(masks_per_slab_, mask_count_ - s * masks_per_slab_);
    slabs_[s].assign(masks_here * words_per_mask_, 0);
  }
}

std::size_t PackedMasks::count(std::size_t i) const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t w : words(i)) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

void PackedMasks::subtract(std::size_t i, const StepMask& other) noexcept {
  const std::span<std::uint64_t> mine = words(i);
  const std::span<const std::uint64_t> theirs = other.words();
  const std::size_t n = std::min(mine.size(), theirs.size());
  for (std::size_t w = 0; w < n; ++w) mine[w] &= ~theirs[w];
}

void PackedMasks::or_into(StepMask& out, std::size_t i) const noexcept {
  const std::span<const std::uint64_t> mine = words(i);
  for (std::size_t w = 0; w < mine.size(); ++w) {
    std::uint64_t bits = mine[w];
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
      out.set(w * 64 + b);
      bits &= bits - 1;
    }
  }
}

StepMask PackedMasks::to_step_mask(std::size_t i) const {
  StepMask mask(step_count_);
  or_into(mask, i);
  return mask;
}

}  // namespace mpleo::cov
