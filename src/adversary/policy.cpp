#include "adversary/policy.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/validation.hpp"
#include "sim/scenario.hpp"

namespace mpleo::adversary {

namespace {

// Distinguishes party-behavior streams from every other consumer of the
// campaign seed (fault timelines, PoC challenges, ...).
constexpr std::uint64_t kPartyStreamBase = 0x5A00;

constexpr bool behavior_withholds(Behavior behavior) noexcept {
  return behavior == Behavior::kWithholdCapacity;
}

}  // namespace

const char* to_string(Behavior behavior) noexcept {
  switch (behavior) {
    case Behavior::kHonest: return "honest";
    case Behavior::kForgeReceipts: return "forge_receipts";
    case Behavior::kInflateReceipts: return "inflate_receipts";
    case Behavior::kWithholdCapacity: return "withhold_capacity";
    case Behavior::kMisreportSla: return "misreport_sla";
    case Behavior::kCollude: return "collude";
    case Behavior::kJamming: return "jamming";
    case Behavior::kSpectrumSquatting: return "spectrum_squatting";
  }
  return "unknown";
}

double PartyPolicy::withheld_fraction() const noexcept {
  if (behavior != Behavior::kWithholdCapacity) return 0.0;
  return std::clamp(0.5 * intensity, 0.0, 1.0);
}

BehaviorBook::BehaviorBook(std::vector<PartyPolicy> policies, std::uint64_t seed)
    : policies_(std::move(policies)), seed_(seed) {
  for (const PartyPolicy& policy : policies_) {
    core::require_non_negative(policy.intensity, "adversary intensity");
  }
}

BehaviorBook BehaviorBook::sample(std::size_t party_count, double byzantine_fraction,
                                  std::span<const Behavior> mix, double intensity,
                                  std::size_t receipts_per_epoch, std::uint64_t seed) {
  core::require_fraction(byzantine_fraction, "byzantine_fraction");
  core::require_non_negative(intensity, "adversary intensity");

  BehaviorBook book;
  book.seed_ = seed;
  const auto byzantine_count = static_cast<std::size_t>(
      std::llround(byzantine_fraction * static_cast<double>(party_count)));
  if (byzantine_count == 0 || mix.empty()) return book;

  // One permutation per (seed, party_count); the Byzantine set is its
  // prefix, so sets are nested across fractions and each party keeps the
  // behavior of its permutation slot (the CRN invariant).
  std::vector<std::size_t> order(party_count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  util::Xoshiro256PlusPlus rng(seed);
  for (std::size_t i = party_count; i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform_index(i)]);
  }

  book.policies_.assign(party_count, PartyPolicy{});
  std::uint32_t next_coalition = 0;
  for (std::size_t slot = 0; slot < byzantine_count; ++slot) {
    PartyPolicy& policy = book.policies_[order[slot]];
    policy.behavior = mix[slot % mix.size()];
    policy.intensity = intensity;
    policy.receipts_per_epoch = receipts_per_epoch;
    if (policy.behavior == Behavior::kCollude) {
      // Colluders pair up in permutation order: slots {0,1} of the collude
      // sub-sequence form coalition 0, {2,3} coalition 1, ... A coalition of
      // one (odd tail, or a single colluder) degrades to solo forgery.
      policy.coalition = next_coalition++ / 2;
    }
  }
  return book;
}

bool BehaviorBook::empty() const noexcept {
  return std::all_of(policies_.begin(), policies_.end(),
                     [](const PartyPolicy& p) { return p.honest(); });
}

const PartyPolicy& BehaviorBook::policy(core::PartyId party) const noexcept {
  static const PartyPolicy kHonestPolicy{};
  if (party >= policies_.size()) return kHonestPolicy;
  return policies_[party];
}

std::size_t BehaviorBook::byzantine_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(policies_.begin(), policies_.end(),
                    [](const PartyPolicy& p) { return !p.honest(); }));
}

util::Xoshiro256PlusPlus BehaviorBook::stream(core::PartyId party,
                                              std::size_t epoch) const noexcept {
  return util::Xoshiro256PlusPlus(seed_).split(kPartyStreamBase + party).split(epoch);
}

std::vector<double> BehaviorBook::withheld_fractions(std::size_t party_count) const {
  if (empty()) return {};
  std::vector<double> fractions(party_count, 0.0);
  for (std::size_t party = 0; party < policies_.size() && party < party_count; ++party) {
    fractions[party] = policies_[party].withheld_fraction();
  }
  return fractions;
}

std::vector<std::uint8_t> BehaviorBook::byzantine_mask() const {
  std::vector<std::uint8_t> mask(policies_.size(), 0);
  for (std::size_t party = 0; party < policies_.size(); ++party) {
    mask[party] = policies_[party].honest() ? 0 : 1;
  }
  return mask;
}

std::vector<bool> BehaviorBook::jamming_mask() const {
  std::vector<bool> mask(policies_.size(), false);
  for (std::size_t party = 0; party < policies_.size(); ++party) {
    mask[party] = policies_[party].behavior == Behavior::kJamming;
  }
  return mask;
}

std::vector<bool> BehaviorBook::squatting_mask() const {
  std::vector<bool> mask(policies_.size(), false);
  for (std::size_t party = 0; party < policies_.size(); ++party) {
    mask[party] = policies_[party].behavior == Behavior::kSpectrumSquatting;
  }
  return mask;
}

std::vector<core::PartyId> BehaviorBook::coalition_of(core::PartyId party) const {
  std::vector<core::PartyId> members{party};
  if (party >= policies_.size()) return members;
  const std::uint32_t coalition = policies_[party].coalition;
  if (coalition == PartyPolicy::kNoCoalition) return members;
  members.clear();
  for (std::size_t other = 0; other < policies_.size(); ++other) {
    if (policies_[other].coalition == coalition) {
      members.push_back(static_cast<core::PartyId>(other));
    }
  }
  return members;
}

std::vector<Behavior> mix_for_mode(sim::AdversaryMode mode) {
  switch (mode) {
    case sim::AdversaryMode::kOff: return {};
    case sim::AdversaryMode::kForge: return {Behavior::kForgeReceipts};
    case sim::AdversaryMode::kInflate: return {Behavior::kInflateReceipts};
    case sim::AdversaryMode::kWithhold: return {Behavior::kWithholdCapacity};
    case sim::AdversaryMode::kMisreport: return {Behavior::kMisreportSla};
    case sim::AdversaryMode::kCollude: return {Behavior::kCollude};
    case sim::AdversaryMode::kMixed:
      // Deliberately excludes the RF behaviors: kMixed predates them and its
      // sweep numbers are pinned by the perf baseline.
      return {Behavior::kForgeReceipts, Behavior::kWithholdCapacity,
              Behavior::kInflateReceipts, Behavior::kMisreportSla, Behavior::kCollude};
    case sim::AdversaryMode::kJamming: return {Behavior::kJamming};
    case sim::AdversaryMode::kSpectrumSquat: return {Behavior::kSpectrumSquatting};
  }
  return {};
}

}  // namespace mpleo::adversary
