// Quarantine and slashing: turning audit evidence into consortium sanctions.
//
// The QuarantineManager watches ReceiptAuditor fraud evidence epoch by epoch
// and walks each party through a trust ladder:
//
//   kTrusted --fraud >= suspect_threshold--> kSuspected
//   kSuspected --cumulative fraud >= quarantine_threshold--> kQuarantined
//     (stake slashed via Consortium::slash_amount, party barred from the
//      spare commons and the capacity market, reputation penalised)
//   kQuarantined --fraud continues for expel_after_quarantined_epochs-->
//     kExpelled (consortium withdrawal — satellites leave the active set;
//      terminal state)
//   kQuarantined --clean for reinstate_after_clean_epochs--> kSuspected
//     (consortium reinstated; evidence counter reset, trust stays probationary)
//
// Sanctions degrade service gracefully, never punitively: a quarantined
// party's satellites keep serving its own terminals (scheduler
// spare_exclude_party semantics), it simply stops drawing on — or feeding —
// the shared spare pool until reinstated.
//
// Detection latency (epochs from a party's first fraud evidence to its
// quarantine) lands in the "quarantine.detection_epochs" histogram — the
// paper-level question is how fast a decentralized audit trail isolates a
// Byzantine member.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/consortium.hpp"
#include "core/ledger.hpp"
#include "core/party.hpp"
#include "core/reputation.hpp"

#include "adversary/audit.hpp"

namespace mpleo::obs {
class MetricsRegistry;
}

namespace mpleo::adversary {

enum class TrustState : std::uint8_t {
  kTrusted,
  kSuspected,
  kQuarantined,
  kExpelled,  // terminal
};

[[nodiscard]] const char* to_string(TrustState state) noexcept;

struct QuarantineConfig {
  // Fraud events in one epoch that turn kTrusted into kSuspected.
  std::uint64_t suspect_threshold = 1;
  // Cumulative fraud events that trigger quarantine.
  std::uint64_t quarantine_threshold = 4;
  // Epochs with fresh fraud evidence while quarantined before expulsion.
  std::size_t expel_after_quarantined_epochs = 3;
  // Clean quarantined epochs before reinstatement (back to kSuspected).
  std::size_t reinstate_after_clean_epochs = 4;
  // Fraction of the party's token balance slashed to the treasury at the
  // moment of quarantine; validated to [0, 1] by core::require_fraction.
  double stake_slash_fraction = 0.5;
};

// Per-party sanction bookkeeping surfaced to reports and tests.
struct PartyTrustRecord {
  TrustState state = TrustState::kTrusted;
  std::uint64_t fraud_seen = 0;          // cumulative audited fraud events
  std::uint64_t fraud_last_epoch = 0;    // fresh evidence in the last epoch
  std::size_t first_fraud_epoch = kNever;
  std::size_t quarantined_epoch = kNever;
  std::size_t quarantined_fraud_epochs = 0;  // fraud epochs while quarantined
  std::size_t clean_epochs = 0;              // consecutive clean epochs
  double slashed_total = 0.0;                // tokens taken to the treasury

  static constexpr std::size_t kNever = static_cast<std::size_t>(-1);

  friend bool operator==(const PartyTrustRecord&, const PartyTrustRecord&) = default;
};

class QuarantineManager {
 public:
  // `metrics` and `reputation` may be null. Throws core::ValidationError on
  // an out-of-range stake_slash_fraction.
  QuarantineManager(QuarantineConfig config, std::size_t party_count,
                    obs::MetricsRegistry* metrics = nullptr);

  // Processes one epoch of audit evidence: diffs the auditor's cumulative
  // per-party stats against the last observation, escalates trust states,
  // executes slashing on `ledger` (party account -> treasury) and membership
  // sanctions on `consortium`, and penalises `reputation` (if non-null) per
  // fresh fraud event. `accounts` maps party id -> ledger account (the
  // campaign's mapping). Call once per epoch, after auditing and before
  // emission, with `epoch` strictly increasing.
  void observe_epoch(std::size_t epoch, const ReceiptAuditor& auditor,
                     core::Ledger& ledger, std::span<const core::AccountId> accounts,
                     core::Consortium& consortium,
                     core::ReputationTracker* reputation = nullptr);

  // Re-points instrumentation (e.g. at the RunContext registry of the epoch
  // being run). Null detaches it.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  [[nodiscard]] TrustState state(core::PartyId party) const;
  [[nodiscard]] const PartyTrustRecord& record(core::PartyId party) const;
  [[nodiscard]] const std::vector<PartyTrustRecord>& records() const noexcept {
    return records_;
  }

  // Byte-per-party mask (1 = quarantined or expelled) for the scheduler's
  // spare_exclude_party / the market's excluded_parties. All-zero while
  // every party is trusted.
  [[nodiscard]] std::vector<std::uint8_t> spare_exclusion() const;

  [[nodiscard]] std::size_t quarantined_count() const noexcept;
  [[nodiscard]] std::size_t expelled_count() const noexcept;
  [[nodiscard]] double total_slashed() const noexcept;
  // Mean epochs from first fraud evidence to quarantine over every party
  // ever quarantined; 0 when none was.
  [[nodiscard]] double mean_detection_epochs() const noexcept;

  [[nodiscard]] const QuarantineConfig& config() const noexcept { return config_; }

 private:
  QuarantineConfig config_;
  std::vector<PartyTrustRecord> records_;
  std::vector<std::uint64_t> last_fraud_totals_;  // auditor cumulative at last epoch
  // (first fraud epoch, quarantine epoch) pairs for every quarantine event.
  std::vector<std::pair<std::size_t, std::size_t>> detections_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace mpleo::adversary
