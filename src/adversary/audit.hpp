// Receipt audit engine: cross-checks every proof-of-coverage claim before it
// touches the ledger, and attributes rejections to the submitting party.
//
// Two lines of defence, layered:
//   * The authoritative check is core::ProofOfCoverage::verify_and_reward —
//     keyed digest, exact orbital geometry, and the ledger's content-hash
//     duplicate guard. The auditor routes every credit through that exact
//     path, so honest traffic is bit-identical to the unaudited campaign.
//   * An optional mask prescreen re-derives the claimed contact from the
//     shared ephemeris kernel (ProofOfCoverage::overhead_steps over the
//     audit grid) and flags receipts whose step isn't in the visibility
//     mask. The prescreen is analytics-only — grid-step masks can disagree
//     with exact geometry right at the mask boundary, so it never overrides
//     the verdict; it feeds the fraud telemetry and lets operators see
//     forgery pressure before verdicts accumulate.
//
// The auditor also checks settlement-time SLA claims (served seconds a party
// reports about itself) against the scheduler's ground truth, flagging
// overclaims beyond a configured tolerance.
//
// Per-party cumulative statistics are the fraud evidence the
// QuarantineManager escalates on.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "core/ledger.hpp"
#include "core/party.hpp"
#include "core/proof_of_coverage.hpp"
#include "coverage/step_mask.hpp"
#include "orbit/time.hpp"
#include "rf/doppler.hpp"

namespace mpleo::obs {
class MetricsRegistry;
}

namespace mpleo::adversary {

struct AuditConfig {
  // Re-derive claimed contacts from ephemeris-kernel visibility masks
  // (analytics-only; see header comment).
  bool prescreen_with_masks = true;
  // Fractional SLA overclaim tolerated before a claim counts as a
  // misreport: claimed > measured * (1 + tolerance) flags. Must be a
  // finite value >= 0.
  double sla_tolerance = 0.05;
  // Doppler-track fit stage (off by default — the audit path is then
  // bit-identical to the pre-RF auditor). When enabled, a geometrically
  // valid claim must also carry a measured Doppler track whose shape matches
  // the shared-ephemeris prediction within rms_tolerance_hz.
  rf::DopplerAuditConfig doppler;
};

// Who put the receipt on the table. A verifier-issued challenge answered at
// an unlucky time fails geometry without any dishonesty — the verifier
// mistimed the ping. An unsolicited submission claiming a contact geometry
// says never happened IS the forgery the audit exists to catch. Digest and
// duplicate rejections are fraud under either provenance (wrong key /
// double-spend attempt).
enum class ReceiptProvenance : std::uint8_t {
  kChallenge,   // verifier-initiated spot check
  kSubmission,  // party-initiated coverage claim
};

struct PartyAuditStats {
  std::uint64_t submitted = 0;
  std::uint64_t credited = 0;
  std::uint64_t rejected_digest = 0;
  std::uint64_t rejected_geometry = 0;  // all kNotOverhead, either provenance
  std::uint64_t unsolicited_geometry = 0;  // kNotOverhead on a kSubmission
  std::uint64_t rejected_duplicate = 0;
  std::uint64_t rejected_unknown = 0;   // unknown satellite or verifier
  std::uint64_t sla_misreports = 0;
  // RF evidence: receipts whose Doppler track reached a conclusive fit, the
  // subset the fit rejected, and spectrum-plan violations the interference
  // accounting attributed to this party.
  std::uint64_t doppler_checked = 0;
  std::uint64_t rf_doppler_rejections = 0;
  std::uint64_t rf_interference_violations = 0;
  // Prescreen telemetry (never part of the verdict).
  std::uint64_t prescreen_flagged = 0;
  std::uint64_t prescreen_mismatches = 0;  // mask and exact geometry disagreed

  // Confirmed fraud evidence: bad digests, double submissions, unsolicited
  // claims with impossible geometry, SLA overclaims, RF-implausible Doppler
  // tracks, and attributed spectrum-plan violations. Challenge-provenance
  // geometry misses and unknown-id rejections are excluded — a mistimed
  // ping or a receipt for a withdrawn satellite is stale or unlucky, not
  // dishonest.
  [[nodiscard]] std::uint64_t fraud_total() const noexcept {
    return rejected_digest + unsolicited_geometry + rejected_duplicate +
           sla_misreports + rf_doppler_rejections + rf_interference_violations;
  }

  friend bool operator==(const PartyAuditStats&, const PartyAuditStats&) = default;
};

class ReceiptAuditor {
 public:
  // `metrics` may be null (all instrumentation becomes no-ops). Throws
  // core::ValidationError on a negative or non-finite sla_tolerance, and
  // std::invalid_argument (every issue joined, TleFieldIssue-style) on an
  // invalid doppler config.
  ReceiptAuditor(AuditConfig config, std::size_t party_count,
                 obs::MetricsRegistry* metrics = nullptr);

  // Sets the grid the mask prescreen re-derives contacts on (the current
  // epoch's scheduling grid). Clears the per-pair mask cache; call once per
  // epoch. Without a grid the prescreen is skipped.
  void set_audit_grid(orbit::TimeGrid grid);

  // Re-points instrumentation (e.g. at the RunContext registry of the epoch
  // being run). Null detaches it.
  void set_metrics(obs::MetricsRegistry* metrics) noexcept { metrics_ = metrics; }

  // Audits one receipt and, when valid, credits it through
  // poc.verify_and_reward — same verdict, same ledger entry, same duplicate
  // guard as the unaudited path. The verdict is attributed to
  // `owner_party`'s cumulative stats under the given provenance (see
  // ReceiptProvenance for what counts as fraud).
  //
  // When the Doppler stage is enabled, `doppler` is the measured track
  // accompanying the claim (evidence alongside the receipt — the receipt
  // struct and its content hash never change). A geometrically valid claim
  // whose track misses the ephemeris prediction — or that brings no track
  // where the geometry says at least min_track_samples were measurable —
  // verdicts kRfImplausible and is never credited. Windows too short to pin
  // a curve shape are inconclusive and fall through to the geometric path.
  core::ReceiptVerdict audit_and_credit(
      const core::ProofOfCoverage& poc, const core::CoverageReceipt& receipt,
      core::PartyId owner_party, core::Ledger& ledger, core::AccountId owner_account,
      ReceiptProvenance provenance = ReceiptProvenance::kChallenge,
      const rf::DopplerObservation* doppler = nullptr);

  // Settlement-time SLA cross-check: true (and recorded as a misreport) when
  // `claimed_seconds` exceeds `measured_seconds` beyond the configured
  // tolerance. The measured value is the scheduler's ground truth.
  bool audit_sla_claim(core::PartyId party, double claimed_seconds,
                       double measured_seconds);

  // Records spectrum-plan violations the scheduler's interference accounting
  // attributed to `party` (see rf::RfLinkStats::violation_inr_by_party):
  // `events` incidents carrying `total_inr` linear interference-to-noise.
  // Counts straight into the party's fraud evidence.
  void record_interference_violations(core::PartyId party, std::uint64_t events,
                                      double total_inr);

  [[nodiscard]] const PartyAuditStats& stats(core::PartyId party) const;
  [[nodiscard]] const std::vector<PartyAuditStats>& all_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] PartyAuditStats totals() const;
  [[nodiscard]] const AuditConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] const cov::StepMask* prescreen_mask(const core::ProofOfCoverage& poc,
                                                    const core::CoverageReceipt& receipt);

  AuditConfig config_;
  std::vector<PartyAuditStats> stats_;
  std::optional<orbit::TimeGrid> grid_;
  // Overhead masks per (satellite, verifier) pair, re-derived lazily on the
  // audit grid and reused across the epoch's receipts.
  std::map<std::pair<std::uint64_t, std::uint32_t>, cov::StepMask> mask_cache_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace mpleo::adversary
