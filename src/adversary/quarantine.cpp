#include "adversary/quarantine.hpp"

#include <algorithm>
#include <utility>

#include "core/validation.hpp"
#include "obs/metrics.hpp"

namespace mpleo::adversary {

const char* to_string(TrustState state) noexcept {
  switch (state) {
    case TrustState::kTrusted: return "trusted";
    case TrustState::kSuspected: return "suspected";
    case TrustState::kQuarantined: return "quarantined";
    case TrustState::kExpelled: return "expelled";
  }
  return "unknown";
}

QuarantineManager::QuarantineManager(QuarantineConfig config, std::size_t party_count,
                                     obs::MetricsRegistry* metrics)
    : config_(config),
      records_(party_count),
      last_fraud_totals_(party_count, 0),
      metrics_(metrics) {
  core::require_fraction(config_.stake_slash_fraction, "stake_slash_fraction");
}

void QuarantineManager::observe_epoch(std::size_t epoch, const ReceiptAuditor& auditor,
                                      core::Ledger& ledger,
                                      std::span<const core::AccountId> accounts,
                                      core::Consortium& consortium,
                                      core::ReputationTracker* reputation) {
  for (core::PartyId party = 0; party < records_.size(); ++party) {
    PartyTrustRecord& record = records_[party];
    if (record.state == TrustState::kExpelled) continue;

    const std::uint64_t total = auditor.stats(party).fraud_total();
    const std::uint64_t fresh = total - last_fraud_totals_[party];
    last_fraud_totals_[party] = total;
    record.fraud_last_epoch = fresh;
    record.fraud_seen += fresh;  // accumulated since the last reset, not raw totals
    if (fresh > 0 && record.first_fraud_epoch == PartyTrustRecord::kNever) {
      record.first_fraud_epoch = epoch;
    }
    if (reputation != nullptr && fresh > 0) {
      reputation->record_fraud(party, static_cast<std::size_t>(fresh));
    }

    switch (record.state) {
      case TrustState::kTrusted:
        if (fresh >= config_.suspect_threshold && config_.suspect_threshold > 0) {
          record.state = TrustState::kSuspected;
        }
        [[fallthrough]];
      case TrustState::kSuspected:
        if (record.fraud_seen >= config_.quarantine_threshold) {
          record.state = TrustState::kQuarantined;
          record.quarantined_epoch = epoch;
          record.quarantined_fraud_epochs = 0;
          record.clean_epochs = 0;
          consortium.quarantine_party(party);
          // Slash: a fraction of the party's stake moves to the treasury.
          // The transfer can only fail on a zero balance, in which case
          // there is nothing to slash anyway.
          if (party < accounts.size()) {
            const double slash = core::Consortium::slash_amount(
                ledger.balance(accounts[party]), config_.stake_slash_fraction);
            if (slash > 0.0 &&
                ledger.transfer(accounts[party], core::Ledger::kTreasury, slash,
                                "quarantine slash")) {
              record.slashed_total += slash;
            }
          }
          const std::size_t since = record.first_fraud_epoch == PartyTrustRecord::kNever
                                        ? 0
                                        : epoch - record.first_fraud_epoch;
          detections_.emplace_back(record.first_fraud_epoch, epoch);
          if (metrics_ != nullptr) {
            metrics_->counter("quarantine.quarantined").add(1);
            metrics_
                ->histogram("quarantine.detection_epochs",
                            obs::MetricsRegistry::default_count_bounds())
                .observe(static_cast<double>(since));
          }
        }
        break;
      case TrustState::kQuarantined:
        if (fresh > 0) {
          record.clean_epochs = 0;
          if (++record.quarantined_fraud_epochs >= config_.expel_after_quarantined_epochs) {
            record.state = TrustState::kExpelled;
            consortium.withdraw_party(party);
            if (metrics_ != nullptr) metrics_->counter("quarantine.expelled").add(1);
          }
        } else if (++record.clean_epochs >= config_.reinstate_after_clean_epochs) {
          // Probation, not absolution: back to kSuspected with the evidence
          // counter reset so a relapse re-runs the full escalation.
          record.state = TrustState::kSuspected;
          record.fraud_seen = 0;
          record.quarantined_fraud_epochs = 0;
          record.clean_epochs = 0;
          consortium.reinstate_party(party);
          if (metrics_ != nullptr) metrics_->counter("quarantine.reinstated").add(1);
        }
        break;
      case TrustState::kExpelled:
        break;
    }
  }
}

TrustState QuarantineManager::state(core::PartyId party) const {
  return records_.at(party).state;
}

const PartyTrustRecord& QuarantineManager::record(core::PartyId party) const {
  return records_.at(party);
}

std::vector<std::uint8_t> QuarantineManager::spare_exclusion() const {
  std::vector<std::uint8_t> mask(records_.size(), 0);
  for (std::size_t party = 0; party < records_.size(); ++party) {
    const TrustState state = records_[party].state;
    mask[party] =
        (state == TrustState::kQuarantined || state == TrustState::kExpelled) ? 1 : 0;
  }
  return mask;
}

std::size_t QuarantineManager::quarantined_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(), [](const PartyTrustRecord& r) {
        return r.state == TrustState::kQuarantined;
      }));
}

std::size_t QuarantineManager::expelled_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(records_.begin(), records_.end(), [](const PartyTrustRecord& r) {
        return r.state == TrustState::kExpelled;
      }));
}

double QuarantineManager::total_slashed() const noexcept {
  double total = 0.0;
  for (const PartyTrustRecord& record : records_) total += record.slashed_total;
  return total;
}

double QuarantineManager::mean_detection_epochs() const noexcept {
  if (detections_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& [first_fraud, quarantined] : detections_) {
    sum += first_fraud == PartyTrustRecord::kNever
               ? 0.0
               : static_cast<double>(quarantined - first_fraud);
  }
  return sum / static_cast<double>(detections_.size());
}

}  // namespace mpleo::adversary
