#include "adversary/audit.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/validation.hpp"
#include "obs/metrics.hpp"

namespace mpleo::adversary {

ReceiptAuditor::ReceiptAuditor(AuditConfig config, std::size_t party_count,
                               obs::MetricsRegistry* metrics)
    : config_(config), stats_(party_count), metrics_(metrics) {
  core::require_non_negative(config_.sla_tolerance, "sla_tolerance");
  rf::throw_if_invalid("adversary::AuditConfig", config_.doppler.validate());
}

void ReceiptAuditor::set_audit_grid(orbit::TimeGrid grid) {
  grid_ = grid;
  mask_cache_.clear();
}

const cov::StepMask* ReceiptAuditor::prescreen_mask(const core::ProofOfCoverage& poc,
                                                    const core::CoverageReceipt& receipt) {
  if (!config_.prescreen_with_masks || !grid_.has_value()) return nullptr;
  const std::pair<std::uint64_t, std::uint32_t> key{receipt.satellite, receipt.verifier};
  if (const auto it = mask_cache_.find(key); it != mask_cache_.end()) return &it->second;
  cov::StepMask mask;
  try {
    mask = poc.overhead_steps(receipt.satellite, receipt.verifier, *grid_);
  } catch (const std::exception&) {
    return nullptr;  // unknown ids: the authoritative verdict reports them
  }
  return &mask_cache_.emplace(key, std::move(mask)).first->second;
}

core::ReceiptVerdict ReceiptAuditor::audit_and_credit(const core::ProofOfCoverage& poc,
                                                      const core::CoverageReceipt& receipt,
                                                      core::PartyId owner_party,
                                                      core::Ledger& ledger,
                                                      core::AccountId owner_account,
                                                      ReceiptProvenance provenance,
                                                      const rf::DopplerObservation* doppler) {
  PartyAuditStats& stats = stats_.at(owner_party);
  ++stats.submitted;

  // Prescreen against the ephemeris-kernel visibility mask: does the audit
  // grid place the claimed satellite over the claimed verifier at the
  // claimed step? Analytics only — masks quantise to grid steps, so the
  // exact-geometry check below stays authoritative.
  bool prescreen_overhead = true;
  bool prescreened = false;
  if (const cov::StepMask* mask = prescreen_mask(poc, receipt); mask != nullptr) {
    const double offset_s = receipt.time.seconds_since(grid_->start);
    const auto step = static_cast<std::int64_t>(std::floor(offset_s / grid_->step_seconds));
    prescreened = true;
    prescreen_overhead = step >= 0 &&
                         step < static_cast<std::int64_t>(mask->step_count()) &&
                         mask->test(static_cast<std::size_t>(step));
    if (!prescreen_overhead) ++stats.prescreen_flagged;
  }

  // RF grounding: a claim that passes digest and exact geometry must also
  // carry a Doppler track whose SHAPE matches what the shared ephemeris
  // kernel predicts for the claimed pass (constant oscillator offset
  // removed; see rf::fit_doppler_track). Decided before crediting, so an
  // implausible receipt never touches the ledger.
  bool doppler_rejected = false;
  if (config_.doppler.enabled &&
      poc.verify(receipt) == core::ReceiptVerdict::kValid) {
    const std::vector<double> offsets = config_.doppler.sample_offsets_s();
    const std::vector<core::ProofOfCoverage::DopplerPoint> predicted =
        poc.doppler_track(receipt.satellite, receipt.verifier, receipt.time,
                          config_.doppler.carrier_hz, offsets);
    // A window with fewer measurable samples than min_track_samples cannot
    // pin a curve shape: inconclusive, fall through to the geometric path.
    if (predicted.size() >= config_.doppler.min_track_samples) {
      ++stats.doppler_checked;
      std::vector<double> measured;
      std::vector<double> expected;
      if (doppler != nullptr) {
        const std::size_t have =
            std::min(doppler->offsets_s.size(), doppler->doppler_hz.size());
        for (const core::ProofOfCoverage::DopplerPoint& point : predicted) {
          for (std::size_t i = 0; i < have; ++i) {
            if (doppler->offsets_s[i] == point.offset_s) {
              measured.push_back(doppler->doppler_hz[i]);
              expected.push_back(point.doppler_hz);
              break;
            }
          }
        }
      }
      if (measured.size() < config_.doppler.min_track_samples) {
        // The pass was measurable and the claimant brought no (or too little)
        // track: implausible for a contact it says it had.
        doppler_rejected = true;
      } else {
        const rf::TrackFit fit = rf::fit_doppler_track(measured, expected);
        if (metrics_ != nullptr) {
          metrics_->histogram("audit.doppler_rms_hz").observe(fit.rms_hz);
        }
        doppler_rejected = fit.rms_hz > config_.doppler.rms_tolerance_hz;
      }
    }
  }

  const core::ReceiptVerdict verdict =
      doppler_rejected ? core::ReceiptVerdict::kRfImplausible
                       : poc.verify_and_reward(receipt, ledger, owner_account);
  switch (verdict) {
    case core::ReceiptVerdict::kValid: ++stats.credited; break;
    case core::ReceiptVerdict::kBadDigest: ++stats.rejected_digest; break;
    case core::ReceiptVerdict::kNotOverhead:
      ++stats.rejected_geometry;
      if (provenance == ReceiptProvenance::kSubmission) ++stats.unsolicited_geometry;
      break;
    case core::ReceiptVerdict::kDuplicate: ++stats.rejected_duplicate; break;
    case core::ReceiptVerdict::kRfImplausible: ++stats.rf_doppler_rejections; break;
    case core::ReceiptVerdict::kUnknownSatellite:
    case core::ReceiptVerdict::kUnknownVerifier: ++stats.rejected_unknown; break;
  }
  if (prescreened) {
    const bool exact_overhead = verdict != core::ReceiptVerdict::kNotOverhead;
    if (prescreen_overhead != exact_overhead) ++stats.prescreen_mismatches;
  }

  if (metrics_ != nullptr) {
    metrics_->counter("audit.receipts_submitted").add(1);
    switch (verdict) {
      case core::ReceiptVerdict::kValid:
        metrics_->counter("audit.receipts_credited").add(1);
        break;
      case core::ReceiptVerdict::kBadDigest:
      case core::ReceiptVerdict::kDuplicate:
        metrics_->counter("audit.fraud_detected").add(1);
        break;
      case core::ReceiptVerdict::kRfImplausible:
        metrics_->counter("audit.rf_doppler_rejections").add(1);
        metrics_->counter("audit.fraud_detected").add(1);
        break;
      case core::ReceiptVerdict::kNotOverhead:
        metrics_
            ->counter(provenance == ReceiptProvenance::kSubmission
                          ? "audit.fraud_detected"
                          : "audit.challenge_geometry_misses")
            .add(1);
        break;
      case core::ReceiptVerdict::kUnknownSatellite:
      case core::ReceiptVerdict::kUnknownVerifier:
        metrics_->counter("audit.receipts_unknown").add(1);
        break;
    }
    if (prescreened && !prescreen_overhead) {
      metrics_->counter("audit.prescreen_flagged").add(1);
    }
  }
  return verdict;
}

bool ReceiptAuditor::audit_sla_claim(core::PartyId party, double claimed_seconds,
                                     double measured_seconds) {
  core::require_non_negative(claimed_seconds, "claimed_seconds");
  core::require_non_negative(measured_seconds, "measured_seconds");
  const bool misreport = claimed_seconds > measured_seconds * (1.0 + config_.sla_tolerance);
  if (misreport) {
    ++stats_.at(party).sla_misreports;
    if (metrics_ != nullptr) metrics_->counter("audit.sla_misreports").add(1);
  }
  return misreport;
}

void ReceiptAuditor::record_interference_violations(core::PartyId party,
                                                    std::uint64_t events,
                                                    double total_inr) {
  if (events == 0) return;
  stats_.at(party).rf_interference_violations += events;
  if (metrics_ != nullptr) {
    metrics_->counter("audit.rf_interference_violations").add(events);
    metrics_->histogram("audit.rf_violation_inr").observe(total_inr);
  }
}

const PartyAuditStats& ReceiptAuditor::stats(core::PartyId party) const {
  return stats_.at(party);
}

PartyAuditStats ReceiptAuditor::totals() const {
  PartyAuditStats total;
  for (const PartyAuditStats& s : stats_) {
    total.submitted += s.submitted;
    total.credited += s.credited;
    total.rejected_digest += s.rejected_digest;
    total.rejected_geometry += s.rejected_geometry;
    total.unsolicited_geometry += s.unsolicited_geometry;
    total.rejected_duplicate += s.rejected_duplicate;
    total.rejected_unknown += s.rejected_unknown;
    total.sla_misreports += s.sla_misreports;
    total.doppler_checked += s.doppler_checked;
    total.rf_doppler_rejections += s.rf_doppler_rejections;
    total.rf_interference_violations += s.rf_interference_violations;
    total.prescreen_flagged += s.prescreen_flagged;
    total.prescreen_mismatches += s.prescreen_mismatches;
  }
  return total;
}

}  // namespace mpleo::adversary
