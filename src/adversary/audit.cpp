#include "adversary/audit.hpp"

#include <cmath>
#include <stdexcept>

#include "core/validation.hpp"
#include "obs/metrics.hpp"

namespace mpleo::adversary {

ReceiptAuditor::ReceiptAuditor(AuditConfig config, std::size_t party_count,
                               obs::MetricsRegistry* metrics)
    : config_(config), stats_(party_count), metrics_(metrics) {
  core::require_non_negative(config_.sla_tolerance, "sla_tolerance");
}

void ReceiptAuditor::set_audit_grid(orbit::TimeGrid grid) {
  grid_ = grid;
  mask_cache_.clear();
}

const cov::StepMask* ReceiptAuditor::prescreen_mask(const core::ProofOfCoverage& poc,
                                                    const core::CoverageReceipt& receipt) {
  if (!config_.prescreen_with_masks || !grid_.has_value()) return nullptr;
  const std::pair<std::uint64_t, std::uint32_t> key{receipt.satellite, receipt.verifier};
  if (const auto it = mask_cache_.find(key); it != mask_cache_.end()) return &it->second;
  cov::StepMask mask;
  try {
    mask = poc.overhead_steps(receipt.satellite, receipt.verifier, *grid_);
  } catch (const std::exception&) {
    return nullptr;  // unknown ids: the authoritative verdict reports them
  }
  return &mask_cache_.emplace(key, std::move(mask)).first->second;
}

core::ReceiptVerdict ReceiptAuditor::audit_and_credit(const core::ProofOfCoverage& poc,
                                                      const core::CoverageReceipt& receipt,
                                                      core::PartyId owner_party,
                                                      core::Ledger& ledger,
                                                      core::AccountId owner_account,
                                                      ReceiptProvenance provenance) {
  PartyAuditStats& stats = stats_.at(owner_party);
  ++stats.submitted;

  // Prescreen against the ephemeris-kernel visibility mask: does the audit
  // grid place the claimed satellite over the claimed verifier at the
  // claimed step? Analytics only — masks quantise to grid steps, so the
  // exact-geometry check below stays authoritative.
  bool prescreen_overhead = true;
  bool prescreened = false;
  if (const cov::StepMask* mask = prescreen_mask(poc, receipt); mask != nullptr) {
    const double offset_s = receipt.time.seconds_since(grid_->start);
    const auto step = static_cast<std::int64_t>(std::floor(offset_s / grid_->step_seconds));
    prescreened = true;
    prescreen_overhead = step >= 0 &&
                         step < static_cast<std::int64_t>(mask->step_count()) &&
                         mask->test(static_cast<std::size_t>(step));
    if (!prescreen_overhead) ++stats.prescreen_flagged;
  }

  const core::ReceiptVerdict verdict =
      poc.verify_and_reward(receipt, ledger, owner_account);
  switch (verdict) {
    case core::ReceiptVerdict::kValid: ++stats.credited; break;
    case core::ReceiptVerdict::kBadDigest: ++stats.rejected_digest; break;
    case core::ReceiptVerdict::kNotOverhead:
      ++stats.rejected_geometry;
      if (provenance == ReceiptProvenance::kSubmission) ++stats.unsolicited_geometry;
      break;
    case core::ReceiptVerdict::kDuplicate: ++stats.rejected_duplicate; break;
    case core::ReceiptVerdict::kUnknownSatellite:
    case core::ReceiptVerdict::kUnknownVerifier: ++stats.rejected_unknown; break;
  }
  if (prescreened) {
    const bool exact_overhead = verdict != core::ReceiptVerdict::kNotOverhead;
    if (prescreen_overhead != exact_overhead) ++stats.prescreen_mismatches;
  }

  if (metrics_ != nullptr) {
    metrics_->counter("audit.receipts_submitted").add(1);
    switch (verdict) {
      case core::ReceiptVerdict::kValid:
        metrics_->counter("audit.receipts_credited").add(1);
        break;
      case core::ReceiptVerdict::kBadDigest:
      case core::ReceiptVerdict::kDuplicate:
        metrics_->counter("audit.fraud_detected").add(1);
        break;
      case core::ReceiptVerdict::kNotOverhead:
        metrics_
            ->counter(provenance == ReceiptProvenance::kSubmission
                          ? "audit.fraud_detected"
                          : "audit.challenge_geometry_misses")
            .add(1);
        break;
      case core::ReceiptVerdict::kUnknownSatellite:
      case core::ReceiptVerdict::kUnknownVerifier:
        metrics_->counter("audit.receipts_unknown").add(1);
        break;
    }
    if (prescreened && !prescreen_overhead) {
      metrics_->counter("audit.prescreen_flagged").add(1);
    }
  }
  return verdict;
}

bool ReceiptAuditor::audit_sla_claim(core::PartyId party, double claimed_seconds,
                                     double measured_seconds) {
  core::require_non_negative(claimed_seconds, "claimed_seconds");
  core::require_non_negative(measured_seconds, "measured_seconds");
  const bool misreport = claimed_seconds > measured_seconds * (1.0 + config_.sla_tolerance);
  if (misreport) {
    ++stats_.at(party).sla_misreports;
    if (metrics_ != nullptr) metrics_->counter("audit.sla_misreports").add(1);
  }
  return misreport;
}

const PartyAuditStats& ReceiptAuditor::stats(core::PartyId party) const {
  return stats_.at(party);
}

PartyAuditStats ReceiptAuditor::totals() const {
  PartyAuditStats total;
  for (const PartyAuditStats& s : stats_) {
    total.submitted += s.submitted;
    total.credited += s.credited;
    total.rejected_digest += s.rejected_digest;
    total.rejected_geometry += s.rejected_geometry;
    total.unsolicited_geometry += s.unsolicited_geometry;
    total.rejected_duplicate += s.rejected_duplicate;
    total.rejected_unknown += s.rejected_unknown;
    total.sla_misreports += s.sla_misreports;
    total.prescreen_flagged += s.prescreen_flagged;
    total.prescreen_mismatches += s.prescreen_mismatches;
  }
  return total;
}

}  // namespace mpleo::adversary
