// Byzantine party behavior policies (the adversarial half of §3.4's
// robustness story).
//
// fault::FaultTimeline models assets that *break*; a BehaviorBook models
// parties that *lie* — forging proof-of-coverage receipts, inflating them by
// resubmission, withholding contributed capacity from the spare commons,
// misreporting SLA outcomes, and colluding in small coalitions that share
// signing keys. Policies are deterministic, seeded data attached to party
// ids, never live code: the campaign layer reads the book and injects the
// corresponding behavior, so a run is exactly reproducible from the seed.
//
// Bit-identity contract (mirroring FaultTimeline::empty()): an empty() book
// — default-constructed or sampled at byzantine fraction 0 — must leave
// every consumer bit-identical to the adversary-free code path.
//
// CRN discipline: sample() draws ONE seeded permutation of the parties and
// takes its prefix as the Byzantine set, with each slot's behavior fixed by
// its position in the permutation. Two books sampled at fractions f1 < f2
// from the same seed therefore have nested Byzantine sets with unchanged
// per-party behavior, and stream(party, epoch) depends only on (seed, party,
// epoch) — never on the fraction — so adversary sweeps are monotone by
// construction, not merely in expectation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/party.hpp"
#include "util/rng.hpp"

namespace mpleo::sim {
enum class AdversaryMode : std::uint8_t;
}

namespace mpleo::adversary {

enum class Behavior : std::uint8_t {
  kHonest,
  kForgeReceipts,      // proof-of-coverage claims for contacts that never happened
  kInflateReceipts,    // resubmits already-credited receipts for double pay
  kWithholdCapacity,   // reserves contributed beams away from the spare commons
  kMisreportSla,       // inflates its served-seconds claim at settlement
  kCollude,            // coalition: shared keys, cross-submitted forgeries
  kJamming,            // radiates boosted power across the shared downlink band
  kSpectrumSquatting,  // transmits outside its assigned channel at nominal power
};

[[nodiscard]] const char* to_string(Behavior behavior) noexcept;

struct PartyPolicy {
  Behavior behavior = Behavior::kHonest;
  // Fraudulent submissions per epoch (forge / inflate / collude).
  std::size_t receipts_per_epoch = 4;
  // Behavior strength: scales the withheld beam fraction and the SLA
  // inflation factor. Must be finite and >= 0.
  double intensity = 1.0;
  // Collusion group id; kNoCoalition for solo behaviors.
  static constexpr std::uint32_t kNoCoalition = 0xFFFFFFFFu;
  std::uint32_t coalition = kNoCoalition;

  [[nodiscard]] bool honest() const noexcept { return behavior == Behavior::kHonest; }
  // Fraction of each contributed satellite's beams a withholding party
  // reserves away from the spare pass, in [0, 1].
  [[nodiscard]] double withheld_fraction() const noexcept;
  // Multiplier a misreporting party applies to its true served seconds.
  [[nodiscard]] double sla_inflation() const noexcept { return 1.0 + intensity; }
};

class BehaviorBook {
 public:
  // An empty book: every party honest (the bit-identity contract).
  BehaviorBook() = default;
  // Explicit policies, one per party id. Throws core::ValidationError on a
  // negative or non-finite intensity.
  explicit BehaviorBook(std::vector<PartyPolicy> policies, std::uint64_t seed = 1042);

  // Seeded CRN sampling: round(byzantine_fraction * party_count) parties
  // turn Byzantine, chosen as the prefix of one seeded permutation, each
  // assigned mix[position % mix.size()]. Nested across fractions for a
  // fixed seed (see the header comment). An empty mix or zero fraction
  // yields an empty() book. byzantine_fraction is validated to [0, 1] and
  // intensity to >= 0 with core::ValidationError.
  [[nodiscard]] static BehaviorBook sample(std::size_t party_count,
                                           double byzantine_fraction,
                                           std::span<const Behavior> mix,
                                           double intensity,
                                           std::size_t receipts_per_epoch,
                                           std::uint64_t seed);

  // True when no party misbehaves — consumers must stay on the
  // bit-identical adversary-free path.
  [[nodiscard]] bool empty() const noexcept;

  // Policy of one party; parties beyond the book are honest.
  [[nodiscard]] const PartyPolicy& policy(core::PartyId party) const noexcept;

  [[nodiscard]] std::size_t party_count() const noexcept { return policies_.size(); }
  [[nodiscard]] std::size_t byzantine_count() const noexcept;
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  // The deterministic randomness stream for one party's behavior in one
  // epoch. Depends only on (seed, party, epoch) — independent of the
  // sampled fraction and of every other party — so Byzantine injections are
  // stable when the Byzantine set grows (the CRN sweep invariant).
  [[nodiscard]] util::Xoshiro256PlusPlus stream(core::PartyId party,
                                                std::size_t epoch) const noexcept;

  // Per-party withheld beam fractions sized to `party_count`, ready for
  // net::SchedulerConfig::spare_withheld_fraction. All-zero entries when no
  // party withholds; an empty vector when the book is empty (so the
  // scheduler stays on its historical config shape).
  [[nodiscard]] std::vector<double> withheld_fractions(std::size_t party_count) const;

  // Byte-per-party Byzantine membership (1 = Byzantine), sized to the book.
  [[nodiscard]] std::vector<std::uint8_t> byzantine_mask() const;

  // Per-party RF misbehavior flags sized to the book, consumed by
  // rf::InterferenceEnvironment. Both all-false for an empty() book.
  [[nodiscard]] std::vector<bool> jamming_mask() const;
  [[nodiscard]] std::vector<bool> squatting_mask() const;

  // Coalition partners of `party` (including itself) — parties sharing its
  // coalition id. A solo party maps to just itself.
  [[nodiscard]] std::vector<core::PartyId> coalition_of(core::PartyId party) const;

 private:
  std::vector<PartyPolicy> policies_;
  std::uint64_t seed_ = 1042;
};

// The behavior mix a sim::AdversaryMode scenario flag arms: one behavior for
// the single-mode values, the full round-robin for kMixed, and an empty mix
// (no adversaries regardless of fraction) for kOff.
[[nodiscard]] std::vector<Behavior> mix_for_mode(sim::AdversaryMode mode);

}  // namespace mpleo::adversary
