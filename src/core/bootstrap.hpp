// Bootstrapping economics (§4 "Bootstrapping decentralized networks").
//
// Two instruments the paper sketches, made concrete:
//  1. Token emission with early-adopter weighting: epoch rewards decay
//     geometrically (Helium-style halvings), so early contributors earn a
//     larger share of the eventual supply.
//  2. Delay-tolerant service from sparse constellations: before coverage is
//     continuous, a store-and-forward satellite can still carry IoT and bulk
//     transfers. Given visibility timelines of a source and destination
//     site, `dtn_delivery_latencies` computes the latency a message created
//     at each step experiences (wait for pickup pass, ride, wait for
//     delivery pass) — quantifying what an early MP-LEO can sell.
#pragma once

#include <cstddef>
#include <vector>

#include "coverage/step_mask.hpp"

namespace mpleo::core {

struct EmissionSchedule {
  double initial_epoch_reward = 1000.0;  // tokens minted in epoch 0
  double decay = 0.5;                    // per-halving multiplier
  std::size_t epochs_per_halving = 12;   // e.g. monthly epochs, annual halving

  // Tokens minted in a given epoch.
  [[nodiscard]] double epoch_reward(std::size_t epoch) const noexcept;
  // Total minted in epochs [0, epoch_count).
  [[nodiscard]] double cumulative(std::size_t epoch_count) const noexcept;
  // Limit of cumulative() as epochs -> infinity (finite for decay < 1).
  [[nodiscard]] double total_supply() const noexcept;
};

struct DtnStats {
  std::size_t delivered = 0;
  std::size_t stranded = 0;  // no delivery opportunity before window end
  double mean_latency_s = 0.0;
  double p50_latency_s = 0.0;
  double p95_latency_s = 0.0;
  double max_latency_s = 0.0;
};

// Latency of a store-and-forward message created at step i: time until the
// next step where `uplink` (satellite over the source) is set, then from
// there the next step where `downlink` (satellite over the destination) is
// set. Messages that cannot complete before the window end are dropped from
// the returned vector (counted as stranded in dtn_stats).
[[nodiscard]] std::vector<double> dtn_delivery_latencies(const cov::StepMask& uplink,
                                                         const cov::StepMask& downlink,
                                                         double step_seconds);

[[nodiscard]] DtnStats dtn_stats(const cov::StepMask& uplink,
                                 const cov::StepMask& downlink, double step_seconds);

}  // namespace mpleo::core
