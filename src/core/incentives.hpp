// Coverage-hole-weighted incentives (§3.2): "Helium-like networks design
// incentive structures to offer higher rewards in regions of low coverage."
//
// Rewards per grid cell scale with the coverage deficit, so a satellite
// whose ground track crosses under-served cells earns more — which is
// exactly the behaviour that also maximizes global coverage (§3.3's
// incentive/robustness alignment).
#pragma once

#include <span>
#include <vector>

#include "constellation/shell.hpp"
#include "coverage/grid.hpp"
#include "orbit/ephemeris.hpp"

namespace mpleo::core {

struct IncentiveConfig {
  double base_rate = 1.0;   // tokens/hour of service in a fully covered cell
  double hole_boost = 4.0;  // extra multiplier at zero coverage
  double gamma = 1.0;       // curvature: >1 concentrates rewards on deep holes
};

// multiplier[c] = base_rate * (1 + hole_boost * (1 - coverage[c])^gamma).
[[nodiscard]] std::vector<double> reward_multipliers(
    std::span<const double> cell_coverage, const IncentiveConfig& config);

// Expected reward rate (tokens/hour of wall-clock time) of operating
// `satellite`: the area-weighted, multiplier-weighted fraction of time the
// satellite serves each grid cell over the engine's window.
[[nodiscard]] double expected_reward_rate(const cov::CoverageEngine& engine,
                                          const cov::EarthGrid& grid,
                                          std::span<const double> multipliers,
                                          const constellation::Satellite& satellite);

// Same, from a precomputed ephemeris table (shared-kernel path: callers
// scoring many reward configurations against one satellite propagate once).
[[nodiscard]] double expected_reward_rate(const cov::CoverageEngine& engine,
                                          const cov::EarthGrid& grid,
                                          std::span<const double> multipliers,
                                          const orbit::EphemerisTable& ephemeris);

}  // namespace mpleo::core
