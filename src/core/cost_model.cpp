#include "core/cost_model.hpp"

#include <stdexcept>

namespace mpleo::core {

double CostModel::constellation_capex(std::size_t satellites,
                                      std::size_t ground_stations) const noexcept {
  return static_cast<double>(satellites) *
             (satellite_unit_cost + launch_cost_per_satellite) +
         static_cast<double>(ground_stations) * ground_station_capex;
}

double CostModel::lifetime_cost(std::size_t satellites,
                                std::size_t ground_stations) const noexcept {
  return constellation_capex(satellites, ground_stations) +
         static_cast<double>(satellites) * annual_opex_per_satellite *
             satellite_lifetime_years;
}

double CostModel::cost_per_covered_hour(std::size_t satellites,
                                        std::size_t ground_stations,
                                        double covered_fraction) const {
  if (!(covered_fraction > 0.0) || covered_fraction > 1.0) {
    throw std::invalid_argument("cost_per_covered_hour: coverage not in (0, 1]");
  }
  const double covered_hours =
      satellite_lifetime_years * 365.25 * 24.0 * covered_fraction;
  return lifetime_cost(satellites, ground_stations) / covered_hours;
}

SharingAdvantage sharing_advantage(const CostModel& model,
                                   std::size_t sovereign_satellites,
                                   std::size_t contributed_satellites,
                                   std::size_t ground_stations) {
  SharingAdvantage advantage;
  advantage.sovereign_lifetime_cost =
      model.lifetime_cost(sovereign_satellites, ground_stations);
  advantage.shared_lifetime_cost =
      model.lifetime_cost(contributed_satellites, ground_stations);
  advantage.cost_ratio =
      advantage.shared_lifetime_cost > 0.0
          ? advantage.sovereign_lifetime_cost / advantage.shared_lifetime_cost
          : 0.0;
  return advantage;
}

}  // namespace mpleo::core
