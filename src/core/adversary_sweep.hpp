// Adversary sweep: coverage, welfare and honest-party payoff vs the fraction
// of Byzantine consortium members — the robustness counterpart to the
// fault-injection resilience sweep, answering the paper's §3.4 question for
// *misbehaving* (not merely failing) parties: how much of the shared-LEO
// value survives when a growing coalition forges receipts, withholds spare
// capacity, and misreports SLAs, with the audit/quarantine machinery
// fighting back?
//
// CRN discipline (shared with core::resilience_sweep): every sweep point
// samples its BehaviorBook from the SAME seed, so Byzantine sets are nested
// across fractions and each party keeps its behavior (see
// adversary::BehaviorBook::sample). The gated headline metric —
// honest-core payoff — is computed against the running union of excluded
// parties (withholders plus end-of-run sanctioned parties, accumulated
// across sweep points), so the serving satellite set shrinks monotonically
// in the fraction and the payoff is non-increasing BY CONSTRUCTION: mask
// unions of nested satellite sets are nested. CI gates on this.
#pragma once

#include <cstdint>
#include <vector>

#include "adversary/audit.hpp"
#include "adversary/policy.hpp"
#include "adversary/quarantine.hpp"
#include "rf/doppler.hpp"
#include "rf/spectrum_plan.hpp"

namespace mpleo::sim {
class RunContext;
}

namespace mpleo::core {

struct AdversarySweepConfig {
  // Sweep axis: fraction of parties turned Byzantine. Must be
  // non-decreasing, each validated to [0, 1].
  std::vector<double> byzantine_fractions = {0.0, 0.125, 0.25, 0.375, 0.5};
  // Synthetic consortium workload: `parties` members, each contributing one
  // orbital plane plus its own terminals and ground stations.
  std::size_t parties = 8;
  std::size_t satellites_per_party = 12;
  std::size_t terminals_per_party = 6;
  std::size_t stations_per_party = 2;
  // Campaign shape per sweep point.
  std::size_t epochs = 4;
  double epoch_duration_s = 6.0 * 3600.0;
  double step_s = 120.0;
  double elevation_mask_deg = 25.0;
  // Token value an hour of full honest-core coverage is worth — scales the
  // gated payoff metric only.
  double service_value_per_hour = 100.0;
  // Byzantine behavior knobs (see adversary::PartyPolicy).
  double intensity = 1.0;
  std::size_t receipts_per_epoch = 6;
  // Behavior mix assigned across the Byzantine prefix; empty = the full
  // mixed round-robin (mix_for_mode(kMixed)).
  std::vector<adversary::Behavior> mix;
  adversary::AuditConfig audit;
  adversary::QuarantineConfig quarantine;
  std::uint64_t seed = 1042;
};

struct AdversarySweepPoint {
  double byzantine_fraction = 0.0;
  std::size_t byzantine_parties = 0;
  // Cumulative over the point's campaign: dishonest submissions (forged +
  // resubmitted receipts + SLA overclaims) vs audit fraud evidence. The
  // audit engine guarantees detected >= injected (every injected receipt is
  // rejected with a fraud verdict); CI gates on it.
  std::size_t fraud_injected = 0;
  std::size_t fraud_detected = 0;
  // End-of-campaign sanction state.
  std::size_t quarantined_parties = 0;
  std::size_t expelled_parties = 0;
  double mean_detection_epochs = 0.0;  // first evidence -> quarantine
  double total_slashed = 0.0;
  // Weighted coverage of honest-core sites by non-excluded satellites (the
  // welfare the honest core actually receives), and the gated payoff it
  // prices out to. Monotone non-increasing in the fraction by construction.
  double honest_core_welfare = 0.0;
  double honest_core_payoff = 0.0;
  // Mean end-of-campaign token balance across honest-core parties.
  double mean_honest_balance = 0.0;
};

// Runs one campaign per fraction (fresh consortium, same seed — only the
// BehaviorBook differs) and reports the points in config order. The
// context's pool parallelises mask precomputation and the per-epoch
// scheduling phase 1; results are bit-identical for any pool size. Sweep
// counters land in context.metrics() under "adversary_sweep.". Throws
// core::ValidationError / std::invalid_argument on malformed config.
[[nodiscard]] std::vector<AdversarySweepPoint> adversary_sweep(
    const AdversarySweepConfig& config, sim::RunContext& context);

// ---------------------------------------------------------------------------
// RF sweep: the two RF-grounded robustness axes of the audit stack.

struct RfSweepConfig {
  // Doppler axis: per forgery sophistication level, this many
  // geometrically-valid forged receipts with fabricated tracks and the same
  // number of honest receipts with noisy-but-true tracks, audited directly.
  std::size_t doppler_trials = 200;
  // Doppler audit stage shared by both axes; `enabled` is forced on for the
  // doppler axis regardless of its value here.
  rf::DopplerAuditConfig doppler;
  // Jamming axis: fraction of parties turned jammers per point. Must start
  // at 0 and be non-decreasing; sets are nested across fractions (CRN, same
  // discipline as the byzantine_fractions axis).
  std::vector<double> jammer_fractions = {0.0, 0.125, 0.25, 0.375};
  rf::SpectrumConfig spectrum;
};

// One forgery-sophistication level of the Doppler axis.
struct RfDopplerPoint {
  rf::ForgeryLevel level = rf::ForgeryLevel::kFlatTone;
  // Whether the level sits inside the audit's detection envelope
  // (rf::detectable); kEphemerisExact is the documented blind spot and is
  // reported but not gated.
  bool gated = false;
  std::size_t forged_submitted = 0;
  std::size_t forged_rejected = 0;   // verdict kRfImplausible
  std::size_t honest_submitted = 0;
  std::size_t honest_flagged = 0;    // must be 0: honest tracks always fit
  double detection_rate = 0.0;       // forged_rejected / forged_submitted
};

// One jammer fraction of the interference axis.
struct RfJammingPoint {
  double jammer_fraction = 0.0;
  std::size_t jamming_parties = 0;
  // Epoch-0 capacity accounting — before any quarantine sanction can alter
  // link selection, so with nested jammer sets the welfare ratio is monotone
  // non-increasing BY CONSTRUCTION (same granted links, INR only grows).
  double capacity_nominal_bps = 0.0;
  double capacity_realized_bps = 0.0;
  double honest_welfare = 1.0;  // realized / nominal (1.0 with no jammer)
  // Cumulative over the campaign: attributed plan-violation evidence and the
  // sanction state it escalated to.
  std::size_t violations_detected = 0;
  std::size_t quarantined_parties = 0;
  std::size_t expelled_parties = 0;
  double total_slashed = 0.0;
};

struct RfSweepResult {
  std::vector<RfDopplerPoint> doppler;
  std::vector<RfJammingPoint> jamming;
};

// Runs the RF robustness sweep: the Doppler axis audits forged-vs-honest
// receipt tracks per sophistication level through a ReceiptAuditor over the
// shared workload geometry; the jamming axis runs one campaign per jammer
// fraction with the interference environment armed. The workload shape,
// epochs and audit/quarantine configs come from `config`; `rf_config` adds
// the RF knobs. Counters land in context.metrics() under "rf_sweep.".
// Throws core::ValidationError / std::invalid_argument on malformed config.
[[nodiscard]] RfSweepResult rf_adversary_sweep(const AdversarySweepConfig& config,
                                               const RfSweepConfig& rf_config,
                                               sim::RunContext& context);

}  // namespace mpleo::core
