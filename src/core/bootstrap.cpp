#include "core/bootstrap.hpp"

#include <algorithm>
#include <limits>

#include "util/stats.hpp"

namespace mpleo::core {

double EmissionSchedule::epoch_reward(std::size_t epoch) const noexcept {
  const std::size_t halvings = epochs_per_halving > 0 ? epoch / epochs_per_halving : 0;
  double reward = initial_epoch_reward;
  for (std::size_t h = 0; h < halvings; ++h) reward *= decay;
  return reward;
}

double EmissionSchedule::cumulative(std::size_t epoch_count) const noexcept {
  double total = 0.0;
  for (std::size_t e = 0; e < epoch_count; ++e) total += epoch_reward(e);
  return total;
}

double EmissionSchedule::total_supply() const noexcept {
  if (decay >= 1.0) return std::numeric_limits<double>::infinity();
  // Geometric series of per-halving blocks.
  const double block = initial_epoch_reward * static_cast<double>(epochs_per_halving);
  return block / (1.0 - decay);
}

std::vector<double> dtn_delivery_latencies(const cov::StepMask& uplink,
                                           const cov::StepMask& downlink,
                                           double step_seconds) {
  const std::size_t steps = uplink.step_count();
  std::vector<double> latencies;
  if (steps == 0 || downlink.step_count() != steps) return latencies;

  // next_up[i]: first step >= i with uplink set (steps if none); same for
  // next_down. Computed right-to-left in O(n).
  const std::size_t none = steps;
  std::vector<std::size_t> next_up(steps + 1, none);
  std::vector<std::size_t> next_down(steps + 1, none);
  for (std::size_t i = steps; i-- > 0;) {
    next_up[i] = uplink.test(i) ? i : next_up[i + 1];
    next_down[i] = downlink.test(i) ? i : next_down[i + 1];
  }

  latencies.reserve(steps);
  for (std::size_t created = 0; created < steps; ++created) {
    const std::size_t pickup = next_up[created];
    if (pickup == none) continue;
    // Delivery requires a downlink pass at or after pickup (the satellite
    // carries the message from the pickup onward).
    const std::size_t delivery = next_down[pickup];
    if (delivery == none) continue;
    latencies.push_back(static_cast<double>(delivery - created) * step_seconds);
  }
  return latencies;
}

DtnStats dtn_stats(const cov::StepMask& uplink, const cov::StepMask& downlink,
                   double step_seconds) {
  DtnStats stats;
  const std::vector<double> latencies =
      dtn_delivery_latencies(uplink, downlink, step_seconds);
  stats.delivered = latencies.size();
  stats.stranded = uplink.step_count() - latencies.size();
  if (!latencies.empty()) {
    stats.mean_latency_s = util::mean_of(latencies);
    stats.p50_latency_s = util::percentile(latencies, 50.0);
    stats.p95_latency_s = util::percentile(latencies, 95.0);
    stats.max_latency_s = *std::max_element(latencies.begin(), latencies.end());
  }
  return stats;
}

}  // namespace mpleo::core
