// Proof-of-coverage (§3.2): "ground stations at random locations can verify
// coverage by pinging satellites when they are overhead, and provide
// proof-of-coverage to earn rewards."
//
// Protocol modelled here:
//   1. Each satellite registers a secret key with the consortium at join.
//   2. A verifier site issues a challenge (nonce) when a satellite should be
//      overhead; a live satellite answers with MAC(key, sat | verifier |
//      time | nonce) — simulated with a keyed FNV-1a digest.
//   3. The consortium checks the digest AND that orbital geometry actually
//      places the satellite above the verifier's horizon at that time —
//      a party cannot earn rewards for coverage it can't deliver.
//   4. Valid receipts earn treasury rewards.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "constellation/shell.hpp"
#include "core/ledger.hpp"
#include "coverage/step_mask.hpp"
#include "orbit/any_propagator.hpp"
#include "orbit/backend.hpp"
#include "orbit/geodesy.hpp"
#include "orbit/propagator.hpp"
#include "orbit/time.hpp"

namespace mpleo::core {

struct CoverageReceipt {
  constellation::SatelliteId satellite = 0;
  std::uint32_t verifier = 0;       // verifier site index
  orbit::TimePoint time;
  std::uint64_t nonce = 0;
  std::uint64_t digest = 0;

  // Deterministic content hash over every field (unkeyed FNV-1a): the
  // identity the ledger's duplicate-submission guard keys on. Two receipts
  // hash equal iff they claim the same (satellite, verifier, time, nonce,
  // digest) — resubmitting an already-credited receipt cannot double-pay.
  [[nodiscard]] std::uint64_t content_hash() const noexcept;
};

enum class ReceiptVerdict {
  kValid,
  kBadDigest,        // forged / wrong key
  kNotOverhead,      // geometry says the satellite wasn't visible
  kUnknownSatellite,
  kUnknownVerifier,
  kDuplicate,        // valid but already credited (double-submission)
  kRfImplausible,    // Doppler track doesn't match the ephemeris prediction
};

[[nodiscard]] const char* to_string(ReceiptVerdict verdict) noexcept;

class ProofOfCoverage {
 public:
  struct Config {
    double elevation_mask_deg = 10.0;  // verifier horizon (lower than service mask)
    double reward_per_receipt = 1.0;   // treasury tokens per valid receipt
    // Backend for the geometry checks (per-receipt state query and batched
    // overhead mask). Applied at registration; the default is bit-identical
    // to the historical KeplerianPropagator-only verifier.
    orbit::PropagatorBackend propagator_backend = orbit::PropagatorBackend::kJ2Analytic;
  };

  explicit ProofOfCoverage(Config config) : config_(config) {}

  // Registers a satellite and derives its secret key from the consortium
  // seed; returns the key so the satellite side can answer challenges.
  std::uint64_t register_satellite(const constellation::Satellite& satellite,
                                   std::uint64_t consortium_seed);

  // Registers a verifier site; returns its verifier index.
  std::uint32_t register_verifier(const orbit::Geodetic& site);

  // Satellite side: answers a challenge (requires the satellite's key).
  [[nodiscard]] static CoverageReceipt answer_challenge(
      constellation::SatelliteId satellite, std::uint64_t key, std::uint32_t verifier,
      orbit::TimePoint time, std::uint64_t nonce);

  // Consortium side: full verification (digest + orbital geometry).
  [[nodiscard]] ReceiptVerdict verify(const CoverageReceipt& receipt) const;

  // Challenge-window planning: the grid steps at which `satellite` clears the
  // verifier's horizon, computed through the shared ephemeris kernel (one
  // propagation sweep + the coverage cull) instead of a per-instant state
  // query per candidate challenge. A receipt timestamped at a set step
  // clears the geometry check of verify (up to propagation round-off at the
  // exact mask boundary). Throws on unknown indices.
  [[nodiscard]] cov::StepMask overhead_steps(constellation::SatelliteId satellite,
                                             std::uint32_t verifier,
                                             const orbit::TimeGrid& grid) const;

  // One point of a predicted Doppler track around a claimed contact.
  struct DopplerPoint {
    double offset_s = 0.0;    // relative to the claimed contact time
    double doppler_hz = 0.0;  // predicted shift at the requested carrier
  };

  // RF grounding for the receipt audit: the Doppler curve the shared
  // ephemeris kernel predicts for `satellite` as seen from `verifier`,
  // sampled at `time + offsets_s[i]` on carrier `carrier_hz`. Offsets where
  // the satellite sits below the verifier's horizon contribute no point (a
  // real measurement cannot exist there), so tracks truncate naturally at
  // pass edges. Range-rate goes through cov::range_rate_ecef — the same
  // kernel the coverage Doppler profiles use. Throws on unknown indices.
  [[nodiscard]] std::vector<DopplerPoint> doppler_track(
      constellation::SatelliteId satellite, std::uint32_t verifier,
      orbit::TimePoint time, double carrier_hz,
      std::span<const double> offsets_s) const;

  // Verifies and, if valid, pays the owner account from the treasury through
  // Ledger::credit_receipt, keyed on the receipt's content hash — an
  // identical receipt submitted twice earns once and then verdicts
  // kDuplicate. Returns the verdict; the payment only happens on kValid.
  ReceiptVerdict verify_and_reward(const CoverageReceipt& receipt, Ledger& ledger,
                                   AccountId owner_account) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  // The keyed digest (exposed for tests).
  [[nodiscard]] static std::uint64_t digest(std::uint64_t key,
                                            constellation::SatelliteId satellite,
                                            std::uint32_t verifier, double julian_date,
                                            std::uint64_t nonce) noexcept;

 private:
  struct RegisteredSatellite {
    constellation::Satellite satellite;
    std::uint64_t key = 0;
    // Built once at registration with the configured backend; every geometry
    // check (per-receipt state query or batched overhead mask) reuses it.
    orbit::AnyPropagator propagator;
  };

  [[nodiscard]] const RegisteredSatellite* find(constellation::SatelliteId id) const;

  Config config_;
  std::vector<RegisteredSatellite> satellites_;
  std::vector<orbit::TopocentricFrame> verifiers_;
};

}  // namespace mpleo::core
