// Robustness analysis (§3.4): what happens to coverage when satellites or
// whole parties leave — permanently (withdrawal, Figures 5 and 6) or
// transiently (fault-injection resilience sweeps with recovery).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coverage/engine.hpp"
#include "util/rng.hpp"

namespace mpleo::cov {
class VisibilityCache;
}
namespace mpleo::sim {
class RunContext;
}
namespace mpleo::util {
class ThreadPool;
}

namespace mpleo::core {

struct WithdrawalImpact {
  double before_fraction = 0.0;   // weighted coverage before withdrawal
  double after_fraction = 0.0;    // weighted coverage after withdrawal
  // Absolute drop in weighted coverage fraction, in [0, 1].
  [[nodiscard]] double drop_fraction() const noexcept {
    return before_fraction - after_fraction;
  }
  // Drop relative to the pre-withdrawal coverage (the paper's "% drop in
  // coverage" in Fig. 5), in [0, 1]; 0 when nothing was covered before.
  [[nodiscard]] double relative_drop() const noexcept {
    return before_fraction > 0.0 ? drop_fraction() / before_fraction : 0.0;
  }
};

// Eagerly fills `cache` with every satellite's masks before a Monte-Carlo
// withdrawal sweep, in parallel across satellites when a pool is given.
// The parallel fill is bit-identical to the lazy serial one; after this,
// withdrawal_impact calls are pure mask arithmetic.
void prepare_cache(cov::VisibilityCache& cache, util::ThreadPool* pool = nullptr);

// RunContext entry point: pool and metrics from the context (see
// VisibilityCache::precompute_all(context)).
void prepare_cache(cov::VisibilityCache& cache, sim::RunContext& context);

// Coverage impact of removing `withdrawn` (indices into the cache's catalog)
// from `base` (ditto). `withdrawn` must be a subset of `base`.
[[nodiscard]] WithdrawalImpact withdrawal_impact(cov::VisibilityCache& cache,
                                                 std::span<const std::size_t> base,
                                                 std::span<const std::size_t> withdrawn);

// Splits `total` satellites across 1 + others parties with the paper's Fig-6
// ratio scheme r:1:...:1 — the first (largest) party receives r shares, each
// of the `others` parties one share. Sizes sum exactly to `total` (remainder
// distributed to the largest party).
[[nodiscard]] std::vector<std::size_t> partition_by_ratio(std::size_t total, std::size_t ratio,
                                                          std::size_t others);

// Assigns `indices` (already sampled) to parties with the given sizes, in
// order; returns per-party index lists. sum(sizes) must equal indices.size().
[[nodiscard]] std::vector<std::vector<std::size_t>> assign_to_parties(
    std::span<const std::size_t> indices, std::span<const std::size_t> sizes);

// Transient-failure Monte-Carlo sweep: instead of withdrawing satellites
// forever, satellites fail at a Poisson rate and come back after an
// exponential repair time, turning Fig-5's two-point before/after analysis
// into MTBF/MTTR resilience curves.
struct ResilienceConfig {
  // Sweep axis: per-satellite failure initiations per day.
  std::vector<double> failure_rates_per_sat_day = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0};
  double mttr_seconds = 6.0 * 3600.0;  // mean repair duration
  std::size_t runs = 10;
  std::uint64_t seed = 42;
};

struct ResiliencePoint {
  double failure_rate_per_sat_day = 0.0;
  double mttr_seconds = 0.0;
  // Weighted coverage fraction under faults, averaged over runs.
  double mean_coverage_fraction = 0.0;
  // Coverage retained relative to the fault-free baseline, in [0, 1].
  double mean_served_fraction = 0.0;
  // Mean over runs of the worst per-site continuous outage.
  double mean_worst_gap_seconds = 0.0;
};

// Sweeps coverage vs failure rate for the given satellite set (indices into
// the cache's catalog), pooled across Monte-Carlo runs when a pool is given
// (the cache is precomputed first; results are deterministic for a given
// seed regardless of thread count). Failure candidates are drawn once per
// run at the envelope (maximum) rate and thinned per sweep point — common
// random numbers — so within every run the outage set grows with the rate
// and the served fraction is monotonically non-increasing by construction,
// not merely in expectation. Points come back in config order.
[[nodiscard]] std::vector<ResiliencePoint> resilience_sweep(
    cov::VisibilityCache& cache, std::span<const std::size_t> satellite_indices,
    const ResilienceConfig& config, util::ThreadPool* pool = nullptr);

// RunContext entry point: pool from the context; sweep time and point/run
// counts land in context.metrics() under "resilience.". Bit-identical to
// the pool overload for any context.
[[nodiscard]] std::vector<ResiliencePoint> resilience_sweep(
    cov::VisibilityCache& cache, std::span<const std::size_t> satellite_indices,
    const ResilienceConfig& config, sim::RunContext& context);

}  // namespace mpleo::core
