// Robustness analysis (§3.4): what happens to coverage when satellites or
// whole parties leave. Drives Figures 5 and 6.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "coverage/engine.hpp"
#include "util/rng.hpp"

namespace mpleo::cov {
class VisibilityCache;
}
namespace mpleo::util {
class ThreadPool;
}

namespace mpleo::core {

struct WithdrawalImpact {
  double before_fraction = 0.0;   // weighted coverage before withdrawal
  double after_fraction = 0.0;    // weighted coverage after withdrawal
  // Absolute drop in weighted coverage fraction, in [0, 1].
  [[nodiscard]] double drop_fraction() const noexcept {
    return before_fraction - after_fraction;
  }
  // Drop relative to the pre-withdrawal coverage (the paper's "% drop in
  // coverage" in Fig. 5), in [0, 1]; 0 when nothing was covered before.
  [[nodiscard]] double relative_drop() const noexcept {
    return before_fraction > 0.0 ? drop_fraction() / before_fraction : 0.0;
  }
};

// Eagerly fills `cache` with every satellite's masks before a Monte-Carlo
// withdrawal sweep, in parallel across satellites when a pool is given.
// The parallel fill is bit-identical to the lazy serial one; after this,
// withdrawal_impact calls are pure mask arithmetic.
void prepare_cache(cov::VisibilityCache& cache, util::ThreadPool* pool = nullptr);

// Coverage impact of removing `withdrawn` (indices into the cache's catalog)
// from `base` (ditto). `withdrawn` must be a subset of `base`.
[[nodiscard]] WithdrawalImpact withdrawal_impact(cov::VisibilityCache& cache,
                                                 std::span<const std::size_t> base,
                                                 std::span<const std::size_t> withdrawn);

// Splits `total` satellites across 1 + others parties with the paper's Fig-6
// ratio scheme r:1:...:1 — the first (largest) party receives r shares, each
// of the `others` parties one share. Sizes sum exactly to `total` (remainder
// distributed to the largest party).
[[nodiscard]] std::vector<std::size_t> partition_by_ratio(std::size_t total, std::size_t ratio,
                                                          std::size_t others);

// Assigns `indices` (already sampled) to parties with the given sizes, in
// order; returns per-party index lists. sum(sizes) must equal indices.size().
[[nodiscard]] std::vector<std::vector<std::size_t>> assign_to_parties(
    std::span<const std::size_t> indices, std::span<const std::size_t> sizes);

}  // namespace mpleo::core
