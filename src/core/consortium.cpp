#include "core/consortium.hpp"

#include <stdexcept>

#include "core/validation.hpp"

namespace mpleo::core {

const char* to_string(PartyStatus status) noexcept {
  switch (status) {
    case PartyStatus::kActive: return "active";
    case PartyStatus::kQuarantined: return "quarantined";
    case PartyStatus::kWithdrawn: return "withdrawn";
  }
  return "?";
}

PartyId Consortium::add_party(Party party) {
  const auto id = static_cast<PartyId>(parties_.size());
  party.id = id;
  party.active = true;
  parties_.push_back(std::move(party));
  statuses_.push_back(PartyStatus::kActive);
  return id;
}

std::vector<constellation::SatelliteId> Consortium::contribute(
    PartyId party, std::vector<constellation::Satellite> satellites) {
  if (party >= parties_.size()) {
    throw std::out_of_range("Consortium::contribute: unknown party");
  }
  if (!parties_[party].active) {
    throw std::logic_error("Consortium::contribute: party has withdrawn");
  }
  std::vector<constellation::SatelliteId> ids;
  ids.reserve(satellites.size());
  for (constellation::Satellite& sat : satellites) {
    sat.id = next_satellite_id_++;
    sat.owner_party = party;
    ids.push_back(sat.id);
    members_.push_back({std::move(sat), true});
  }
  return ids;
}

std::size_t Consortium::withdraw_party(PartyId party) {
  if (party >= parties_.size()) {
    throw std::out_of_range("Consortium::withdraw_party: unknown party");
  }
  std::size_t removed = 0;
  for (Member& member : members_) {
    if (member.active && member.satellite.owner_party == party) {
      member.active = false;
      ++removed;
    }
  }
  parties_[party].active = false;
  statuses_[party] = PartyStatus::kWithdrawn;
  return removed;
}

void Consortium::quarantine_party(PartyId party) {
  if (party >= parties_.size()) {
    throw std::out_of_range("Consortium::quarantine_party: unknown party");
  }
  if (statuses_[party] == PartyStatus::kWithdrawn) {
    throw std::logic_error("Consortium::quarantine_party: party has withdrawn");
  }
  statuses_[party] = PartyStatus::kQuarantined;
}

void Consortium::reinstate_party(PartyId party) {
  if (party >= parties_.size()) {
    throw std::out_of_range("Consortium::reinstate_party: unknown party");
  }
  if (statuses_[party] != PartyStatus::kQuarantined) {
    throw std::logic_error("Consortium::reinstate_party: party is not quarantined");
  }
  statuses_[party] = PartyStatus::kActive;
}

PartyStatus Consortium::party_status(PartyId party) const {
  if (party >= parties_.size()) {
    throw std::out_of_range("Consortium::party_status: unknown party");
  }
  return statuses_[party];
}

std::vector<std::uint8_t> Consortium::spare_exclusion_mask() const {
  std::vector<std::uint8_t> mask(parties_.size(), 0);
  for (std::size_t p = 0; p < statuses_.size(); ++p) {
    if (statuses_[p] != PartyStatus::kActive) mask[p] = 1;
  }
  return mask;
}

double Consortium::slash_amount(double stake_balance, double fraction) {
  require_non_negative(stake_balance, "stake_balance");
  require_fraction(fraction, "slash_fraction");
  return stake_balance * fraction;
}

bool Consortium::fail_satellite(constellation::SatelliteId satellite) {
  for (Member& member : members_) {
    if (member.satellite.id == satellite) {
      if (!member.active) return false;
      member.active = false;
      return true;
    }
  }
  return false;
}

std::size_t Consortium::active_party_count() const noexcept {
  std::size_t n = 0;
  for (const Party& p : parties_) {
    if (p.active) ++n;
  }
  return n;
}

std::vector<constellation::Satellite> Consortium::active_satellites() const {
  std::vector<constellation::Satellite> out;
  out.reserve(members_.size());
  for (const Member& member : members_) {
    if (member.active) out.push_back(member.satellite);
  }
  return out;
}

std::vector<constellation::Satellite> Consortium::party_satellites(PartyId party) const {
  std::vector<constellation::Satellite> out;
  for (const Member& member : members_) {
    if (member.active && member.satellite.owner_party == party) {
      out.push_back(member.satellite);
    }
  }
  return out;
}

std::size_t Consortium::active_satellite_count() const noexcept {
  std::size_t n = 0;
  for (const Member& member : members_) {
    if (member.active) ++n;
  }
  return n;
}

std::size_t Consortium::party_satellite_count(PartyId party) const noexcept {
  std::size_t n = 0;
  for (const Member& member : members_) {
    if (member.active && member.satellite.owner_party == party) ++n;
  }
  return n;
}

double Consortium::stake(PartyId party) const noexcept {
  const std::size_t total = active_satellite_count();
  if (total == 0 || party >= parties_.size()) return 0.0;
  return static_cast<double>(party_satellite_count(party)) / static_cast<double>(total);
}

PartyId Consortium::largest_party() const noexcept {
  PartyId best = kInvalidParty;
  std::size_t best_count = 0;
  for (const Party& p : parties_) {
    if (!p.active) continue;
    const std::size_t count = party_satellite_count(p.id);
    if (count > best_count) {
      best_count = count;
      best = p.id;
    }
  }
  return best;
}

}  // namespace mpleo::core
