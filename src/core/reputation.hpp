// Reputation: the consortium's memory of good behavior (§3.2's "what
// constitutes good behavior" and the §1 requirement that parties cannot
// "deny service to others while continuing to benefit").
//
// Scores move on evidence: verified proof-of-coverage receipts and healthy
// reciprocity raise them; forged receipts and free-riding lower them —
// asymmetrically, so trust is slow to build and fast to lose. The score maps
// to a service-priority weight the scheduler layer can apply to spare
// capacity contention.
#pragma once

#include <cstddef>
#include <vector>

#include "core/party.hpp"

namespace mpleo::core {

class ReputationTracker {
 public:
  struct Config {
    double initial = 0.5;
    double poc_gain = 0.02;        // per verified receipt
    double poc_penalty = 0.10;     // per forged/failed receipt
    double reciprocity_gain = 0.05;   // per epoch with ratio >= good_ratio
    double reciprocity_penalty = 0.08;  // per epoch flagged as free riding
    // Per audit-confirmed fraudulent receipt / SLA misreport (see
    // adversary::ReceiptAuditor). Heavier than a merely failed receipt:
    // confirmed forgery is intent, not noise.
    double fraud_penalty = 0.20;
    // Per hour of a party's assets being down (fault::FaultTimeline outage
    // records). Asymmetric like the rest: uptime earns nothing, downtime
    // erodes trust.
    double outage_penalty_per_hour = 0.005;
    double good_ratio = 0.5;
    double floor = 0.0;
    double ceiling = 1.0;
  };

  explicit ReputationTracker(std::size_t party_count)
      : ReputationTracker(party_count, Config{}) {}
  ReputationTracker(std::size_t party_count, Config config);

  void record_poc(PartyId party, bool valid);
  // Feed `count` audit-confirmed fraud events (forged/inflated receipts,
  // SLA misreports) for one party. Zero count is a no-op.
  void record_fraud(PartyId party, std::size_t count);
  // Feed an epoch's provided/consumed ratio (see core::Reciprocity::ratio()).
  void record_reciprocity(PartyId party, double ratio);
  // Feed an epoch's accumulated asset downtime for one party (e.g. one
  // entry of fault::FaultTimeline::outage_seconds_by_party). Zero seconds
  // is a no-op. Precondition: outage_seconds >= 0.
  void record_outage(PartyId party, double outage_seconds);

  [[nodiscard]] double score(PartyId party) const;
  // Spare-capacity priority weight in [0.1, 1]: parties never starve
  // entirely (degradation proportional, not punitive blackout).
  [[nodiscard]] double priority_weight(PartyId party) const;
  [[nodiscard]] std::size_t party_count() const noexcept { return scores_.size(); }

 private:
  Config config_;
  std::vector<double> scores_;
};

}  // namespace mpleo::core
