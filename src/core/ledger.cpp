#include "core/ledger.hpp"

#include <algorithm>
#include <cassert>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mpleo::core {

Ledger::Ledger() {
  balances_.push_back(0.0);
  names_.push_back("treasury");
}

AccountId Ledger::open_account(std::string name) {
  const auto id = static_cast<AccountId>(balances_.size());
  balances_.push_back(0.0);
  names_.push_back(std::move(name));
  return id;
}

void Ledger::mint(double amount, const std::string& memo) {
  if (amount < 0.0) throw std::invalid_argument("Ledger::mint: negative amount");
  balances_[kTreasury] += amount;
  minted_ += amount;
  entries_.push_back({next_sequence_++, kTreasury, kTreasury, amount, memo});
  assert(sum_of_balances() <= minted_ + 1e-9);
}

bool Ledger::transfer(AccountId from, AccountId to, double amount, std::string memo) {
  if (amount < 0.0) throw std::invalid_argument("Ledger::transfer: negative amount");
  if (from >= balances_.size() || to >= balances_.size()) return false;
  if (balances_[from] + 1e-12 < amount) return false;
  balances_[from] -= amount;
  balances_[to] += amount;
  entries_.push_back({next_sequence_++, from, to, amount, std::move(memo)});
  return true;
}

bool Ledger::reward(AccountId to, double amount, std::string memo) {
  return transfer(kTreasury, to, amount, std::move(memo));
}

bool Ledger::credit_receipt(AccountId to, double amount, std::uint64_t receipt_hash,
                            std::string memo) {
  if (!credited_receipts_.insert(receipt_hash).second) return false;
  // Same payout semantics as verify_and_reward always had: an empty treasury
  // fails the transfer but the receipt stays consumed.
  (void)transfer(kTreasury, to, amount, std::move(memo));
  return true;
}

double Ledger::balance(AccountId account) const {
  if (account >= balances_.size()) throw std::out_of_range("Ledger::balance: unknown account");
  return balances_[account];
}

double Ledger::sum_of_balances() const noexcept {
  double sum = 0.0;
  for (double b : balances_) sum += b;
  return sum;
}

const std::string& Ledger::account_name(AccountId account) const {
  if (account >= names_.size()) {
    throw std::out_of_range("Ledger::account_name: unknown account");
  }
  return names_[account];
}

namespace {

// Hexfloat formatting round-trips doubles exactly; names and memos are
// rest-of-line so they may contain spaces (but not newlines).
void put_double(std::ostream& out, double value) {
  std::ostringstream os;
  os << std::hexfloat << value;
  out << os.str();
}

double get_double(std::istream& in, const char* what) {
  std::string token;
  if (!(in >> token)) {
    throw std::invalid_argument(std::string("Ledger::deserialize: missing ") + what);
  }
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) throw std::invalid_argument(token);
    return value;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("Ledger::deserialize: bad ") + what + ": " +
                                token);
  }
}

std::uint64_t get_u64(std::istream& in, const char* what) {
  std::uint64_t value = 0;
  if (!(in >> value)) {
    throw std::invalid_argument(std::string("Ledger::deserialize: bad ") + what);
  }
  return value;
}

std::string get_rest_of_line(std::istream& in) {
  std::string rest;
  std::getline(in, rest);
  if (!rest.empty() && rest.front() == ' ') rest.erase(rest.begin());
  return rest;
}

void expect_keyword(std::istream& in, const char* keyword) {
  std::string token;
  if (!(in >> token) || token != keyword) {
    throw std::invalid_argument(std::string("Ledger::deserialize: expected '") + keyword +
                                "', got '" + token + "'");
  }
}

}  // namespace

void Ledger::serialize(std::ostream& out) const {
  out << "mpleo-ledger v1\n";
  out << "minted ";
  put_double(out, minted_);
  out << "\nnext_sequence " << next_sequence_ << '\n';
  out << "accounts " << balances_.size() << '\n';
  for (std::size_t i = 0; i < balances_.size(); ++i) {
    out << "account " << i << ' ';
    put_double(out, balances_[i]);
    out << ' ' << names_[i] << '\n';
  }
  out << "entries " << entries_.size() << '\n';
  for (const LedgerEntry& e : entries_) {
    out << "entry " << e.sequence << ' ' << e.from << ' ' << e.to << ' ';
    put_double(out, e.amount);
    out << ' ' << e.memo << '\n';
  }
  // Sorted so serialization is deterministic regardless of insertion order.
  std::vector<std::uint64_t> credited(credited_receipts_.begin(), credited_receipts_.end());
  std::sort(credited.begin(), credited.end());
  out << "credited " << credited.size() << '\n';
  for (const std::uint64_t hash : credited) out << hash << '\n';
}

Ledger Ledger::deserialize(std::istream& in) {
  std::string header;
  std::getline(in, header);
  if (header != "mpleo-ledger v1") {
    throw std::invalid_argument("Ledger::deserialize: bad header: " + header);
  }
  Ledger ledger;
  ledger.balances_.clear();
  ledger.names_.clear();

  expect_keyword(in, "minted");
  ledger.minted_ = get_double(in, "minted");
  expect_keyword(in, "next_sequence");
  ledger.next_sequence_ = get_u64(in, "next_sequence");

  expect_keyword(in, "accounts");
  const std::uint64_t account_count = get_u64(in, "account count");
  for (std::uint64_t i = 0; i < account_count; ++i) {
    expect_keyword(in, "account");
    const std::uint64_t index = get_u64(in, "account index");
    if (index != i) throw std::invalid_argument("Ledger::deserialize: account order");
    const double balance = get_double(in, "balance");
    ledger.balances_.push_back(balance);
    ledger.names_.push_back(get_rest_of_line(in));
  }
  if (ledger.balances_.empty()) {
    throw std::invalid_argument("Ledger::deserialize: no treasury account");
  }

  expect_keyword(in, "entries");
  const std::uint64_t entry_count = get_u64(in, "entry count");
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    expect_keyword(in, "entry");
    LedgerEntry entry;
    entry.sequence = get_u64(in, "sequence");
    entry.from = static_cast<AccountId>(get_u64(in, "from"));
    entry.to = static_cast<AccountId>(get_u64(in, "to"));
    entry.amount = get_double(in, "amount");
    entry.memo = get_rest_of_line(in);
    ledger.entries_.push_back(std::move(entry));
  }

  expect_keyword(in, "credited");
  const std::uint64_t credited_count = get_u64(in, "credited count");
  for (std::uint64_t i = 0; i < credited_count; ++i) {
    ledger.credited_receipts_.insert(get_u64(in, "credited hash"));
  }
  return ledger;
}

}  // namespace mpleo::core
