#include "core/ledger.hpp"

#include <cassert>
#include <stdexcept>

namespace mpleo::core {

Ledger::Ledger() {
  balances_.push_back(0.0);
  names_.push_back("treasury");
}

AccountId Ledger::open_account(std::string name) {
  const auto id = static_cast<AccountId>(balances_.size());
  balances_.push_back(0.0);
  names_.push_back(std::move(name));
  return id;
}

void Ledger::mint(double amount, const std::string& memo) {
  if (amount < 0.0) throw std::invalid_argument("Ledger::mint: negative amount");
  balances_[kTreasury] += amount;
  minted_ += amount;
  entries_.push_back({next_sequence_++, kTreasury, kTreasury, amount, memo});
  assert(sum_of_balances() <= minted_ + 1e-9);
}

bool Ledger::transfer(AccountId from, AccountId to, double amount, std::string memo) {
  if (amount < 0.0) throw std::invalid_argument("Ledger::transfer: negative amount");
  if (from >= balances_.size() || to >= balances_.size()) return false;
  if (balances_[from] + 1e-12 < amount) return false;
  balances_[from] -= amount;
  balances_[to] += amount;
  entries_.push_back({next_sequence_++, from, to, amount, std::move(memo)});
  return true;
}

bool Ledger::reward(AccountId to, double amount, std::string memo) {
  return transfer(kTreasury, to, amount, std::move(memo));
}

double Ledger::balance(AccountId account) const {
  if (account >= balances_.size()) throw std::out_of_range("Ledger::balance: unknown account");
  return balances_[account];
}

double Ledger::sum_of_balances() const noexcept {
  double sum = 0.0;
  for (double b : balances_) sum += b;
  return sum;
}

const std::string& Ledger::account_name(AccountId account) const {
  if (account >= names_.size()) {
    throw std::out_of_range("Ledger::account_name: unknown account");
  }
  return names_[account];
}

}  // namespace mpleo::core
