// The consortium: membership, satellite contributions, stakes, withdrawal
// and failure semantics of an MP-LEO constellation.
//
// Key properties the paper demands (§3):
//  * no single party can shut the constellation down — a withdrawal only
//    removes that party's satellites;
//  * degradation is proportional to the withdrawing party's stake;
//  * satellite failures are handled identically to single-sat withdrawals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "constellation/shell.hpp"
#include "core/party.hpp"

namespace mpleo::core {

// Membership standing of a party. Quarantine (confirmed misbehavior, see
// adversary::QuarantineManager) keeps the party's satellites serving its own
// terminals but bars it from the spare-capacity commons until reinstated;
// withdrawal (voluntary or expulsion) removes its satellites entirely.
enum class PartyStatus : std::uint8_t {
  kActive,
  kQuarantined,
  kWithdrawn,
};

[[nodiscard]] const char* to_string(PartyStatus status) noexcept;

class Consortium {
 public:
  // Registers a party; returns its index (== Party::id assigned here).
  PartyId add_party(Party party);

  // Contributes satellites on behalf of `party`; ownership is stamped onto
  // each satellite. Returns the satellite ids as registered.
  std::vector<constellation::SatelliteId> contribute(
      PartyId party, std::vector<constellation::Satellite> satellites);

  // Withdraws a party: marks it inactive and removes its satellites from the
  // active set. Returns the number of satellites removed. Idempotent.
  std::size_t withdraw_party(PartyId party);

  // Marks a single satellite failed (removed from the active set).
  // Returns false if the id is unknown or already failed.
  bool fail_satellite(constellation::SatelliteId satellite);

  [[nodiscard]] const std::vector<Party>& parties() const noexcept { return parties_; }
  [[nodiscard]] std::size_t active_party_count() const noexcept;

  // All currently active satellites (order stable across calls).
  [[nodiscard]] std::vector<constellation::Satellite> active_satellites() const;
  // Active satellites of one party.
  [[nodiscard]] std::vector<constellation::Satellite> party_satellites(PartyId party) const;

  [[nodiscard]] std::size_t active_satellite_count() const noexcept;
  [[nodiscard]] std::size_t party_satellite_count(PartyId party) const noexcept;

  // Quarantine semantics: the party stays a member (its satellites keep
  // serving its own terminals) but its standing drops to kQuarantined until
  // reinstated. Quarantining a withdrawn party or reinstating a
  // non-quarantined one throws std::logic_error; quarantining an already
  // quarantined party is idempotent.
  void quarantine_party(PartyId party);
  void reinstate_party(PartyId party);
  [[nodiscard]] PartyStatus party_status(PartyId party) const;
  // Byte-per-party mask (1 = quarantined or withdrawn), sized to parties():
  // the exclusion vector the scheduler/market spare paths consume directly.
  [[nodiscard]] std::vector<std::uint8_t> spare_exclusion_mask() const;

  // Stake slashing arithmetic with structured validation: negative stakes
  // and out-of-range fractions raise core::ValidationError (field + value)
  // instead of being silently clamped.
  [[nodiscard]] static double slash_amount(double stake_balance, double fraction);

  // Stake = party's active satellites / all active satellites, in [0, 1].
  // The paper's proportional-degradation guarantee is expressed against this.
  [[nodiscard]] double stake(PartyId party) const noexcept;

  // Largest party by active satellite count; kInvalidParty when empty.
  static constexpr PartyId kInvalidParty = 0xFFFFFFFFu;
  [[nodiscard]] PartyId largest_party() const noexcept;

 private:
  struct Member {
    constellation::Satellite satellite;
    bool active = true;
  };
  std::vector<Party> parties_;
  std::vector<PartyStatus> statuses_;  // parallel to parties_
  std::vector<Member> members_;
  constellation::SatelliteId next_satellite_id_ = 0;
};

}  // namespace mpleo::core
