#include "core/placement.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/thread_pool.hpp"

namespace mpleo::core {

PlacementOptimizer::PlacementOptimizer(const cov::CoverageEngine& engine,
                                       std::span<const cov::GroundSite> sites)
    : engine_(&engine), sites_(sites.begin(), sites.end()) {
  double total = 0.0;
  for (const cov::GroundSite& site : sites_) total += site.weight;
  weights_.reserve(sites_.size());
  for (const cov::GroundSite& site : sites_) {
    weights_.push_back(total > 0.0 ? site.weight / total : 0.0);
  }
}

std::vector<cov::StepMask> PlacementOptimizer::union_masks(
    std::span<const constellation::Satellite> satellites) const {
  std::vector<cov::StepMask> unions(sites_.size(),
                                    cov::StepMask(engine_->grid().count));
  for (const constellation::Satellite& sat : satellites) {
    const std::vector<cov::StepMask> per_site = engine_->visibility_masks(sat, sites_);
    for (std::size_t j = 0; j < sites_.size(); ++j) unions[j] |= per_site[j];
  }
  return unions;
}

double PlacementOptimizer::marginal_gain_seconds(
    std::span<const constellation::Satellite> base,
    const orbit::ClassicalElements& candidate, orbit::TimePoint candidate_epoch) const {
  const std::vector<cov::StepMask> base_masks = union_masks(base);

  constellation::Satellite probe;
  probe.name = "CANDIDATE";
  probe.elements = candidate;
  probe.epoch = candidate_epoch;
  const std::vector<cov::StepMask> probe_masks = engine_->visibility_masks(probe, sites_);

  const double window = engine_->grid().duration_seconds();
  double gain = 0.0;
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    cov::StepMask fresh = probe_masks[j];
    fresh.subtract(base_masks[j]);  // only time not already covered counts
    gain += weights_[j] * fresh.fraction() * window;
  }
  return gain;
}

std::vector<PlacementEvaluation> PlacementOptimizer::evaluate(
    std::span<const constellation::Satellite> base,
    std::span<const constellation::CandidateSlot> candidates,
    orbit::TimePoint candidate_epoch) const {
  const std::vector<cov::StepMask> base_masks = union_masks(base);
  const double window = engine_->grid().duration_seconds();

  double base_weighted = 0.0;
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    base_weighted += weights_[j] * base_masks[j].fraction() * window;
  }

  std::vector<PlacementEvaluation> evals;
  evals.reserve(candidates.size());
  for (const constellation::CandidateSlot& slot : candidates) {
    constellation::Satellite probe;
    probe.name = slot.label;
    probe.elements = slot.elements;
    probe.epoch = candidate_epoch;
    const std::vector<cov::StepMask> probe_masks = engine_->visibility_masks(probe, sites_);

    double gain = 0.0;
    for (std::size_t j = 0; j < sites_.size(); ++j) {
      cov::StepMask fresh = probe_masks[j];
      fresh.subtract(base_masks[j]);
      gain += weights_[j] * fresh.fraction() * window;
    }
    evals.push_back({slot, base_weighted, gain});
  }
  return evals;
}

std::vector<PlacementEvaluation> PlacementOptimizer::plan_incremental(
    std::vector<constellation::Satellite> base,
    std::span<const constellation::CandidateSlot> candidates,
    orbit::TimePoint candidate_epoch, std::size_t count, util::ThreadPool* pool) const {
  const double window = engine_->grid().duration_seconds();

  // A candidate's masks depend only on its own elements, never on the
  // growing base, so compute them once up front instead of re-propagating
  // every remaining candidate on every greedy round.
  std::vector<std::vector<cov::StepMask>> candidate_masks(candidates.size());
  const auto fill = [&](std::size_t i) {
    constellation::Satellite probe;
    probe.name = candidates[i].label;
    probe.elements = candidates[i].elements;
    probe.epoch = candidate_epoch;
    candidate_masks[i] = engine_->visibility_masks(probe, sites_);
  };
  if (pool != nullptr) {
    pool->parallel_for(candidates.size(), fill);
  } else {
    for (std::size_t i = 0; i < candidates.size(); ++i) fill(i);
  }

  // The base union grows by OR-ing in each pick — bit-identical to
  // recomputing it from scratch with the placed satellites appended.
  std::vector<cov::StepMask> base_masks = union_masks(base);
  std::vector<std::size_t> remaining(candidates.size());
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});

  std::vector<PlacementEvaluation> picks;
  for (std::size_t round = 0; round < count && !remaining.empty(); ++round) {
    double base_weighted = 0.0;
    for (std::size_t j = 0; j < sites_.size(); ++j) {
      base_weighted += weights_[j] * base_masks[j].fraction() * window;
    }

    std::size_t best_pos = 0;
    double best_gain = -std::numeric_limits<double>::infinity();
    for (std::size_t pos = 0; pos < remaining.size(); ++pos) {
      const std::vector<cov::StepMask>& probe_masks = candidate_masks[remaining[pos]];
      double gain = 0.0;
      for (std::size_t j = 0; j < sites_.size(); ++j) {
        cov::StepMask fresh = probe_masks[j];
        fresh.subtract(base_masks[j]);
        gain += weights_[j] * fresh.fraction() * window;
      }
      if (gain > best_gain) {
        best_gain = gain;
        best_pos = pos;
      }
    }

    const std::size_t best_index = remaining[best_pos];
    picks.push_back({candidates[best_index], base_weighted, best_gain});
    for (std::size_t j = 0; j < sites_.size(); ++j) {
      base_masks[j] |= candidate_masks[best_index][j];
    }
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_pos));
  }
  return picks;
}

}  // namespace mpleo::core
