#include "core/placement.hpp"

#include <algorithm>

namespace mpleo::core {

PlacementOptimizer::PlacementOptimizer(const cov::CoverageEngine& engine,
                                       std::span<const cov::GroundSite> sites)
    : engine_(&engine), sites_(sites.begin(), sites.end()) {
  double total = 0.0;
  for (const cov::GroundSite& site : sites_) total += site.weight;
  weights_.reserve(sites_.size());
  for (const cov::GroundSite& site : sites_) {
    weights_.push_back(total > 0.0 ? site.weight / total : 0.0);
  }
}

std::vector<cov::StepMask> PlacementOptimizer::union_masks(
    std::span<const constellation::Satellite> satellites) const {
  std::vector<cov::StepMask> unions(sites_.size(),
                                    cov::StepMask(engine_->grid().count));
  for (const constellation::Satellite& sat : satellites) {
    const std::vector<cov::StepMask> per_site = engine_->visibility_masks(sat, sites_);
    for (std::size_t j = 0; j < sites_.size(); ++j) unions[j] |= per_site[j];
  }
  return unions;
}

double PlacementOptimizer::marginal_gain_seconds(
    std::span<const constellation::Satellite> base,
    const orbit::ClassicalElements& candidate, orbit::TimePoint candidate_epoch) const {
  const std::vector<cov::StepMask> base_masks = union_masks(base);

  constellation::Satellite probe;
  probe.name = "CANDIDATE";
  probe.elements = candidate;
  probe.epoch = candidate_epoch;
  const std::vector<cov::StepMask> probe_masks = engine_->visibility_masks(probe, sites_);

  const double window = engine_->grid().duration_seconds();
  double gain = 0.0;
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    cov::StepMask fresh = probe_masks[j];
    fresh.subtract(base_masks[j]);  // only time not already covered counts
    gain += weights_[j] * fresh.fraction() * window;
  }
  return gain;
}

std::vector<PlacementEvaluation> PlacementOptimizer::evaluate(
    std::span<const constellation::Satellite> base,
    std::span<const constellation::CandidateSlot> candidates,
    orbit::TimePoint candidate_epoch) const {
  const std::vector<cov::StepMask> base_masks = union_masks(base);
  const double window = engine_->grid().duration_seconds();

  double base_weighted = 0.0;
  for (std::size_t j = 0; j < sites_.size(); ++j) {
    base_weighted += weights_[j] * base_masks[j].fraction() * window;
  }

  std::vector<PlacementEvaluation> evals;
  evals.reserve(candidates.size());
  for (const constellation::CandidateSlot& slot : candidates) {
    constellation::Satellite probe;
    probe.name = slot.label;
    probe.elements = slot.elements;
    probe.epoch = candidate_epoch;
    const std::vector<cov::StepMask> probe_masks = engine_->visibility_masks(probe, sites_);

    double gain = 0.0;
    for (std::size_t j = 0; j < sites_.size(); ++j) {
      cov::StepMask fresh = probe_masks[j];
      fresh.subtract(base_masks[j]);
      gain += weights_[j] * fresh.fraction() * window;
    }
    evals.push_back({slot, base_weighted, gain});
  }
  return evals;
}

std::vector<PlacementEvaluation> PlacementOptimizer::plan_incremental(
    std::vector<constellation::Satellite> base,
    std::span<const constellation::CandidateSlot> candidates,
    orbit::TimePoint candidate_epoch, std::size_t count) const {
  std::vector<PlacementEvaluation> picks;
  std::vector<constellation::CandidateSlot> remaining(candidates.begin(), candidates.end());

  for (std::size_t round = 0; round < count && !remaining.empty(); ++round) {
    std::vector<PlacementEvaluation> evals =
        evaluate(base, remaining, candidate_epoch);
    const auto best = std::max_element(
        evals.begin(), evals.end(),
        [](const PlacementEvaluation& a, const PlacementEvaluation& b) {
          return a.gained_weighted_seconds < b.gained_weighted_seconds;
        });

    const auto best_index = static_cast<std::size_t>(best - evals.begin());
    picks.push_back(*best);

    constellation::Satellite placed;
    placed.id = static_cast<constellation::SatelliteId>(1'000'000 + round);
    placed.name = best->slot.label;
    placed.elements = best->slot.elements;
    placed.epoch = candidate_epoch;
    base.push_back(std::move(placed));
    remaining.erase(remaining.begin() + static_cast<std::ptrdiff_t>(best_index));
  }
  return picks;
}

}  // namespace mpleo::core
