#include "core/adversary_sweep.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/campaign.hpp"
#include "core/validation.hpp"
#include "coverage/doppler.hpp"
#include "coverage/engine.hpp"
#include "net/ground_station.hpp"
#include "net/terminal.hpp"
#include "obs/metrics.hpp"
#include "sim/run_context.hpp"
#include "sim/scenario.hpp"
#include "util/units.hpp"

namespace mpleo::core {
namespace {

// The synthetic consortium every sweep point re-creates identically: only
// the BehaviorBook differs between points, so any divergence from the f=0
// baseline is attributable to Byzantine behavior, not workload noise.
struct Workload {
  Consortium consortium;
  std::vector<net::Terminal> terminals;
  std::vector<net::GroundStation> stations;
  // All contributed satellites in id order (catalog index == satellite id),
  // owner stamped — the fleet the welfare cache is built over.
  std::vector<constellation::Satellite> catalog;
};

double frac(double x) noexcept { return x - std::floor(x); }

// Low-discrepancy site scatter: golden-ratio increments spread the
// terminals over the habitable band without any RNG (the workload must be
// identical across sweep points and across processes).
orbit::Geodetic terminal_location(std::size_t index) {
  const double lat = -52.0 + 104.0 * frac(0.6180339887498949 * static_cast<double>(index + 1));
  const double lon = -180.0 + 360.0 * frac(0.3819660112501051 * static_cast<double>(index + 1));
  return orbit::Geodetic::from_degrees(lat, lon);
}

Workload build_workload(const AdversarySweepConfig& config, orbit::TimePoint epoch) {
  Workload w;
  for (std::size_t p = 0; p < config.parties; ++p) {
    Party party;
    party.name = "party-" + std::to_string(p);
    const PartyId id = w.consortium.add_party(party);
    (void)w.consortium.contribute(
        id, constellation::single_plane(
                550e3 + 15e3 * static_cast<double>(p), 53.0,
                360.0 * static_cast<double>(p) / static_cast<double>(config.parties),
                static_cast<int>(config.satellites_per_party), epoch,
                7.0 * static_cast<double>(p)));
    for (const constellation::Satellite& sat : w.consortium.party_satellites(id)) {
      w.catalog.push_back(sat);
    }

    for (std::size_t t = 0; t < config.terminals_per_party; ++t) {
      const std::size_t index = p * config.terminals_per_party + t;
      net::Terminal terminal;
      terminal.id = static_cast<net::TerminalId>(index);
      terminal.location = terminal_location(index);
      terminal.owner_party = static_cast<std::uint32_t>(p);
      terminal.radio = net::default_user_terminal();
      w.terminals.push_back(terminal);
    }
    for (std::size_t s = 0; s < config.stations_per_party; ++s) {
      // Each station sits next to one of the party's terminals: bent-pipe
      // service needs both legs up at once, so co-located pairs keep the
      // workload servable.
      const net::Terminal& anchor = w.terminals[p * config.terminals_per_party + s];
      net::GroundStation station;
      station.id = static_cast<net::GroundStationId>(p * config.stations_per_party + s);
      constexpr double kRadToDeg = 57.29577951308232;
      station.location = orbit::Geodetic::from_degrees(
          anchor.location.latitude_rad * kRadToDeg + 0.4,
          anchor.location.longitude_rad * kRadToDeg + 0.4);
      station.owner_party = static_cast<std::uint32_t>(p);
      station.radio = net::default_ground_station();
      w.stations.push_back(station);
    }
  }
  return w;
}

void validate(const AdversarySweepConfig& config) {
  if (config.parties == 0) throw std::invalid_argument("adversary_sweep: parties == 0");
  if (config.satellites_per_party == 0) {
    throw std::invalid_argument("adversary_sweep: satellites_per_party == 0");
  }
  if (config.terminals_per_party == 0) {
    throw std::invalid_argument("adversary_sweep: terminals_per_party == 0");
  }
  if (config.stations_per_party == 0 ||
      config.stations_per_party > config.terminals_per_party) {
    throw std::invalid_argument(
        "adversary_sweep: stations_per_party must be in [1, terminals_per_party]");
  }
  if (config.epochs == 0) throw std::invalid_argument("adversary_sweep: epochs == 0");
  if (!(config.epoch_duration_s > 0.0) || !(config.step_s > 0.0)) {
    throw std::invalid_argument("adversary_sweep: non-positive epoch duration or step");
  }
  require_non_negative(config.service_value_per_hour, "service_value_per_hour");
  require_non_negative(config.intensity, "adversary intensity");
  double previous = 0.0;
  for (const double fraction : config.byzantine_fractions) {
    require_fraction(fraction, "byzantine_fraction");
    if (fraction < previous) {
      throw std::invalid_argument(
          "adversary_sweep: byzantine_fractions must be non-decreasing");
    }
    previous = fraction;
  }
}

}  // namespace

std::vector<AdversarySweepPoint> adversary_sweep(const AdversarySweepConfig& config,
                                                 sim::RunContext& context) {
  validate(config);
  const std::vector<adversary::Behavior> mix =
      config.mix.empty() ? adversary::mix_for_mode(sim::AdversaryMode::kMixed) : config.mix;
  const orbit::TimePoint start = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

  // The honest core: parties still honest at the deepest sweep point. CRN
  // nesting makes this the complement of EVERY point's Byzantine set, so
  // the same sites and the same payoff population are compared across the
  // whole sweep.
  const double deepest =
      config.byzantine_fractions.empty() ? 0.0 : config.byzantine_fractions.back();
  const adversary::BehaviorBook deepest_book =
      adversary::BehaviorBook::sample(config.parties, deepest, mix, config.intensity,
                                      config.receipts_per_epoch, config.seed);
  std::vector<std::uint8_t> honest_core(config.parties, 1);
  for (PartyId p = 0; p < config.parties; ++p) {
    if (!deepest_book.policy(p).honest()) honest_core[p] = 0;
  }

  // Welfare cache: full fleet vs the honest core's terminal sites, on one
  // epoch's grid. Shared by every sweep point (pure mask arithmetic after
  // the precompute).
  const Workload probe = build_workload(config, start);
  std::vector<cov::GroundSite> sites;
  for (const net::Terminal& terminal : probe.terminals) {
    if (honest_core[terminal.owner_party] == 0) continue;
    sites.push_back(cov::GroundSite{"terminal-" + std::to_string(terminal.id),
                                    orbit::TopocentricFrame(terminal.location), 1.0});
  }
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(start, config.epoch_duration_s, config.step_s);
  const cov::CoverageEngine engine(grid, config.elevation_mask_deg);
  cov::VisibilityCache cache(engine, probe.catalog, sites);
  cache.precompute_all(context);

  const double window_hours =
      static_cast<double>(config.epochs) * config.epoch_duration_s / 3600.0;
  // Running union of excluded parties across points. Exclusions are nested
  // per point already (CRN); the union makes the monotonicity of the gated
  // payoff a set-inclusion fact rather than a property to hope for.
  std::vector<std::uint8_t> excluded_union(config.parties, 0);

  std::vector<AdversarySweepPoint> points;
  points.reserve(config.byzantine_fractions.size());
  for (const double fraction : config.byzantine_fractions) {
    Workload w = build_workload(config, start);
    CampaignConfig campaign_config;
    campaign_config.start = start;
    campaign_config.epoch_duration_s = config.epoch_duration_s;
    campaign_config.step_s = config.step_s;
    campaign_config.scheduler.elevation_mask_deg = config.elevation_mask_deg;
    Campaign campaign(std::move(w.consortium), std::move(w.terminals),
                      std::move(w.stations), campaign_config, config.seed);
    campaign.arm_adversaries(
        adversary::BehaviorBook::sample(config.parties, fraction, mix, config.intensity,
                                        config.receipts_per_epoch, config.seed),
        config.audit, config.quarantine);

    AdversarySweepPoint point;
    point.byzantine_fraction = fraction;
    point.byzantine_parties = campaign.behavior_book().byzantine_count();
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
      const EpochReport report = campaign.run_epoch(context);
      if (report.adversary.has_value()) {
        point.fraud_injected +=
            report.adversary->receipts_injected + report.adversary->misreports_injected;
        point.fraud_detected += report.adversary->fraud_detected;
      }
    }

    const adversary::QuarantineManager& quarantine = campaign.quarantine();
    point.quarantined_parties = quarantine.quarantined_count();
    point.expelled_parties = quarantine.expelled_count();
    point.mean_detection_epochs = quarantine.mean_detection_epochs();
    point.total_slashed = quarantine.total_slashed();

    for (PartyId p = 0; p < config.parties; ++p) {
      const bool withholds = campaign.behavior_book().policy(p).withheld_fraction() > 0.0;
      const adversary::TrustState state = quarantine.state(p);
      if (withholds || state == adversary::TrustState::kQuarantined ||
          state == adversary::TrustState::kExpelled) {
        excluded_union[p] = 1;
      }
    }
    std::vector<std::size_t> included;
    included.reserve(probe.catalog.size());
    for (std::size_t si = 0; si < probe.catalog.size(); ++si) {
      if (excluded_union[probe.catalog[si].owner_party] == 0) included.push_back(si);
    }
    point.honest_core_welfare = cache.weighted_coverage_fraction(included);
    point.honest_core_payoff =
        config.service_value_per_hour * point.honest_core_welfare * window_hours;

    double balance_sum = 0.0;
    std::size_t honest_count = 0;
    for (PartyId p = 0; p < config.parties; ++p) {
      if (honest_core[p] == 0) continue;
      balance_sum += campaign.ledger().balance(campaign.account_of(p));
      ++honest_count;
    }
    point.mean_honest_balance =
        honest_count > 0 ? balance_sum / static_cast<double>(honest_count) : 0.0;

    context.metrics().counter("adversary_sweep.points").add(1);
    context.metrics().counter("adversary_sweep.fraud_injected").add(point.fraud_injected);
    context.metrics().counter("adversary_sweep.fraud_detected").add(point.fraud_detected);
    points.push_back(point);
  }
  return points;
}

RfSweepResult rf_adversary_sweep(const AdversarySweepConfig& config,
                                 const RfSweepConfig& rf_config,
                                 sim::RunContext& context) {
  validate(config);
  if (rf_config.doppler_trials == 0) {
    throw std::invalid_argument("rf_adversary_sweep: doppler_trials == 0");
  }
  rf::DopplerAuditConfig doppler = rf_config.doppler;
  doppler.enabled = true;
  rf::throw_if_invalid("rf_adversary_sweep doppler config", doppler.validate());
  rf::throw_if_invalid("rf_adversary_sweep spectrum config",
                       rf_config.spectrum.validate());
  double previous = 0.0;
  for (const double fraction : rf_config.jammer_fractions) {
    require_fraction(fraction, "jammer_fraction");
    if (fraction < previous) {
      throw std::invalid_argument(
          "rf_adversary_sweep: jammer_fractions must be non-decreasing");
    }
    previous = fraction;
  }

  RfSweepResult result;
  const orbit::TimePoint start = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

  // --- Doppler axis: forged vs honest tracks per sophistication level. ---
  // Every trial claims a contact geometry genuinely supports (the insider
  // holds the key and the ephemeris), so the geometric audit passes and only
  // the track fit separates the forger from the honest verifier.
  {
    const Workload w = build_workload(config, start);
    ProofOfCoverage poc{ProofOfCoverage::Config{}};
    std::vector<std::uint64_t> keys;
    keys.reserve(w.catalog.size());
    for (const constellation::Satellite& sat : w.catalog) {
      keys.push_back(poc.register_satellite(sat, config.seed));
    }
    std::vector<std::uint32_t> verifiers;
    verifiers.reserve(w.terminals.size());
    for (const net::Terminal& terminal : w.terminals) {
      verifiers.push_back(poc.register_verifier(terminal.location));
    }
    const orbit::TimeGrid grid =
        orbit::TimeGrid::over_duration(start, config.epoch_duration_s, config.step_s);

    adversary::AuditConfig audit = config.audit;
    audit.doppler = doppler;
    adversary::ReceiptAuditor auditor(audit, config.parties, &context.metrics());
    auditor.set_audit_grid(grid);

    Ledger ledger;
    ledger.mint(1e6, "rf-sweep treasury");
    std::vector<AccountId> accounts;
    accounts.reserve(config.parties);
    for (std::size_t p = 0; p < config.parties; ++p) {
      accounts.push_back(ledger.open_account("party-" + std::to_string(p)));
    }

    // Contact pool: (satellite, verifier, step) claims that verify
    // geometrically AND whose predicted Doppler window is long enough for a
    // conclusive fit — the population the ≥99% detection gate is defined
    // over (shorter windows are inconclusive-accept by design).
    struct Contact {
      std::size_t sat_index = 0;
      std::uint32_t verifier = 0;
      std::size_t step = 0;
      std::vector<double> offsets_s;
      std::vector<double> truth_hz;
      double max_doppler_hz = 0.0;
    };
    const std::vector<double> offsets = doppler.sample_offsets_s();
    std::vector<Contact> pool;
    constexpr std::size_t kPoolTarget = 256;
    for (std::size_t si = 0; si < w.catalog.size() && pool.size() < kPoolTarget; ++si) {
      const constellation::Satellite& sat = w.catalog[si];
      const std::uint32_t verifier = verifiers[si % verifiers.size()];
      const cov::StepMask overhead = poc.overhead_steps(sat.id, verifier, grid);
      for (std::size_t step = 0; step < grid.count && pool.size() < kPoolTarget; ++step) {
        if (!overhead.test(step)) continue;
        const CoverageReceipt probe = ProofOfCoverage::answer_challenge(
            sat.id, keys[si], verifier, grid.at(step), 0);
        if (poc.verify(probe) != ReceiptVerdict::kValid) continue;
        const auto predicted =
            poc.doppler_track(sat.id, verifier, grid.at(step), doppler.carrier_hz, offsets);
        if (predicted.size() < doppler.min_track_samples) continue;
        Contact contact;
        contact.sat_index = si;
        contact.verifier = verifier;
        contact.step = step;
        contact.offsets_s.reserve(predicted.size());
        contact.truth_hz.reserve(predicted.size());
        for (const ProofOfCoverage::DopplerPoint& point : predicted) {
          contact.offsets_s.push_back(point.offset_s);
          contact.truth_hz.push_back(point.doppler_hz);
        }
        contact.max_doppler_hz = cov::max_doppler_bound_hz(
            sat.elements.semi_major_axis_m - util::kEarthMeanRadiusM, doppler.carrier_hz);
        pool.push_back(std::move(contact));
      }
    }
    if (pool.empty()) {
      throw std::logic_error(
          "rf_adversary_sweep: workload has no conclusive contact windows");
    }

    constexpr rf::ForgeryLevel kLevels[] = {
        rf::ForgeryLevel::kFlatTone, rf::ForgeryLevel::kLinearRamp,
        rf::ForgeryLevel::kTimeMirrored, rf::ForgeryLevel::kEphemerisExact};
    util::Xoshiro256PlusPlus rng = util::Xoshiro256PlusPlus(config.seed).split(0xDF01);
    for (const rf::ForgeryLevel level : kLevels) {
      RfDopplerPoint point;
      point.level = level;
      point.gated = rf::detectable(level);
      for (std::size_t trial = 0; trial < rf_config.doppler_trials; ++trial) {
        const Contact& contact = pool[rng.uniform_index(pool.size())];
        const constellation::Satellite& sat = w.catalog[contact.sat_index];
        const PartyId owner = sat.owner_party;
        // Forged claim: fabricated track at the level's sophistication.
        {
          const CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
              sat.id, keys[contact.sat_index], contact.verifier, grid.at(contact.step),
              rng.next());
          rf::DopplerObservation track;
          track.carrier_hz = doppler.carrier_hz;
          track.offsets_s = contact.offsets_s;
          track.doppler_hz =
              rf::forge_doppler_track(level, contact.truth_hz, contact.max_doppler_hz, rng);
          const ReceiptVerdict verdict = auditor.audit_and_credit(
              poc, receipt, owner, ledger, accounts[owner],
              adversary::ReceiptProvenance::kSubmission, &track);
          ++point.forged_submitted;
          if (verdict == ReceiptVerdict::kRfImplausible) ++point.forged_rejected;
        }
        // Honest twin: same contact, true curve plus receiver noise.
        {
          const CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
              sat.id, keys[contact.sat_index], contact.verifier, grid.at(contact.step),
              rng.next());
          rf::DopplerObservation track;
          track.carrier_hz = doppler.carrier_hz;
          track.offsets_s = contact.offsets_s;
          track.doppler_hz = rf::observe_doppler_track(
              contact.truth_hz, doppler.measurement_noise_hz, rng);
          const ReceiptVerdict verdict = auditor.audit_and_credit(
              poc, receipt, owner, ledger, accounts[owner],
              adversary::ReceiptProvenance::kChallenge, &track);
          ++point.honest_submitted;
          if (verdict == ReceiptVerdict::kRfImplausible) ++point.honest_flagged;
        }
      }
      point.detection_rate =
          point.forged_submitted > 0
              ? static_cast<double>(point.forged_rejected) /
                    static_cast<double>(point.forged_submitted)
              : 0.0;
      context.metrics().counter("rf_sweep.forged_submitted").add(point.forged_submitted);
      context.metrics().counter("rf_sweep.forged_rejected").add(point.forged_rejected);
      context.metrics().counter("rf_sweep.honest_flagged").add(point.honest_flagged);
      result.doppler.push_back(std::move(point));
    }
  }

  // --- Jamming axis: one campaign per nested jammer fraction. ---
  for (const double fraction : rf_config.jammer_fractions) {
    Workload w = build_workload(config, start);
    CampaignConfig campaign_config;
    campaign_config.start = start;
    campaign_config.epoch_duration_s = config.epoch_duration_s;
    campaign_config.step_s = config.step_s;
    campaign_config.scheduler.elevation_mask_deg = config.elevation_mask_deg;
    Campaign campaign(std::move(w.consortium), std::move(w.terminals),
                      std::move(w.stations), campaign_config, config.seed);
    const adversary::Behavior jam_mix[] = {adversary::Behavior::kJamming};
    campaign.arm_adversaries(
        adversary::BehaviorBook::sample(config.parties, fraction, jam_mix,
                                        config.intensity, config.receipts_per_epoch,
                                        config.seed),
        config.audit, config.quarantine);
    campaign.arm_rf(rf_config.spectrum);

    RfJammingPoint point;
    point.jammer_fraction = fraction;
    point.jamming_parties = campaign.behavior_book().byzantine_count();
    for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
      const EpochReport report = campaign.run_epoch(context);
      if (!report.adversary.has_value()) continue;
      if (epoch == 0) {
        // Epoch 0 is the welfare probe: quarantine sanctions only bite from
        // the next epoch's scheduling pass, so link selection is identical
        // across fractions and realized/nominal is monotone by construction.
        point.capacity_nominal_bps = report.adversary->rf_nominal_bps;
        point.capacity_realized_bps =
            report.adversary->rf_nominal_bps - report.adversary->rf_capacity_lost_bps;
      }
      point.violations_detected += report.adversary->rf_interference_violations;
    }
    point.honest_welfare = point.capacity_nominal_bps > 0.0
                               ? point.capacity_realized_bps / point.capacity_nominal_bps
                               : 1.0;
    const adversary::QuarantineManager& quarantine = campaign.quarantine();
    point.quarantined_parties = quarantine.quarantined_count();
    point.expelled_parties = quarantine.expelled_count();
    point.total_slashed = quarantine.total_slashed();
    context.metrics().counter("rf_sweep.jamming_points").add(1);
    context.metrics()
        .counter("rf_sweep.violations_detected")
        .add(point.violations_detected);
    result.jamming.push_back(point);
  }
  return result;
}

}  // namespace mpleo::core
