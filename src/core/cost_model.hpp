// Economic cost model for the paper's §1-2 claims: "building fully
// operational LEO networks requires investments between 10-30 billion
// dollars", and "a participant contributing just 50 satellites can get
// coverage worth over 1000 satellites".
//
// Deliberately coarse — unit costs are public-order-of-magnitude figures —
// because the paper's argument is about ratios (sovereign vs shared), which
// are insensitive to the absolute unit cost.
#pragma once

#include <cstddef>

namespace mpleo::core {

struct CostModel {
  // Per-satellite figures (USD). Defaults approximate published smallsat
  // broadband numbers: ~$0.5M build (volume production), ~$1M launch share.
  double satellite_unit_cost = 0.5e6;
  double launch_cost_per_satellite = 1.0e6;
  double ground_station_capex = 0.5e6;
  double annual_opex_per_satellite = 0.1e6;
  double satellite_lifetime_years = 5.0;

  // Total capital expenditure for a constellation of n satellites and g
  // ground stations.
  [[nodiscard]] double constellation_capex(std::size_t satellites,
                                           std::size_t ground_stations) const noexcept;

  // Lifetime total cost (capex + lifetime opex).
  [[nodiscard]] double lifetime_cost(std::size_t satellites,
                                     std::size_t ground_stations) const noexcept;

  // Cost per covered hour over the satellite lifetime, given the average
  // coverage fraction the deployment achieves for its owner.
  // Precondition: covered_fraction in (0, 1].
  [[nodiscard]] double cost_per_covered_hour(std::size_t satellites,
                                             std::size_t ground_stations,
                                             double covered_fraction) const;
};

// The sovereign-vs-shared comparison of §2: party contributes
// `contributed` satellites to a shared constellation that delivers
// `shared_coverage_fraction`, vs going alone with `sovereign_satellites`
// achieving `sovereign_coverage_fraction`.
struct SharingAdvantage {
  double sovereign_lifetime_cost = 0.0;
  double shared_lifetime_cost = 0.0;
  double cost_ratio = 0.0;  // sovereign / shared for comparable coverage
};

[[nodiscard]] SharingAdvantage sharing_advantage(
    const CostModel& model, std::size_t sovereign_satellites,
    std::size_t contributed_satellites, std::size_t ground_stations);

}  // namespace mpleo::core
