#include "core/reputation.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpleo::core {

ReputationTracker::ReputationTracker(std::size_t party_count, Config config)
    : config_(config), scores_(party_count, config.initial) {
  if (party_count == 0) {
    throw std::invalid_argument("ReputationTracker: no parties");
  }
  if (config_.floor > config_.ceiling || config_.initial < config_.floor ||
      config_.initial > config_.ceiling) {
    throw std::invalid_argument("ReputationTracker: inconsistent score bounds");
  }
}

void ReputationTracker::record_poc(PartyId party, bool valid) {
  double& score = scores_.at(party);
  score += valid ? config_.poc_gain : -config_.poc_penalty;
  score = std::clamp(score, config_.floor, config_.ceiling);
}

void ReputationTracker::record_fraud(PartyId party, std::size_t count) {
  if (count == 0) return;
  double& score = scores_.at(party);
  score -= config_.fraud_penalty * static_cast<double>(count);
  score = std::clamp(score, config_.floor, config_.ceiling);
}

void ReputationTracker::record_reciprocity(PartyId party, double ratio) {
  double& score = scores_.at(party);
  score += ratio >= config_.good_ratio ? config_.reciprocity_gain
                                       : -config_.reciprocity_penalty;
  score = std::clamp(score, config_.floor, config_.ceiling);
}

void ReputationTracker::record_outage(PartyId party, double outage_seconds) {
  if (outage_seconds < 0.0) {
    throw std::invalid_argument("ReputationTracker: negative outage seconds");
  }
  double& score = scores_.at(party);
  score -= config_.outage_penalty_per_hour * outage_seconds / 3600.0;
  score = std::clamp(score, config_.floor, config_.ceiling);
}

double ReputationTracker::score(PartyId party) const { return scores_.at(party); }

double ReputationTracker::priority_weight(PartyId party) const {
  return 0.1 + 0.9 * score(party);
}

}  // namespace mpleo::core
