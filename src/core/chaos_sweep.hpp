// Chaos sweep: the decentralization claim under correlated failures (§2,
// §3.4). The same seeded fault::EventBook (common random numbers) is
// compiled against two topologies of EQUAL fleet size — a centralized
// single-party operator owning every satellite, terminal and station, and
// the decentralized multi-party consortium — and each cell replays the
// events through the degradation-policy scheduler, recording the SLO
// metrics (availability, worst-window availability, time-to-recover, grant
// flaps). A party-withdrawal shock is a total network loss for the
// centralized operator but a quarter-fleet loss for the consortium; the
// bench gates decentralized worst-window availability >= centralized on the
// withdrawal-bearing profiles, plus the empty-book identity flag (an empty
// book and a disabled policy must replay bit-identically to the plain
// fault-free run) and a hysteresis A/B flap count on the storm profile.
#pragma once

#include <cstdint>
#include <vector>

#include "core/validation.hpp"
#include "fault/event_book.hpp"
#include "net/degradation.hpp"

namespace mpleo::sim {
class RunContext;
}

namespace mpleo::core {

struct ChaosSweepConfig {
  // Replay window (the event presets scale to it) and scheduler grid.
  double duration_s = 6.0 * 3600.0;
  double step_s = 60.0;
  double elevation_mask_deg = 25.0;
  // Event book seeding: identical for every cell (CRN), so a profile's
  // draws are shared between the centralized and decentralized topologies.
  std::uint64_t event_seed = 2042;
  double event_intensity = 1.0;
  std::vector<fault::EventProfile> profiles = {
      fault::EventProfile::kStorm, fault::EventProfile::kBlackout,
      fault::EventProfile::kWithdrawal, fault::EventProfile::kMixed};
  // Degradation policy applied to every chaos cell (the identity pair always
  // runs with a disabled default policy instead). slo_window_steps is forced
  // over it so every cell reports SLO stats.
  net::DegradationPolicy policy;
  std::size_t slo_window_steps = 30;

  // Component "core.chaos_sweep".
  [[nodiscard]] std::vector<core::ConfigIssue> validate() const;
};

// One (event profile, topology) replay.
struct ChaosCell {
  fault::EventProfile profile = fault::EventProfile::kOff;
  bool decentralized = false;
  net::SloStats slo;
  std::size_t failure_forced_detaches = 0;
  double reacquisition_wait_seconds = 0.0;
  // Summary of slo.recovery_seconds (0 when no terminal ever detached).
  double mean_recovery_s = 0.0;
  double max_recovery_s = 0.0;
};

struct ChaosSweepResult {
  // Cells in config.profiles order, decentralized before centralized.
  std::vector<ChaosCell> cells;
  // Empty book + disabled policy replayed bit-identically (links, step
  // counts, per-party aggregates) to the plain fault-free run.
  bool empty_book_identity = false;
  // Hysteresis A/B on the decentralized storm cell: grant flaps with the
  // sweep policy's spare margin vs the same policy with margin 0.
  std::uint64_t storm_flaps_hysteresis_on = 0;
  std::uint64_t storm_flaps_hysteresis_off = 0;
};

// Replays every profile against both topologies over the reference workload
// (sim::build_workload at reference scale: a 500-satellite Walker shell,
// 200 terminals, 20 stations, 4 parties; the centralized twin is the same
// fleet with every owner collapsed to party 0). The context supplies the
// phase-1 pool and metrics registry ("chaos_sweep." counters); results are
// bit-identical for any pool size. Throws std::invalid_argument (unified
// ConfigIssue report) on malformed config.
[[nodiscard]] ChaosSweepResult chaos_sweep(const ChaosSweepConfig& config,
                                           sim::RunContext& context);

}  // namespace mpleo::core
