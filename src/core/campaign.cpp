#include "core/campaign.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/reputation.hpp"
#include "coverage/doppler.hpp"
#include "coverage/step_mask.hpp"
#include "obs/metrics.hpp"
#include "sim/run_context.hpp"
#include "util/units.hpp"

namespace mpleo::core {

struct Campaign::AdversaryHarness {
  adversary::BehaviorBook book;
  adversary::ReceiptAuditor auditor;
  adversary::QuarantineManager quarantine;
  ReputationTracker reputation;
  // Last receipt the honest spot checks credited per party — the material an
  // inflation attack resubmits for double pay.
  std::vector<std::optional<CoverageReceipt>> recent_valid;
  // Auditor fraud totals at the start of the running epoch, for per-epoch
  // detection deltas in the report.
  std::uint64_t fraud_at_epoch_start = 0;
  std::uint64_t doppler_rejections_at_epoch_start = 0;
  std::uint64_t rf_violations_at_epoch_start = 0;

  // RF layer, present only after Campaign::arm_rf: the spectrum plan carved
  // over the consortium, the interference environment built from the book's
  // jamming/squatting masks, and the Doppler-track sophistication forgers
  // fabricate at.
  struct RfState {
    rf::SpectrumConfig spectrum;
    rf::SpectrumPlan plan;
    rf::InterferenceEnvironment environment;
    rf::ForgeryLevel forgery_level = rf::ForgeryLevel::kFlatTone;
  };
  std::optional<RfState> rf;

  AdversaryHarness(adversary::BehaviorBook b, adversary::AuditConfig audit_config,
                   adversary::QuarantineConfig quarantine_config, std::size_t party_count)
      : book(std::move(b)),
        auditor(audit_config, party_count),
        quarantine(quarantine_config, party_count),
        reputation(party_count),
        recent_valid(party_count) {}
};

Campaign::~Campaign() = default;
Campaign::Campaign(Campaign&&) noexcept = default;
Campaign& Campaign::operator=(Campaign&&) noexcept = default;

void Campaign::arm_adversaries(adversary::BehaviorBook book,
                               adversary::AuditConfig audit_config,
                               adversary::QuarantineConfig quarantine_config) {
  harness_ = std::make_unique<AdversaryHarness>(std::move(book), audit_config,
                                                quarantine_config,
                                                consortium_.parties().size());
}

namespace {
[[noreturn]] void throw_unarmed() {
  throw std::logic_error("Campaign: not armed (call arm_adversaries first)");
}
}  // namespace

void Campaign::arm_rf(rf::SpectrumConfig spectrum, rf::ForgeryLevel forgery_level) {
  if (harness_ == nullptr) throw_unarmed();
  rf::SpectrumPlan plan =
      rf::SpectrumPlan::equal_partition(spectrum, consortium_.parties().size());
  rf::InterferenceEnvironment environment(spectrum, plan,
                                          harness_->book.jamming_mask(),
                                          harness_->book.squatting_mask());
  harness_->rf.emplace(AdversaryHarness::RfState{spectrum, std::move(plan),
                                                 std::move(environment), forgery_level});
}

bool Campaign::rf_armed() const noexcept {
  return harness_ != nullptr && harness_->rf.has_value();
}

const rf::InterferenceEnvironment* Campaign::rf_environment() const noexcept {
  if (harness_ == nullptr || !harness_->rf.has_value()) return nullptr;
  return &harness_->rf->environment;
}

const adversary::BehaviorBook& Campaign::behavior_book() const {
  if (harness_ == nullptr) throw_unarmed();
  return harness_->book;
}
const adversary::ReceiptAuditor& Campaign::auditor() const {
  if (harness_ == nullptr) throw_unarmed();
  return harness_->auditor;
}
const adversary::QuarantineManager& Campaign::quarantine() const {
  if (harness_ == nullptr) throw_unarmed();
  return harness_->quarantine;
}
const ReputationTracker& Campaign::adversary_reputation() const {
  if (harness_ == nullptr) throw_unarmed();
  return harness_->reputation;
}

Campaign::Campaign(Consortium consortium, std::vector<net::Terminal> terminals,
                   std::vector<net::GroundStation> stations, CampaignConfig config,
                   std::uint64_t seed)
    : consortium_(std::move(consortium)),
      terminals_(std::move(terminals)),
      stations_(std::move(stations)),
      config_(config),
      poc_(config.poc),
      rng_(seed),
      clock_(config.start) {
  const std::size_t party_count = consortium_.parties().size();
  if (party_count == 0) throw std::invalid_argument("Campaign: no parties");
  for (const net::Terminal& t : terminals_) {
    if (t.owner_party >= party_count) {
      throw std::invalid_argument("Campaign: terminal owner out of range");
    }
  }
  for (const net::GroundStation& gs : stations_) {
    if (gs.owner_party >= party_count) {
      throw std::invalid_argument("Campaign: station owner out of range");
    }
  }

  // Ledger bootstrap: one account per party, seeded with the grant. The
  // treasury is pre-funded with enough to cover grants; emissions mint more
  // per epoch.
  ledger_.mint(config_.bootstrap_grant * static_cast<double>(party_count),
               "bootstrap funding");
  for (const Party& party : consortium_.parties()) {
    const AccountId account = ledger_.open_account(party.name);
    accounts_.push_back(account);
    if (!ledger_.reward(account, config_.bootstrap_grant, "bootstrap grant")) {
      throw std::logic_error("Campaign: bootstrap grant failed");
    }
  }

  // Register satellites and verifiers for proof-of-coverage.
  for (const constellation::Satellite& sat : consortium_.active_satellites()) {
    satellite_keys_.push_back(poc_.register_satellite(sat, seed));
    registered_satellite_ids_.push_back(sat.id);
  }
  for (const net::Terminal& t : terminals_) {
    verifier_ids_.push_back(poc_.register_verifier(t.location));
  }
}

std::size_t Campaign::withdraw_party(PartyId party) {
  return consortium_.withdraw_party(party);
}

EpochReport Campaign::run_epoch(sim::RunContext& context) {
  return run_epoch_impl(context.pool(), &context);
}

EpochReport Campaign::run_epoch_impl(util::ThreadPool* pool, sim::RunContext* context) {
  obs::ScopedTimer epoch_timer(
      context != nullptr ? context->metrics().histogram("campaign.epoch_seconds")
                         : obs::Histogram{});
  EpochReport report;
  report.epoch = next_epoch_;
  report.window_start = clock_;

  const std::vector<constellation::Satellite> sats = consortium_.active_satellites();
  report.active_satellites = sats.size();
  const std::size_t party_count = consortium_.parties().size();

  // 1. Schedule the epoch.
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(clock_, config_.epoch_duration_s, config_.step_s);
  net::SchedulerConfig scheduler_config = config_.scheduler;
  if (harness_ != nullptr) {
    harness_->auditor.set_metrics(context != nullptr ? &context->metrics() : nullptr);
    harness_->quarantine.set_metrics(context != nullptr ? &context->metrics() : nullptr);
    harness_->auditor.set_audit_grid(grid);
    const adversary::PartyAuditStats audit_totals = harness_->auditor.totals();
    harness_->fraud_at_epoch_start = audit_totals.fraud_total();
    harness_->doppler_rejections_at_epoch_start = audit_totals.rf_doppler_rejections;
    harness_->rf_violations_at_epoch_start = audit_totals.rf_interference_violations;
    // RF: an armed environment with at least one active jammer/squatter feeds
    // the scheduler's post-grant degradation; otherwise the config keeps its
    // null default and the run is bit-identical to the pre-RF scheduler.
    if (harness_->rf.has_value() && harness_->rf->environment.any_interferer()) {
      scheduler_config.rf = &harness_->rf->environment;
    }
    // Spare-commons governance for this epoch: quarantine sanctions from
    // prior epochs and the book's withholding fractions. Both vectors stay
    // absent when all-trivial, so an armed campaign with an empty book runs
    // the scheduler on the exact historical config.
    std::vector<std::uint8_t> exclusion = harness_->quarantine.spare_exclusion();
    if (std::any_of(exclusion.begin(), exclusion.end(),
                    [](std::uint8_t e) { return e != 0; })) {
      scheduler_config.spare_exclude_party = std::move(exclusion);
    }
    std::vector<double> withheld = harness_->book.withheld_fractions(party_count);
    if (std::any_of(withheld.begin(), withheld.end(),
                    [](double f) { return f > 0.0; })) {
      scheduler_config.spare_withheld_fraction = std::move(withheld);
    }
  }
  const net::BentPipeScheduler scheduler(scheduler_config, sats, terminals_, stations_);
  net::ScheduleResult usage =
      context != nullptr
          ? scheduler.run(grid, party_count, *context, /*keep_steps=*/false)
          : scheduler.run(grid, party_count, /*keep_steps=*/false, pool);
  report.total_served_seconds = usage.total_served_seconds;
  report.total_unserved_seconds = usage.total_unserved_seconds;
  report.service_fairness = service_fairness(usage);

  // 2. Settle spare-capacity usage.
  report.settlement = settle(usage, accounts_, config_.settlement, ledger_);

  // 3. Proof-of-coverage spot checks: each party's terminals challenge
  // random registered satellites at random times in the epoch.
  const bool doppler_audit =
      harness_ != nullptr && harness_->auditor.config().doppler.enabled;
  std::vector<double> doppler_offsets;
  std::optional<util::Xoshiro256PlusPlus> doppler_rng;
  if (doppler_audit) {
    doppler_offsets = harness_->auditor.config().doppler.sample_offsets_s();
    // Honest measurement noise draws from a dedicated (book seed, epoch)
    // stream, never from rng_ — the honest challenge schedule stays invariant
    // whether or not the Doppler stage is on.
    doppler_rng.emplace(util::Xoshiro256PlusPlus(harness_->book.seed())
                            .split(0x0DDF)
                            .split(next_epoch_));
  }
  for (std::size_t ti = 0; ti < terminals_.size(); ++ti) {
    for (std::size_t c = 0; c < config_.poc_challenges_per_party_per_epoch; ++c) {
      if (registered_satellite_ids_.empty()) break;
      const std::size_t pick = rng_.uniform_index(registered_satellite_ids_.size());
      const orbit::TimePoint when =
          clock_.plus_seconds(rng_.uniform(0.0, config_.epoch_duration_s));
      const CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
          registered_satellite_ids_[pick], satellite_keys_[pick], verifier_ids_[ti],
          when, rng_.next());
      // Owner lookup: the registration order mirrors active_satellites() at
      // construction; find the owner by id in the consortium.
      std::uint32_t owner = constellation::Satellite::kUnowned;
      for (const constellation::Satellite& sat : sats) {
        if (sat.id == receipt.satellite) {
          owner = sat.owner_party;
          break;
        }
      }
      if (owner == constellation::Satellite::kUnowned) continue;  // withdrawn
      // With the Doppler stage on, the honest verifier also measures the RF
      // track of its own challenge: the ephemeris prediction plus receiver
      // noise, over whatever part of the sample window the pass covers.
      rf::DopplerObservation observation;
      const rf::DopplerObservation* track = nullptr;
      if (doppler_audit) {
        const rf::DopplerAuditConfig& dcfg = harness_->auditor.config().doppler;
        const auto predicted = poc_.doppler_track(receipt.satellite, receipt.verifier,
                                                  receipt.time, dcfg.carrier_hz,
                                                  doppler_offsets);
        observation.carrier_hz = dcfg.carrier_hz;
        std::vector<double> truth;
        observation.offsets_s.reserve(predicted.size());
        truth.reserve(predicted.size());
        for (const auto& point : predicted) {
          observation.offsets_s.push_back(point.offset_s);
          truth.push_back(point.doppler_hz);
        }
        observation.doppler_hz =
            rf::observe_doppler_track(truth, dcfg.measurement_noise_hz, *doppler_rng);
        track = &observation;
      }
      // Armed campaigns route the same credit decision through the audit
      // engine (identical verdicts and ledger entries; the auditor adds the
      // per-party evidence trail the quarantine ladder runs on).
      const ReceiptVerdict verdict =
          harness_ != nullptr
              ? harness_->auditor.audit_and_credit(poc_, receipt, owner, ledger_,
                                                   accounts_[owner],
                                                   adversary::ReceiptProvenance::kChallenge,
                                                   track)
              : poc_.verify_and_reward(receipt, ledger_, accounts_[owner]);
      if (verdict == ReceiptVerdict::kValid) {
        ++report.poc_valid;
        if (harness_ != nullptr) harness_->recent_valid[owner] = receipt;
      } else {
        ++report.poc_rejected;
      }
    }
  }

  // 3b. Byzantine behavior: receipt/SLA injections, then the quarantine
  // ladder converts this epoch's audit evidence into sanctions effective
  // from the next epoch's scheduling pass.
  if (harness_ != nullptr) {
    inject_adversary_behavior(grid, sats, usage, report);
  }

  // 4. Epoch emission, distributed by stake. Parties under sanction
  // (quarantined or expelled) forfeit their share — it stays in the
  // treasury rather than rewarding confirmed misbehavior.
  report.emission_minted = config_.emission.epoch_reward(next_epoch_);
  if (report.emission_minted > 0.0) {
    ledger_.mint(report.emission_minted, "epoch emission");
    for (const Party& party : consortium_.parties()) {
      if (harness_ != nullptr &&
          consortium_.party_status(party.id) != PartyStatus::kActive) {
        continue;
      }
      const double share = consortium_.stake(party.id) * report.emission_minted;
      if (share > 0.0) {
        (void)ledger_.reward(accounts_[party.id], share, "emission by stake");
      }
    }
  }

  report.usage = std::move(usage.per_party);
  report.balances.reserve(party_count);
  for (AccountId account : accounts_) report.balances.push_back(ledger_.balance(account));

  if (context != nullptr) {
    context->metrics().counter("campaign.epochs").add(1);
    context->metrics().counter("campaign.poc_valid").add(report.poc_valid);
    context->metrics().counter("campaign.poc_rejected").add(report.poc_rejected);
    std::ostringstream line;
    line << "epoch " << report.epoch << ": satellites=" << report.active_satellites
         << " served=" << report.total_served_seconds << "s unserved="
         << report.total_unserved_seconds << "s poc=" << report.poc_valid << "/"
         << report.poc_valid + report.poc_rejected << " minted=" << report.emission_minted;
    if (report.adversary.has_value()) {
      context->metrics()
          .counter("campaign.adversary_receipts_injected")
          .add(report.adversary->receipts_injected);
      context->metrics()
          .counter("campaign.adversary_fraud_detected")
          .add(report.adversary->fraud_detected);
      line << " adversary: injected=" << report.adversary->receipts_injected
           << " fraud_detected=" << report.adversary->fraud_detected
           << " quarantined=" << report.adversary->quarantined_parties
           << " expelled=" << report.adversary->expelled_parties;
    }
    context->trace().record(clock_.seconds_since(config_.start), "campaign", line.str());
  }

  clock_ = clock_.plus_seconds(config_.epoch_duration_s);
  ++next_epoch_;
  return report;
}

void Campaign::inject_adversary_behavior(const orbit::TimeGrid& grid,
                                         const std::vector<constellation::Satellite>& sats,
                                         const net::ScheduleResult& usage,
                                         EpochReport& report) {
  AdversaryHarness& h = *harness_;
  AdversaryEpochSummary summary;
  const std::size_t party_count = consortium_.parties().size();

  // RF plan violations attributed by the scheduler's interference accounting
  // become audit evidence before the quarantine ladder runs. Continuous
  // off-plan emission is observable at every victim terminal, so detection
  // within the epoch is a certainty — a boosted jammer yields two independent
  // direction-finding fixes, a quieter squatter one.
  if (usage.rf.has_value()) {
    for (PartyId party = 0;
         party < party_count && party < usage.rf->violation_inr_by_party.size();
         ++party) {
      const double inr = usage.rf->violation_inr_by_party[party];
      if (inr <= 0.0) continue;
      const bool jams = h.rf.has_value() && h.rf->environment.jams(party);
      h.auditor.record_interference_violations(party, jams ? 2 : 1, inr);
    }
    summary.rf_nominal_bps = usage.rf->nominal_bps_total;
    summary.rf_capacity_lost_bps =
        usage.rf->nominal_bps_total - usage.rf->realized_bps_total;
  }

  // Registration indices (into satellite_keys_) of each party's still-active
  // satellites: the keys an insider forger actually holds.
  std::vector<std::vector<std::size_t>> party_regs(party_count);
  for (std::size_t ri = 0; ri < registered_satellite_ids_.size(); ++ri) {
    for (const constellation::Satellite& sat : sats) {
      if (sat.id == registered_satellite_ids_[ri]) {
        if (sat.owner_party < party_count) party_regs[sat.owner_party].push_back(ri);
        break;
      }
    }
  }

  for (PartyId party = 0; party < party_count; ++party) {
    const adversary::PartyPolicy& policy = h.book.policy(party);
    if (policy.honest()) continue;
    if (consortium_.party_status(party) == PartyStatus::kWithdrawn) continue;
    // Behavior randomness comes from the book's (seed, party, epoch) stream,
    // never from the campaign rng_ — honest draws stay invariant under any
    // adversary configuration.
    util::Xoshiro256PlusPlus rng = h.book.stream(party, next_epoch_);

    switch (policy.behavior) {
      case adversary::Behavior::kForgeReceipts:
      case adversary::Behavior::kCollude:
      case adversary::Behavior::kInflateReceipts: {
        // Forgery material: keys of own satellites — or, for a coalition,
        // of any member's satellites (shared keys).
        std::vector<std::size_t> regs;
        if (policy.behavior == adversary::Behavior::kCollude) {
          for (PartyId member : h.book.coalition_of(party)) {
            if (member < party_count) {
              regs.insert(regs.end(), party_regs[member].begin(),
                          party_regs[member].end());
            }
          }
        } else {
          regs = party_regs[party];
        }
        for (std::size_t i = 0; i < policy.receipts_per_epoch; ++i) {
          if (policy.behavior == adversary::Behavior::kInflateReceipts &&
              h.recent_valid[party].has_value()) {
            // Inflation: resubmit an already-credited receipt verbatim. The
            // ledger's content-hash guard verdicts it kDuplicate.
            (void)h.auditor.audit_and_credit(poc_, *h.recent_valid[party], party,
                                             ledger_, accounts_[party],
                                             adversary::ReceiptProvenance::kSubmission);
            ++summary.receipts_injected;
            continue;
          }
          if (regs.empty() || verifier_ids_.empty() || grid.count == 0) break;
          // Forgery: a correctly signed receipt (the insider holds the key)
          // claiming a contact at a step the ephemeris says never happened.
          const std::size_t ri = regs[rng.uniform_index(regs.size())];
          const constellation::SatelliteId sat_id = registered_satellite_ids_[ri];
          const std::uint32_t verifier =
              verifier_ids_[rng.uniform_index(verifier_ids_.size())];
          const cov::StepMask overhead = poc_.overhead_steps(sat_id, verifier, grid);
          if (h.auditor.config().doppler.enabled) {
            // RF-era forgery: the insider signs a receipt for a step the
            // geometry DOES support (it holds the key and the ephemeris) and
            // fabricates the accompanying Doppler track at the armed
            // sophistication. Digest and geometry both pass; only the track
            // fit can catch it.
            std::size_t rf_step = rng.uniform_index(grid.count);
            bool overhead_found = false;
            for (std::size_t probe = 0; probe < grid.count; ++probe) {
              const std::size_t s = (rf_step + probe) % grid.count;
              if (overhead.test(s)) {
                rf_step = s;
                overhead_found = true;
                break;
              }
            }
            if (overhead_found) {
              const CoverageReceipt forged = ProofOfCoverage::answer_challenge(
                  sat_id, satellite_keys_[ri], verifier, grid.at(rf_step), rng.next());
              const rf::DopplerAuditConfig& dcfg = h.auditor.config().doppler;
              const auto predicted = poc_.doppler_track(
                  sat_id, verifier, forged.time, dcfg.carrier_hz, dcfg.sample_offsets_s());
              rf::DopplerObservation fabricated;
              fabricated.carrier_hz = dcfg.carrier_hz;
              std::vector<double> truth;
              for (const auto& point : predicted) {
                fabricated.offsets_s.push_back(point.offset_s);
                truth.push_back(point.doppler_hz);
              }
              // Fabricated magnitudes stay inside the physical Doppler
              // envelope at the satellite's altitude — the forger is not
              // naive about scale, only (below kEphemerisExact) about shape.
              double altitude_m = 550e3;
              for (const constellation::Satellite& sat : sats) {
                if (sat.id == sat_id) {
                  altitude_m = sat.elements.semi_major_axis_m - util::kEarthMeanRadiusM;
                  break;
                }
              }
              const rf::ForgeryLevel level =
                  h.rf.has_value() ? h.rf->forgery_level : rf::ForgeryLevel::kFlatTone;
              fabricated.doppler_hz = rf::forge_doppler_track(
                  level, truth, cov::max_doppler_bound_hz(altitude_m, dcfg.carrier_hz),
                  rng);
              (void)h.auditor.audit_and_credit(poc_, forged, party, ledger_,
                                               accounts_[party],
                                               adversary::ReceiptProvenance::kSubmission,
                                               &fabricated);
              ++summary.receipts_injected;
              ++summary.rf_forgeries_injected;
              continue;
            }
            // Satellite never overhead for this verifier: fall through to the
            // classic geometric forgery below.
          }
          std::size_t step = rng.uniform_index(grid.count);
          bool gap_found = false;
          for (std::size_t probe = 0; probe < grid.count; ++probe) {
            const std::size_t s = (step + probe) % grid.count;
            if (!overhead.test(s)) {
              step = s;
              gap_found = true;
              break;
            }
          }
          CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
              sat_id, satellite_keys_[ri], verifier, grid.at(step), rng.next());
          if (!gap_found || poc_.verify(receipt) == ReceiptVerdict::kValid) {
            // Always overhead, or mask-boundary round-off let geometry pass:
            // degrade to a key-less forgery the MAC check rejects instead.
            receipt.digest ^= 1;
          }
          (void)h.auditor.audit_and_credit(poc_, receipt, party, ledger_,
                                           accounts_[party],
                                           adversary::ReceiptProvenance::kSubmission);
          ++summary.receipts_injected;
        }
        break;
      }
      case adversary::Behavior::kMisreportSla: {
        const net::PartyUsage& pu = usage.per_party[party];
        const double measured = pu.own_link_seconds + pu.spare_used_seconds;
        const double inflation = policy.sla_inflation();
        // A claim inside the audit tolerance is indistinguishable from
        // measurement noise — the adversary only overclaims when the
        // inflation would actually move the settlement.
        if (measured > 0.0 && inflation > 1.0 + h.auditor.config().sla_tolerance) {
          ++summary.misreports_injected;
          if (h.auditor.audit_sla_claim(party, measured * inflation, measured)) {
            ++summary.misreports_detected;
          }
        }
        break;
      }
      case adversary::Behavior::kWithholdCapacity:
        // Expressed upstream through SchedulerConfig::spare_withheld_fraction;
        // nothing to inject at settlement time.
        break;
      case adversary::Behavior::kJamming:
      case adversary::Behavior::kSpectrumSquatting:
        // Expressed upstream through the scheduler's interference
        // environment; the violation evidence was recorded from the
        // schedule's RF accounting above.
        break;
      case adversary::Behavior::kHonest:
        break;
    }
  }

  // Sanctions: this epoch's evidence escalates trust states, slashes stakes
  // and (eventually) expels repeat offenders.
  h.quarantine.observe_epoch(next_epoch_, h.auditor, ledger_, accounts_, consortium_,
                             &h.reputation);
  summary.quarantined_parties = h.quarantine.quarantined_count();
  summary.expelled_parties = h.quarantine.expelled_count();
  summary.slashed_total = h.quarantine.total_slashed();
  const adversary::PartyAuditStats totals = h.auditor.totals();
  summary.fraud_detected =
      static_cast<std::size_t>(totals.fraud_total() - h.fraud_at_epoch_start);
  summary.rf_doppler_rejections = static_cast<std::size_t>(
      totals.rf_doppler_rejections - h.doppler_rejections_at_epoch_start);
  summary.rf_interference_violations = static_cast<std::size_t>(
      totals.rf_interference_violations - h.rf_violations_at_epoch_start);
  report.adversary = summary;
}

}  // namespace mpleo::core
