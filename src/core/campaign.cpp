#include "core/campaign.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "sim/run_context.hpp"

namespace mpleo::core {

Campaign::Campaign(Consortium consortium, std::vector<net::Terminal> terminals,
                   std::vector<net::GroundStation> stations, CampaignConfig config,
                   std::uint64_t seed)
    : consortium_(std::move(consortium)),
      terminals_(std::move(terminals)),
      stations_(std::move(stations)),
      config_(config),
      poc_(config.poc),
      rng_(seed),
      clock_(config.start) {
  const std::size_t party_count = consortium_.parties().size();
  if (party_count == 0) throw std::invalid_argument("Campaign: no parties");
  for (const net::Terminal& t : terminals_) {
    if (t.owner_party >= party_count) {
      throw std::invalid_argument("Campaign: terminal owner out of range");
    }
  }
  for (const net::GroundStation& gs : stations_) {
    if (gs.owner_party >= party_count) {
      throw std::invalid_argument("Campaign: station owner out of range");
    }
  }

  // Ledger bootstrap: one account per party, seeded with the grant. The
  // treasury is pre-funded with enough to cover grants; emissions mint more
  // per epoch.
  ledger_.mint(config_.bootstrap_grant * static_cast<double>(party_count),
               "bootstrap funding");
  for (const Party& party : consortium_.parties()) {
    const AccountId account = ledger_.open_account(party.name);
    accounts_.push_back(account);
    if (!ledger_.reward(account, config_.bootstrap_grant, "bootstrap grant")) {
      throw std::logic_error("Campaign: bootstrap grant failed");
    }
  }

  // Register satellites and verifiers for proof-of-coverage.
  for (const constellation::Satellite& sat : consortium_.active_satellites()) {
    satellite_keys_.push_back(poc_.register_satellite(sat, seed));
    registered_satellite_ids_.push_back(sat.id);
  }
  for (const net::Terminal& t : terminals_) {
    verifier_ids_.push_back(poc_.register_verifier(t.location));
  }
}

std::size_t Campaign::withdraw_party(PartyId party) {
  return consortium_.withdraw_party(party);
}

EpochReport Campaign::run_epoch(sim::RunContext& context) {
  return run_epoch_impl(context.pool(), &context);
}

EpochReport Campaign::run_epoch(util::ThreadPool* pool) {
  return run_epoch_impl(pool, nullptr);
}

EpochReport Campaign::run_epoch_impl(util::ThreadPool* pool, sim::RunContext* context) {
  obs::ScopedTimer epoch_timer(
      context != nullptr ? context->metrics().histogram("campaign.epoch_seconds")
                         : obs::Histogram{});
  EpochReport report;
  report.epoch = next_epoch_;
  report.window_start = clock_;

  const std::vector<constellation::Satellite> sats = consortium_.active_satellites();
  report.active_satellites = sats.size();
  const std::size_t party_count = consortium_.parties().size();

  // 1. Schedule the epoch.
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(clock_, config_.epoch_duration_s, config_.step_s);
  const net::BentPipeScheduler scheduler(config_.scheduler, sats, terminals_, stations_);
  net::ScheduleResult usage =
      context != nullptr
          ? scheduler.run(grid, party_count, *context, /*keep_steps=*/false)
          : scheduler.run(grid, party_count, /*keep_steps=*/false, pool);
  report.total_served_seconds = usage.total_served_seconds;
  report.total_unserved_seconds = usage.total_unserved_seconds;
  report.service_fairness = service_fairness(usage);

  // 2. Settle spare-capacity usage.
  report.settlement = settle(usage, accounts_, config_.settlement, ledger_);

  // 3. Proof-of-coverage spot checks: each party's terminals challenge
  // random registered satellites at random times in the epoch.
  for (std::size_t ti = 0; ti < terminals_.size(); ++ti) {
    for (std::size_t c = 0; c < config_.poc_challenges_per_party_per_epoch; ++c) {
      if (registered_satellite_ids_.empty()) break;
      const std::size_t pick = rng_.uniform_index(registered_satellite_ids_.size());
      const orbit::TimePoint when =
          clock_.plus_seconds(rng_.uniform(0.0, config_.epoch_duration_s));
      const CoverageReceipt receipt = ProofOfCoverage::answer_challenge(
          registered_satellite_ids_[pick], satellite_keys_[pick], verifier_ids_[ti],
          when, rng_.next());
      // Owner lookup: the registration order mirrors active_satellites() at
      // construction; find the owner by id in the consortium.
      std::uint32_t owner = constellation::Satellite::kUnowned;
      for (const constellation::Satellite& sat : sats) {
        if (sat.id == receipt.satellite) {
          owner = sat.owner_party;
          break;
        }
      }
      if (owner == constellation::Satellite::kUnowned) continue;  // withdrawn
      const ReceiptVerdict verdict =
          poc_.verify_and_reward(receipt, ledger_, accounts_[owner]);
      if (verdict == ReceiptVerdict::kValid) {
        ++report.poc_valid;
      } else {
        ++report.poc_rejected;
      }
    }
  }

  // 4. Epoch emission, distributed by stake.
  report.emission_minted = config_.emission.epoch_reward(next_epoch_);
  if (report.emission_minted > 0.0) {
    ledger_.mint(report.emission_minted, "epoch emission");
    for (const Party& party : consortium_.parties()) {
      const double share = consortium_.stake(party.id) * report.emission_minted;
      if (share > 0.0) {
        (void)ledger_.reward(accounts_[party.id], share, "emission by stake");
      }
    }
  }

  report.usage = std::move(usage.per_party);
  report.balances.reserve(party_count);
  for (AccountId account : accounts_) report.balances.push_back(ledger_.balance(account));

  if (context != nullptr) {
    context->metrics().counter("campaign.epochs").add(1);
    context->metrics().counter("campaign.poc_valid").add(report.poc_valid);
    context->metrics().counter("campaign.poc_rejected").add(report.poc_rejected);
    std::ostringstream line;
    line << "epoch " << report.epoch << ": satellites=" << report.active_satellites
         << " served=" << report.total_served_seconds << "s unserved="
         << report.total_unserved_seconds << "s poc=" << report.poc_valid << "/"
         << report.poc_valid + report.poc_rejected << " minted=" << report.emission_minted;
    context->trace().record(clock_.seconds_since(config_.start), "campaign", line.str());
  }

  clock_ = clock_.plus_seconds(config_.epoch_duration_s);
  ++next_epoch_;
  return report;
}

}  // namespace mpleo::core
