#include "core/robustness.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "fault/timeline.hpp"
#include "obs/metrics.hpp"
#include "sim/run_context.hpp"
#include "util/thread_pool.hpp"

namespace mpleo::core {
namespace {

double draw_exponential(util::Xoshiro256PlusPlus& rng, double mean_s) {
  return -mean_s * std::log1p(-rng.uniform());
}

}  // namespace

void prepare_cache(cov::VisibilityCache& cache, util::ThreadPool* pool) {
  cache.precompute_all(pool);
}

void prepare_cache(cov::VisibilityCache& cache, sim::RunContext& context) {
  cache.precompute_all(context);
}

WithdrawalImpact withdrawal_impact(cov::VisibilityCache& cache,
                                   std::span<const std::size_t> base,
                                   std::span<const std::size_t> withdrawn) {
  const std::unordered_set<std::size_t> gone(withdrawn.begin(), withdrawn.end());
  std::vector<std::size_t> remaining;
  remaining.reserve(base.size());
  for (std::size_t idx : base) {
    if (!gone.contains(idx)) remaining.push_back(idx);
  }
  if (base.size() - remaining.size() != withdrawn.size()) {
    throw std::invalid_argument("withdrawal_impact: withdrawn is not a subset of base");
  }

  WithdrawalImpact impact;
  impact.before_fraction = cache.weighted_coverage_fraction(base);
  impact.after_fraction = cache.weighted_coverage_fraction(remaining);
  return impact;
}

std::vector<std::size_t> partition_by_ratio(std::size_t total, std::size_t ratio,
                                            std::size_t others) {
  if (ratio == 0) throw std::invalid_argument("partition_by_ratio: ratio must be >= 1");
  const std::size_t shares = ratio + others;
  if (shares == 0 || total == 0) {
    throw std::invalid_argument("partition_by_ratio: empty partition");
  }
  const std::size_t unit = total / shares;
  if (unit == 0) {
    throw std::invalid_argument("partition_by_ratio: total too small for ratio");
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(1 + others);
  sizes.push_back(ratio * unit + (total - unit * shares));  // largest + remainder
  for (std::size_t i = 0; i < others; ++i) sizes.push_back(unit);
  return sizes;
}

std::vector<std::vector<std::size_t>> assign_to_parties(
    std::span<const std::size_t> indices, std::span<const std::size_t> sizes) {
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  if (total != indices.size()) {
    throw std::invalid_argument("assign_to_parties: sizes do not sum to index count");
  }
  std::vector<std::vector<std::size_t>> parties;
  parties.reserve(sizes.size());
  std::size_t cursor = 0;
  for (std::size_t s : sizes) {
    parties.emplace_back(indices.begin() + static_cast<std::ptrdiff_t>(cursor),
                         indices.begin() + static_cast<std::ptrdiff_t>(cursor + s));
    cursor += s;
  }
  return parties;
}

std::vector<ResiliencePoint> resilience_sweep(cov::VisibilityCache& cache,
                                              std::span<const std::size_t> satellite_indices,
                                              const ResilienceConfig& config,
                                              util::ThreadPool* pool) {
  const std::vector<double>& rates = config.failure_rates_per_sat_day;
  if (rates.empty()) {
    throw std::invalid_argument("resilience_sweep: no failure rates");
  }
  for (const double rate : rates) {
    if (!(rate >= 0.0)) {
      throw std::invalid_argument("resilience_sweep: failure rates must be >= 0");
    }
  }
  if (!(config.mttr_seconds > 0.0)) {
    throw std::invalid_argument("resilience_sweep: MTTR must be > 0");
  }
  if (config.runs == 0) throw std::invalid_argument("resilience_sweep: runs must be > 0");

  prepare_cache(cache, pool);  // after this, every query is pure mask reads

  const orbit::TimeGrid& grid = cache.engine().grid();
  const double window = grid.duration_seconds();
  const double baseline = cache.weighted_coverage_fraction(satellite_indices);
  const double rate_max = *std::max_element(rates.begin(), rates.end());
  const std::size_t n_rates = rates.size();

  std::vector<double> coverage(config.runs * n_rates, 0.0);
  std::vector<double> worst_gap(config.runs * n_rates, 0.0);
  const util::Xoshiro256PlusPlus base(config.seed);

  const auto run_one = [&](std::size_t run) {
    // Failure candidates at the envelope rate, shared by every sweep point
    // of this run: point at rate r keeps candidate i iff accept_i < r /
    // rate_max, so a lower rate's outages are a subset of a higher rate's
    // and coverage is monotone in the rate within the run.
    struct Candidate {
      std::size_t position;
      double start_s;
      double repair_s;
      double accept;
    };
    std::vector<Candidate> candidates;
    const util::Xoshiro256PlusPlus run_stream = base.split(run);
    if (rate_max > 0.0) {
      const double mean_gap_s = 86400.0 / rate_max;
      for (std::size_t p = 0; p < satellite_indices.size(); ++p) {
        util::Xoshiro256PlusPlus sat_stream = run_stream.split(p);
        double t = 0.0;
        while (true) {
          t += draw_exponential(sat_stream, mean_gap_s);
          if (t >= window) break;
          const double repair = draw_exponential(sat_stream, config.mttr_seconds);
          candidates.push_back({p, t, repair, sat_stream.uniform()});
        }
      }
    }

    for (std::size_t ri = 0; ri < n_rates; ++ri) {
      fault::FaultTimeline timeline(grid, cache.satellite_count(), 0);
      for (const Candidate& c : candidates) {
        if (c.accept * rate_max >= rates[ri]) continue;
        const double end = std::min(c.start_s + c.repair_s, window);
        if (end > c.start_s) {
          timeline.add_satellite_outage(satellite_indices[c.position], c.start_s, end);
        }
      }
      double covered = 0.0;
      double gap = 0.0;
      for (std::size_t j = 0; j < cache.site_count(); ++j) {
        const cov::StepMask mask = cache.union_mask(satellite_indices, j, &timeline);
        covered += cache.site_weight(j) * mask.fraction();
        gap = std::max(gap, static_cast<double>(mask.longest_zero_run()) *
                                grid.step_seconds);
      }
      coverage[run * n_rates + ri] = covered;
      worst_gap[run * n_rates + ri] = gap;
    }
  };

  if (pool != nullptr) {
    pool->parallel_for(config.runs, run_one);
  } else {
    for (std::size_t run = 0; run < config.runs; ++run) run_one(run);
  }

  std::vector<ResiliencePoint> points(n_rates);
  for (std::size_t ri = 0; ri < n_rates; ++ri) {
    double cov_sum = 0.0;
    double gap_sum = 0.0;
    for (std::size_t run = 0; run < config.runs; ++run) {
      cov_sum += coverage[run * n_rates + ri];
      gap_sum += worst_gap[run * n_rates + ri];
    }
    ResiliencePoint& point = points[ri];
    point.failure_rate_per_sat_day = rates[ri];
    point.mttr_seconds = config.mttr_seconds;
    point.mean_coverage_fraction = cov_sum / static_cast<double>(config.runs);
    point.mean_served_fraction =
        baseline > 0.0 ? point.mean_coverage_fraction / baseline : 0.0;
    point.mean_worst_gap_seconds = gap_sum / static_cast<double>(config.runs);
  }
  return points;
}

std::vector<ResiliencePoint> resilience_sweep(cov::VisibilityCache& cache,
                                              std::span<const std::size_t> satellite_indices,
                                              const ResilienceConfig& config,
                                              sim::RunContext& context) {
  obs::ScopedTimer timer(context.metrics().histogram("resilience.sweep_seconds"));
  std::vector<ResiliencePoint> points =
      resilience_sweep(cache, satellite_indices, config, context.pool());
  context.metrics().counter("resilience.points").add(points.size());
  context.metrics().counter("resilience.runs").add(points.size() * config.runs);
  return points;
}

}  // namespace mpleo::core
