#include "core/robustness.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace mpleo::core {

void prepare_cache(cov::VisibilityCache& cache, util::ThreadPool* pool) {
  cache.precompute_all(pool);
}

WithdrawalImpact withdrawal_impact(cov::VisibilityCache& cache,
                                   std::span<const std::size_t> base,
                                   std::span<const std::size_t> withdrawn) {
  const std::unordered_set<std::size_t> gone(withdrawn.begin(), withdrawn.end());
  std::vector<std::size_t> remaining;
  remaining.reserve(base.size());
  for (std::size_t idx : base) {
    if (!gone.contains(idx)) remaining.push_back(idx);
  }
  if (base.size() - remaining.size() != withdrawn.size()) {
    throw std::invalid_argument("withdrawal_impact: withdrawn is not a subset of base");
  }

  WithdrawalImpact impact;
  impact.before_fraction = cache.weighted_coverage_fraction(base);
  impact.after_fraction = cache.weighted_coverage_fraction(remaining);
  return impact;
}

std::vector<std::size_t> partition_by_ratio(std::size_t total, std::size_t ratio,
                                            std::size_t others) {
  if (ratio == 0) throw std::invalid_argument("partition_by_ratio: ratio must be >= 1");
  const std::size_t shares = ratio + others;
  if (shares == 0 || total == 0) {
    throw std::invalid_argument("partition_by_ratio: empty partition");
  }
  const std::size_t unit = total / shares;
  if (unit == 0) {
    throw std::invalid_argument("partition_by_ratio: total too small for ratio");
  }
  std::vector<std::size_t> sizes;
  sizes.reserve(1 + others);
  sizes.push_back(ratio * unit + (total - unit * shares));  // largest + remainder
  for (std::size_t i = 0; i < others; ++i) sizes.push_back(unit);
  return sizes;
}

std::vector<std::vector<std::size_t>> assign_to_parties(
    std::span<const std::size_t> indices, std::span<const std::size_t> sizes) {
  std::size_t total = 0;
  for (std::size_t s : sizes) total += s;
  if (total != indices.size()) {
    throw std::invalid_argument("assign_to_parties: sizes do not sum to index count");
  }
  std::vector<std::vector<std::size_t>> parties;
  parties.reserve(sizes.size());
  std::size_t cursor = 0;
  for (std::size_t s : sizes) {
    parties.emplace_back(indices.begin() + static_cast<std::ptrdiff_t>(cursor),
                         indices.begin() + static_cast<std::ptrdiff_t>(cursor + s));
    cursor += s;
  }
  return parties;
}

}  // namespace mpleo::core
