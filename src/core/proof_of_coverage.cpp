#include "core/proof_of_coverage.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "coverage/doppler.hpp"
#include "coverage/visibility_cull.hpp"
#include "orbit/ephemeris.hpp"
#include "util/units.hpp"

namespace mpleo::core {
namespace {

// FNV-1a over a byte view; used as the simulated MAC primitive.
std::uint64_t fnv1a(const void* data, std::size_t size, std::uint64_t seed) noexcept {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed ^ 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

const char* to_string(ReceiptVerdict verdict) noexcept {
  switch (verdict) {
    case ReceiptVerdict::kValid: return "valid";
    case ReceiptVerdict::kBadDigest: return "bad-digest";
    case ReceiptVerdict::kNotOverhead: return "not-overhead";
    case ReceiptVerdict::kUnknownSatellite: return "unknown-satellite";
    case ReceiptVerdict::kUnknownVerifier: return "unknown-verifier";
    case ReceiptVerdict::kDuplicate: return "duplicate";
    case ReceiptVerdict::kRfImplausible: return "rf-implausible";
  }
  return "?";
}

std::uint64_t CoverageReceipt::content_hash() const noexcept {
  struct Payload {
    constellation::SatelliteId satellite;
    std::uint32_t verifier;
    double julian_date;
    std::uint64_t nonce;
    std::uint64_t digest;
  } payload{satellite, verifier, time.julian_date(), nonce, digest};
  static_assert(sizeof(Payload) == 32);
  return fnv1a(&payload, sizeof payload, 0x72637074ULL);  // "rcpt"
}

std::uint64_t ProofOfCoverage::digest(std::uint64_t key,
                                      constellation::SatelliteId satellite,
                                      std::uint32_t verifier, double julian_date,
                                      std::uint64_t nonce) noexcept {
  struct Payload {
    constellation::SatelliteId satellite;
    std::uint32_t verifier;
    double julian_date;
    std::uint64_t nonce;
  } payload{satellite, verifier, julian_date, nonce};
  static_assert(sizeof(Payload) == 24);
  return fnv1a(&payload, sizeof payload, key);
}

std::uint64_t ProofOfCoverage::register_satellite(const constellation::Satellite& satellite,
                                                  std::uint64_t consortium_seed) {
  const std::uint64_t key =
      fnv1a(&satellite.id, sizeof satellite.id, consortium_seed ^ 0x6d706c656fULL);
  orbit::EphemerisSpec spec{satellite.elements, satellite.epoch,
                            orbit::Perturbation::kJ2Secular};
  spec.backend = config_.propagator_backend;
  satellites_.push_back({satellite, key, orbit::make_propagator(spec)});
  return key;
}

std::uint32_t ProofOfCoverage::register_verifier(const orbit::Geodetic& site) {
  verifiers_.emplace_back(site);
  return static_cast<std::uint32_t>(verifiers_.size() - 1);
}

CoverageReceipt ProofOfCoverage::answer_challenge(constellation::SatelliteId satellite,
                                                  std::uint64_t key, std::uint32_t verifier,
                                                  orbit::TimePoint time,
                                                  std::uint64_t nonce) {
  CoverageReceipt receipt;
  receipt.satellite = satellite;
  receipt.verifier = verifier;
  receipt.time = time;
  receipt.nonce = nonce;
  receipt.digest = digest(key, satellite, verifier, time.julian_date(), nonce);
  return receipt;
}

const ProofOfCoverage::RegisteredSatellite* ProofOfCoverage::find(
    constellation::SatelliteId id) const {
  for (const RegisteredSatellite& rs : satellites_) {
    if (rs.satellite.id == id) return &rs;
  }
  return nullptr;
}

ReceiptVerdict ProofOfCoverage::verify(const CoverageReceipt& receipt) const {
  const RegisteredSatellite* registered = find(receipt.satellite);
  if (registered == nullptr) return ReceiptVerdict::kUnknownSatellite;
  if (receipt.verifier >= verifiers_.size()) return ReceiptVerdict::kUnknownVerifier;

  const std::uint64_t expected =
      digest(registered->key, receipt.satellite, receipt.verifier,
             receipt.time.julian_date(), receipt.nonce);
  if (expected != receipt.digest) return ReceiptVerdict::kBadDigest;

  // Geometry check: was the satellite actually above the verifier's horizon?
  const orbit::StateVector state = registered->propagator.state_at(receipt.time);
  const util::Vec3 ecef = orbit::eci_to_ecef(state.position, receipt.time);
  const double sin_mask = std::sin(util::deg_to_rad(config_.elevation_mask_deg));
  if (!verifiers_[receipt.verifier].visible_above(ecef, sin_mask)) {
    return ReceiptVerdict::kNotOverhead;
  }
  return ReceiptVerdict::kValid;
}

cov::StepMask ProofOfCoverage::overhead_steps(constellation::SatelliteId satellite,
                                              std::uint32_t verifier,
                                              const orbit::TimeGrid& grid) const {
  const RegisteredSatellite* registered = find(satellite);
  if (registered == nullptr) {
    throw std::invalid_argument("ProofOfCoverage: unknown satellite");
  }
  if (verifier >= verifiers_.size()) {
    throw std::invalid_argument("ProofOfCoverage: unknown verifier");
  }
  const orbit::EphemerisTable table =
      orbit::EphemerisTable::compute(registered->propagator, grid);
  const cov::VisibilityCuller culler(grid, config_.elevation_mask_deg);
  cov::StepMask mask(grid.count);
  culler.fill(table, verifiers_[verifier], mask);
  return mask;
}

std::vector<ProofOfCoverage::DopplerPoint> ProofOfCoverage::doppler_track(
    constellation::SatelliteId satellite, std::uint32_t verifier,
    orbit::TimePoint time, double carrier_hz, std::span<const double> offsets_s) const {
  const RegisteredSatellite* registered = find(satellite);
  if (registered == nullptr) {
    throw std::invalid_argument("ProofOfCoverage: unknown satellite");
  }
  if (verifier >= verifiers_.size()) {
    throw std::invalid_argument("ProofOfCoverage: unknown verifier");
  }
  const orbit::TopocentricFrame& site = verifiers_[verifier];
  const double sin_mask = std::sin(util::deg_to_rad(config_.elevation_mask_deg));

  std::vector<DopplerPoint> track;
  track.reserve(offsets_s.size());
  for (const double offset : offsets_s) {
    const orbit::TimePoint t = time.plus_seconds(offset);
    const orbit::StateVector state = registered->propagator.state_at(t);
    const double gmst = orbit::gmst_rad(t);
    const util::Vec3 r_ecef = orbit::eci_to_ecef(state.position, gmst);
    if (!site.visible_above(r_ecef, sin_mask)) continue;
    const cov::RangeRate rr =
        cov::range_rate_ecef(state.velocity, gmst, r_ecef, site.origin_ecef());
    track.push_back(
        {offset, cov::doppler_shift_hz(rr.range_rate_m_per_s, carrier_hz)});
  }
  return track;
}

ReceiptVerdict ProofOfCoverage::verify_and_reward(const CoverageReceipt& receipt,
                                                  Ledger& ledger,
                                                  AccountId owner_account) const {
  const ReceiptVerdict verdict = verify(receipt);
  if (verdict == ReceiptVerdict::kValid) {
    // A failed reward (empty treasury) does not invalidate the receipt, but
    // an already-credited content hash does: paying twice for one receipt is
    // the inflation attack the audit layer exists to stop.
    if (!ledger.credit_receipt(owner_account, config_.reward_per_receipt,
                               receipt.content_hash(), "proof-of-coverage")) {
      return ReceiptVerdict::kDuplicate;
    }
  }
  return verdict;
}

}  // namespace mpleo::core
