// Service-level agreements (§4 "Market design": "What kinds of
// quality-of-service can they provide?").
//
// An SLA binds a provider to measurable service: minimum coverage fraction,
// maximum continuous outage, minimum delivered capacity. Compliance is
// evaluated against the same CoverageStats / PartyUsage artifacts the rest
// of the stack produces, and violations settle as ledger penalties — so QoS
// is enforceable inside the token economy rather than by promise.
#pragma once

#include <string>
#include <vector>

#include "core/ledger.hpp"
#include "coverage/engine.hpp"
#include "net/scheduler.hpp"

namespace mpleo::sim {
class RunContext;
}

namespace mpleo::core {

struct SlaTerms {
  std::string name = "standard";
  double min_coverage_fraction = 0.95;
  double max_gap_seconds = 3600.0;
  // Minimum served fraction of the customer's terminal time (own + spare).
  double min_served_fraction = 0.0;
  // Penalty per violated clause, paid provider -> customer at settlement.
  double penalty_per_violation = 25.0;
};

enum class SlaClause {
  kCoverageFraction,
  kMaxGap,
  kServedFraction,
};

[[nodiscard]] const char* to_string(SlaClause clause) noexcept;

struct SlaViolation {
  SlaClause clause = SlaClause::kCoverageFraction;
  double required = 0.0;
  double delivered = 0.0;
};

struct SlaReport {
  bool compliant = true;
  std::vector<SlaViolation> violations;
  double total_penalty = 0.0;
};

// Evaluates the coverage clauses against a site's coverage statistics and
// (optionally, when usage/party are provided) the served-fraction clause
// against the customer's scheduler usage over `window_seconds`.
[[nodiscard]] SlaReport evaluate_sla(const SlaTerms& terms,
                                     const cov::CoverageStats& coverage);
[[nodiscard]] SlaReport evaluate_sla(const SlaTerms& terms,
                                     const cov::CoverageStats& coverage,
                                     const net::PartyUsage& usage,
                                     double window_seconds);

// Evaluates the coverage clauses on the fault-degraded union of
// `satellite_indices` at `site_index`: outages carve real gaps into the
// coverage timeline, so a failure longer than max_gap_seconds violates the
// SLA even when the orbital geometry alone would have complied. The
// context's timeline degrades the union (none = healthy; an empty timeline
// is bit-identical to the healthy union) and its pool precomputes the
// cache's visibility masks in parallel across satellites first
// (bit-identical to the lazy serial fill). Evaluation time and violation
// counts land in context.metrics() under "sla.".
[[nodiscard]] SlaReport evaluate_sla(const SlaTerms& terms, cov::VisibilityCache& cache,
                                     std::span<const std::size_t> satellite_indices,
                                     std::size_t site_index, sim::RunContext& context);

// Executes the penalty transfer; returns false when the provider cannot pay
// (the shortfall is recorded by the caller — an undercollateralised provider
// is itself a reputation event).
[[nodiscard]] bool settle_sla_penalty(const SlaReport& report, Ledger& ledger,
                                      AccountId provider, AccountId customer);

}  // namespace mpleo::core
