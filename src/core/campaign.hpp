// Campaign: multi-epoch operation of an MP-LEO constellation.
//
// Each epoch (e.g. one day) the campaign:
//   1. schedules bent-pipe service over the epoch window (owner-priority,
//      spare capacity shared);
//   2. settles spare-capacity usage on the token ledger;
//   3. runs proof-of-coverage spot checks and pays rewards;
//   4. mints the epoch's token emission and distributes it by stake.
// Parties can withdraw between epochs; the next epoch simply runs with the
// remaining satellites — the §3.4 degradation shows up in the reports.
//
// This is the facade downstream users drive; examples/mpleo_consortium.cpp
// shows the underlying pieces wired manually.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "adversary/audit.hpp"
#include "adversary/policy.hpp"
#include "adversary/quarantine.hpp"
#include "core/allocation.hpp"
#include "core/bootstrap.hpp"
#include "core/consortium.hpp"
#include "core/fairness.hpp"
#include "core/ledger.hpp"
#include "core/proof_of_coverage.hpp"
#include "net/scheduler.hpp"
#include "orbit/time.hpp"
#include "rf/doppler.hpp"
#include "rf/spectrum_plan.hpp"
#include "util/rng.hpp"

namespace mpleo::sim {
class RunContext;
}
namespace mpleo::util {
class ThreadPool;
}

namespace mpleo::core {

struct CampaignConfig {
  orbit::TimePoint start = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");
  double epoch_duration_s = 86400.0;
  double step_s = 120.0;
  net::SchedulerConfig scheduler;
  SettlementConfig settlement;
  EmissionSchedule emission;
  double bootstrap_grant = 200.0;  // tokens granted to each party at start
  ProofOfCoverage::Config poc;
  std::size_t poc_challenges_per_party_per_epoch = 4;
};

// Per-epoch Byzantine accounting; present on EpochReport::adversary only for
// an armed campaign (see Campaign::arm_adversaries).
struct AdversaryEpochSummary {
  std::size_t receipts_injected = 0;    // forged + resubmitted this epoch
  std::size_t fraud_detected = 0;       // audit fraud evidence, this epoch
  std::size_t misreports_injected = 0;  // SLA overclaims attempted
  std::size_t misreports_detected = 0;
  std::size_t quarantined_parties = 0;  // standing at end of epoch
  std::size_t expelled_parties = 0;
  double slashed_total = 0.0;           // cumulative tokens slashed to treasury
  // RF accounting, all zero unless arm_rf / the Doppler audit stage engaged.
  std::size_t rf_forgeries_injected = 0;       // overhead-step forgeries with fabricated tracks
  std::size_t rf_doppler_rejections = 0;       // receipts the track fit rejected, this epoch
  std::size_t rf_interference_violations = 0;  // plan-violation evidence recorded, this epoch
  double rf_nominal_bps = 0.0;                 // scheduler granted capacity before interference
  double rf_capacity_lost_bps = 0.0;           // scheduler nominal - realized under interference

  friend bool operator==(const AdversaryEpochSummary&,
                         const AdversaryEpochSummary&) = default;
};

struct EpochReport {
  std::size_t epoch = 0;
  orbit::TimePoint window_start;
  // Service outcome.
  double total_served_seconds = 0.0;
  double total_unserved_seconds = 0.0;
  double service_fairness = 0.0;
  std::vector<net::PartyUsage> usage;        // per party
  // Economics.
  SettlementReport settlement;
  double emission_minted = 0.0;
  std::size_t poc_valid = 0;
  std::size_t poc_rejected = 0;
  std::vector<double> balances;              // per party, end of epoch
  std::size_t active_satellites = 0;
  // Byzantine accounting; nullopt when the campaign is not armed.
  std::optional<AdversaryEpochSummary> adversary;
};

class Campaign {
 public:
  // The consortium is taken by value: the campaign owns membership evolution
  // from here on. Terminal/station owner ids must reference its parties.
  Campaign(Consortium consortium, std::vector<net::Terminal> terminals,
           std::vector<net::GroundStation> stations, CampaignConfig config,
           std::uint64_t seed);

  // Runs the next epoch and returns its report. The context's pool
  // parallelises the epoch's scheduling phase 1 (ephemerides, pair masks,
  // candidate lists); the report is bit-identical for any pool size,
  // including none. Scheduler metrics land in context.metrics() under
  // "sched." plus campaign aggregates under "campaign.", and an epoch
  // summary line is recorded into context.trace().
  EpochReport run_epoch(sim::RunContext& context);

  // Withdraws a party effective from the next epoch; returns satellites
  // removed.
  std::size_t withdraw_party(PartyId party);

  // Arms Byzantine behaviors for every subsequent epoch: parties the book
  // marks Byzantine inject their misbehavior (forged / resubmitted receipts,
  // withheld spare beams, inflated SLA claims), every receipt is routed
  // through a ReceiptAuditor before crediting, and a QuarantineManager turns
  // confirmed fraud into slashing, spare-commons exclusion and eventual
  // expulsion. Arming with an empty() book is bit-identical to never arming
  // — same ledger entries, same allocations, same scheduler output. Arming
  // twice replaces the previous harness.
  void arm_adversaries(adversary::BehaviorBook book,
                       adversary::AuditConfig audit_config = {},
                       adversary::QuarantineConfig quarantine_config = {});

  // Arms the RF layer on an already-armed campaign: carves an equal-partition
  // spectrum plan over the consortium's parties, builds the co-channel
  // interference environment from the book's jamming/squatting masks (fed to
  // every subsequent epoch's scheduler), and fixes the sophistication level
  // Byzantine forgers invest in fabricated Doppler tracks (consumed only when
  // the audit's Doppler stage is enabled). With no jamming or squatting party
  // in the book the scheduler never sees the environment, so service output
  // stays bit-identical to the pre-RF campaign. Throws std::logic_error when
  // the campaign is not armed, std::invalid_argument on an invalid spectrum
  // config. Calling again replaces the RF state.
  void arm_rf(rf::SpectrumConfig spectrum,
              rf::ForgeryLevel forgery_level = rf::ForgeryLevel::kFlatTone);

  [[nodiscard]] bool armed() const noexcept { return harness_ != nullptr; }
  [[nodiscard]] bool rf_armed() const noexcept;
  // Null until arm_rf is called.
  [[nodiscard]] const rf::InterferenceEnvironment* rf_environment() const noexcept;
  // Armed-campaign introspection; each throws std::logic_error when the
  // campaign was never armed.
  [[nodiscard]] const adversary::BehaviorBook& behavior_book() const;
  [[nodiscard]] const adversary::ReceiptAuditor& auditor() const;
  [[nodiscard]] const adversary::QuarantineManager& quarantine() const;
  [[nodiscard]] const ReputationTracker& adversary_reputation() const;

  [[nodiscard]] const Consortium& consortium() const noexcept { return consortium_; }
  [[nodiscard]] const Ledger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] AccountId account_of(PartyId party) const { return accounts_.at(party); }
  [[nodiscard]] std::size_t epochs_run() const noexcept { return next_epoch_; }
  [[nodiscard]] orbit::TimePoint current_time() const noexcept { return clock_; }

  ~Campaign();
  Campaign(Campaign&&) noexcept;
  Campaign& operator=(Campaign&&) noexcept;

 private:
  // The armed state: behavior book, audit trail, sanction ladder, reputation
  // memory, and the per-party stash of credited receipts inflation attacks
  // resubmit.
  struct AdversaryHarness;

  EpochReport run_epoch_impl(util::ThreadPool* pool, sim::RunContext* context);
  void inject_adversary_behavior(const orbit::TimeGrid& grid,
                                 const std::vector<constellation::Satellite>& sats,
                                 const net::ScheduleResult& usage, EpochReport& report);

  Consortium consortium_;
  std::vector<net::Terminal> terminals_;
  std::vector<net::GroundStation> stations_;
  CampaignConfig config_;
  Ledger ledger_;
  std::vector<AccountId> accounts_;
  ProofOfCoverage poc_;
  std::vector<std::uint64_t> satellite_keys_;  // parallel to registration order
  std::vector<constellation::SatelliteId> registered_satellite_ids_;
  std::vector<std::uint32_t> verifier_ids_;    // one per terminal
  util::Xoshiro256PlusPlus rng_;
  orbit::TimePoint clock_;
  std::size_t next_epoch_ = 0;
  std::unique_ptr<AdversaryHarness> harness_;  // null until arm_adversaries
};

}  // namespace mpleo::core
