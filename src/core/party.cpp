#include "core/party.hpp"

namespace mpleo::core {

const char* to_string(PartyKind kind) noexcept {
  switch (kind) {
    case PartyKind::kCountry: return "country";
    case PartyKind::kCompany: return "company";
  }
  return "?";
}

const char* to_string(Objective objective) noexcept {
  switch (objective) {
    case Objective::kGlobalCoverage: return "global-coverage";
    case Objective::kRegionalCoverage: return "regional-coverage";
    case Objective::kProfit: return "profit";
  }
  return "?";
}

}  // namespace mpleo::core
