#include "core/fairness.hpp"

namespace mpleo::core {

double jain_fairness_index(std::span<const double> allocations) noexcept {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

std::vector<Reciprocity> reciprocity_by_party(const net::ScheduleResult& usage) {
  std::vector<Reciprocity> out;
  out.reserve(usage.per_party.size());
  for (const net::PartyUsage& u : usage.per_party) {
    out.push_back({u.spare_provided_seconds, u.spare_used_seconds});
  }
  return out;
}

std::vector<std::size_t> detect_free_riders(const net::ScheduleResult& usage,
                                            const FreeRiderPolicy& policy) {
  std::vector<std::size_t> riders;
  const std::vector<Reciprocity> reciprocity = reciprocity_by_party(usage);
  for (std::size_t p = 0; p < reciprocity.size(); ++p) {
    const Reciprocity& r = reciprocity[p];
    if (r.consumed_seconds >= policy.min_consumed_seconds &&
        r.ratio() < policy.min_ratio) {
      riders.push_back(p);
    }
  }
  return riders;
}

double service_fairness(const net::ScheduleResult& usage) noexcept {
  std::vector<double> service;
  service.reserve(usage.per_party.size());
  for (const net::PartyUsage& u : usage.per_party) {
    service.push_back(u.own_link_seconds + u.spare_used_seconds);
  }
  return jain_fairness_index(service);
}

}  // namespace mpleo::core
