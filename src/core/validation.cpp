#include "core/validation.hpp"

#include <algorithm>
#include <sstream>

namespace mpleo::core {

const char* to_string(IssueSeverity severity) noexcept {
  switch (severity) {
    case IssueSeverity::kWarning: return "warning";
    case IssueSeverity::kError: return "error";
  }
  return "unknown";
}

bool has_errors(const std::vector<ConfigIssue>& issues) noexcept {
  return std::any_of(issues.begin(), issues.end(), [](const ConfigIssue& issue) {
    return issue.severity == IssueSeverity::kError;
  });
}

std::string format_issues(const std::string& context,
                          const std::vector<ConfigIssue>& issues) {
  if (issues.empty()) return {};
  std::ostringstream os;
  os << context << ": " << issues.size() << " invalid field(s)";
  for (const ConfigIssue& issue : issues) {
    os << "\n  " << issue.field << ": " << issue.message;
  }
  return os.str();
}

void throw_if_invalid(const std::string& context,
                      const std::vector<ConfigIssue>& issues) {
  if (has_errors(issues)) throw std::invalid_argument(format_issues(context, issues));
}

}  // namespace mpleo::core
