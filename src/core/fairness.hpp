// Fairness and good-behavior metrics (§3.2: "What constitutes good behavior
// for participating parties in such a shared network?").
//
// Operationalised here as:
//  * Jain's fairness index over the service each party's terminals received;
//  * reciprocity — spare capacity provided vs consumed, normalised by stake;
//  * free-rider detection — parties that consume meaningfully but provide
//    (almost) nothing relative to their consumption.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/scheduler.hpp"

namespace mpleo::core {

// Jain's index: (sum x)^2 / (n * sum x^2), in (0, 1]; 1 = perfectly fair.
// Empty or all-zero input yields 1 (nothing to be unfair about).
[[nodiscard]] double jain_fairness_index(std::span<const double> allocations) noexcept;

struct Reciprocity {
  double provided_seconds = 0.0;
  double consumed_seconds = 0.0;
  // provided / consumed; +inf-free: pure providers report consumed==0 via
  // is_pure_provider(), ratio() returns provided when consumed is 0.
  [[nodiscard]] double ratio() const noexcept {
    return consumed_seconds > 0.0 ? provided_seconds / consumed_seconds
                                  : provided_seconds;
  }
  [[nodiscard]] bool is_pure_provider() const noexcept {
    return consumed_seconds == 0.0 && provided_seconds > 0.0;
  }
};

// Per-party reciprocity extracted from a schedule run.
[[nodiscard]] std::vector<Reciprocity> reciprocity_by_party(
    const net::ScheduleResult& usage);

struct FreeRiderPolicy {
  double min_consumed_seconds = 600.0;  // ignore parties that barely used spare
  double min_ratio = 0.1;               // provide at least 10% of what you consume
};

// Party indices flagged as free riders under the policy.
[[nodiscard]] std::vector<std::size_t> detect_free_riders(
    const net::ScheduleResult& usage, const FreeRiderPolicy& policy = {});

// Fairness of received service (own + spare seconds per party).
[[nodiscard]] double service_fairness(const net::ScheduleResult& usage) noexcept;

}  // namespace mpleo::core
