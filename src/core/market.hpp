// Open data market for spare capacity (§3.2, §4 "Market design").
//
// A simple call market: providers post asks (capacity at a price), consumers
// post bids (demand with a price limit), and clearing matches the cheapest
// asks to the highest bids while bid >= ask, settling through the ledger at
// the midpoint price. This is the "dynamically set prices, leading to open
// data markets" instantiation; StaticPricing is the "predetermined" one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/ledger.hpp"

namespace mpleo::core {

struct Ask {
  std::uint32_t provider_party = 0;
  AccountId provider_account = 0;
  double capacity_gb = 0.0;       // capacity on offer
  double price_per_gb = 0.0;      // reserve price
};

struct Bid {
  std::uint32_t consumer_party = 0;
  AccountId consumer_account = 0;
  double demand_gb = 0.0;
  double limit_price_per_gb = 0.0;
};

struct Trade {
  std::uint32_t provider_party = 0;
  std::uint32_t consumer_party = 0;
  double quantity_gb = 0.0;
  double price_per_gb = 0.0;     // midpoint of ask and bid
  bool settled = false;          // ledger transfer succeeded
};

struct ClearingResult {
  std::vector<Trade> trades;
  double cleared_gb = 0.0;
  double cleared_value = 0.0;          // sum of settled trade values
  double unmatched_demand_gb = 0.0;
  double unmatched_supply_gb = 0.0;
  // Quantity-weighted average settled price; 0 when nothing cleared.
  [[nodiscard]] double average_price() const noexcept {
    return cleared_gb > 0.0 ? cleared_value / cleared_gb : 0.0;
  }
};

class CapacityMarket {
 public:
  void post_ask(Ask ask);
  void post_bid(Bid bid);

  [[nodiscard]] const std::vector<Ask>& asks() const noexcept { return asks_; }
  [[nodiscard]] const std::vector<Bid>& bids() const noexcept { return bids_; }

  // Clears the book: price-priority matching, partial fills allowed, payments
  // executed on `ledger`. Unsettleable trades (insufficient balance) are
  // recorded with settled=false and their quantity returns to the book's
  // unmatched totals. The book is emptied.
  [[nodiscard]] ClearingResult clear(Ledger& ledger);

  // Quarantine-aware clearing: asks and bids posted by parties flagged in
  // `excluded_parties` (byte per party id; indices beyond the span are not
  // excluded) are pulled from the book before matching and surface in the
  // unmatched supply/demand totals — the market degrades gracefully instead
  // of trading with sanctioned members. An empty span is bit-identical to
  // clear(ledger).
  [[nodiscard]] ClearingResult clear(Ledger& ledger,
                                     std::span<const std::uint8_t> excluded_parties);

 private:
  std::vector<Ask> asks_;
  std::vector<Bid> bids_;
};

}  // namespace mpleo::core
