// Double-entry token ledger mediating MP-LEO's financial exchanges (§3.2).
//
// Every value movement is a transfer between two accounts, so the invariant
//   sum(all balances) == total minted
// holds at all times and is checked in debug builds. Accounts cannot go
// negative: a transfer exceeding the payer's balance is rejected, which is
// how "participants with more satellites earn more" stays an accounting fact
// rather than an assumption.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpleo::core {

using AccountId = std::uint32_t;

struct LedgerEntry {
  std::uint64_t sequence = 0;
  AccountId from = 0;
  AccountId to = 0;
  double amount = 0.0;
  std::string memo;
};

class Ledger {
 public:
  // The treasury (account 0) is created implicitly; tokens are minted into it.
  Ledger();

  AccountId open_account(std::string name);

  // Mints `amount` new tokens into the treasury. Precondition: amount >= 0.
  void mint(double amount, const std::string& memo = "mint");

  // Transfers; returns false (and records nothing) when the payer's balance
  // is insufficient or an account is unknown. Precondition: amount >= 0.
  [[nodiscard]] bool transfer(AccountId from, AccountId to, double amount,
                              std::string memo = {});

  // Treasury payout helper (rewards): treasury -> account.
  [[nodiscard]] bool reward(AccountId to, double amount, std::string memo = {});

  [[nodiscard]] double balance(AccountId account) const;
  [[nodiscard]] double total_minted() const noexcept { return minted_; }
  [[nodiscard]] double sum_of_balances() const noexcept;
  [[nodiscard]] std::size_t account_count() const noexcept { return balances_.size(); }
  [[nodiscard]] const std::string& account_name(AccountId account) const;
  [[nodiscard]] const std::vector<LedgerEntry>& entries() const noexcept { return entries_; }

  static constexpr AccountId kTreasury = 0;

 private:
  std::vector<double> balances_;
  std::vector<std::string> names_;
  std::vector<LedgerEntry> entries_;
  double minted_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace mpleo::core
