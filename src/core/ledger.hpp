// Double-entry token ledger mediating MP-LEO's financial exchanges (§3.2).
//
// Every value movement is a transfer between two accounts, so the invariant
//   sum(all balances) == total minted
// holds at all times and is checked in debug builds. Accounts cannot go
// negative: a transfer exceeding the payer's balance is rejected, which is
// how "participants with more satellites earn more" stays an accounting fact
// rather than an assumption.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

namespace mpleo::core {

using AccountId = std::uint32_t;

struct LedgerEntry {
  std::uint64_t sequence = 0;
  AccountId from = 0;
  AccountId to = 0;
  double amount = 0.0;
  std::string memo;

  friend bool operator==(const LedgerEntry&, const LedgerEntry&) = default;
};

class Ledger {
 public:
  // The treasury (account 0) is created implicitly; tokens are minted into it.
  Ledger();

  AccountId open_account(std::string name);

  // Mints `amount` new tokens into the treasury. Precondition: amount >= 0.
  void mint(double amount, const std::string& memo = "mint");

  // Transfers; returns false (and records nothing) when the payer's balance
  // is insufficient or an account is unknown. Precondition: amount >= 0.
  [[nodiscard]] bool transfer(AccountId from, AccountId to, double amount,
                              std::string memo = {});

  // Treasury payout helper (rewards): treasury -> account.
  [[nodiscard]] bool reward(AccountId to, double amount, std::string memo = {});

  // Receipt-keyed treasury payout: pays exactly once per receipt hash.
  // Returns false (recording nothing) when `receipt_hash` was already
  // credited — the double-submission guard proof-of-coverage rides on. On
  // the first submission the hash is consumed even if the treasury cannot
  // cover the payout (a failed reward does not re-open the receipt).
  bool credit_receipt(AccountId to, double amount, std::uint64_t receipt_hash,
                      std::string memo = {});
  [[nodiscard]] bool receipt_credited(std::uint64_t receipt_hash) const {
    return credited_receipts_.contains(receipt_hash);
  }
  [[nodiscard]] std::size_t credited_receipt_count() const noexcept {
    return credited_receipts_.size();
  }

  [[nodiscard]] double balance(AccountId account) const;
  [[nodiscard]] double total_minted() const noexcept { return minted_; }
  [[nodiscard]] double sum_of_balances() const noexcept;
  [[nodiscard]] std::size_t account_count() const noexcept { return balances_.size(); }
  [[nodiscard]] const std::string& account_name(AccountId account) const;
  [[nodiscard]] const std::vector<LedgerEntry>& entries() const noexcept { return entries_; }

  static constexpr AccountId kTreasury = 0;

  // Text serialization with hexfloat amounts, so a round trip reproduces
  // every balance and entry bit-exactly (doubles included). The format is
  // line-oriented ("mpleo-ledger v1" header; memos/names are
  // rest-of-line). deserialize throws std::invalid_argument on malformed
  // input.
  void serialize(std::ostream& out) const;
  [[nodiscard]] static Ledger deserialize(std::istream& in);

  friend bool operator==(const Ledger&, const Ledger&) = default;

 private:
  std::vector<double> balances_;
  std::vector<std::string> names_;
  std::vector<LedgerEntry> entries_;
  std::unordered_set<std::uint64_t> credited_receipts_;
  double minted_ = 0.0;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace mpleo::core
