#include "core/chaos_sweep.hpp"

#include <cmath>
#include <utility>

#include "net/scheduler.hpp"
#include "obs/metrics.hpp"
#include "sim/run_context.hpp"
#include "sim/workload.hpp"

namespace mpleo::core {
namespace {

// The centralized twin: the identical fleet with every owner collapsed to
// party 0, so the only degree of freedom between the two topologies is who
// owns what — satellites, orbits, sites and radios are shared bit-for-bit
// (and so are the event book's draws, which key on asset indices).
sim::Workload centralize(sim::Workload workload) {
  for (constellation::Satellite& sat : workload.satellites) sat.owner_party = 0;
  for (net::Terminal& terminal : workload.terminals) terminal.owner_party = 0;
  for (net::GroundStation& station : workload.stations) station.owner_party = 0;
  workload.party_count = 1;
  return workload;
}

net::ScheduleResult replay(const sim::Workload& workload,
                           const net::DegradationPolicy& policy,
                           const orbit::TimeGrid& grid,
                           const fault::FaultTimeline* faults, bool keep_steps,
                           sim::RunContext& context) {
  net::SchedulerConfig config = workload.scheduler;
  config.degradation = policy;
  const net::BentPipeScheduler scheduler(config, workload.satellites,
                                         workload.terminals, workload.stations);
  return scheduler.run(grid, workload.party_count, faults, keep_steps,
                       context.pool());
}

ChaosCell make_cell(fault::EventProfile profile, bool decentralized,
                    const net::ScheduleResult& result) {
  ChaosCell cell;
  cell.profile = profile;
  cell.decentralized = decentralized;
  if (result.slo.has_value()) cell.slo = *result.slo;
  cell.failure_forced_detaches = result.failure_forced_detaches;
  cell.reacquisition_wait_seconds = result.reacquisition_wait_seconds;
  double sum = 0.0;
  for (const double seconds : cell.slo.recovery_seconds) {
    sum += seconds;
    cell.max_recovery_s = std::max(cell.max_recovery_s, seconds);
  }
  if (!cell.slo.recovery_seconds.empty()) {
    cell.mean_recovery_s =
        sum / static_cast<double>(cell.slo.recovery_seconds.size());
  }
  return cell;
}

// Full structural equality of two kept-steps runs: link-by-link (order
// included), unserved sets, and the per-party aggregates. This is the
// empty-book identity the chaos bench gates on.
bool identical_runs(const net::ScheduleResult& a, const net::ScheduleResult& b) {
  if (a.steps.size() != b.steps.size()) return false;
  for (std::size_t s = 0; s < a.steps.size(); ++s) {
    const net::StepSchedule& sa = a.steps[s];
    const net::StepSchedule& sb = b.steps[s];
    if (sa.step != sb.step || sa.links.size() != sb.links.size() ||
        sa.unserved_terminals != sb.unserved_terminals) {
      return false;
    }
    for (std::size_t k = 0; k < sa.links.size(); ++k) {
      const net::LinkAssignment& la = sa.links[k];
      const net::LinkAssignment& lb = sb.links[k];
      if (la.terminal_index != lb.terminal_index ||
          la.satellite_index != lb.satellite_index ||
          la.station_index != lb.station_index ||
          la.capacity_bps != lb.capacity_bps || la.spare != lb.spare) {
        return false;
      }
    }
  }
  if (a.total_served_seconds != b.total_served_seconds ||
      a.total_unserved_seconds != b.total_unserved_seconds ||
      a.failure_forced_detaches != b.failure_forced_detaches ||
      a.per_party.size() != b.per_party.size()) {
    return false;
  }
  for (std::size_t p = 0; p < a.per_party.size(); ++p) {
    if (a.per_party[p].own_link_seconds != b.per_party[p].own_link_seconds ||
        a.per_party[p].spare_used_seconds != b.per_party[p].spare_used_seconds ||
        a.per_party[p].unserved_terminal_seconds !=
            b.per_party[p].unserved_terminal_seconds) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::vector<core::ConfigIssue> ChaosSweepConfig::validate() const {
  std::vector<core::ConfigIssue> issues;
  const auto add = [&issues](const char* field, std::string message) {
    issues.push_back({"core.chaos_sweep", field, std::move(message)});
  };
  if (!(duration_s > 0.0) || duration_s > 1e300) {
    add("duration_s", "must be finite and > 0");
  }
  if (!(step_s > 0.0) || step_s > 1e300) add("step_s", "must be finite and > 0");
  if (!(elevation_mask_deg >= 0.0) || !(elevation_mask_deg < 90.0)) {
    add("elevation_mask_deg", "must be in [0, 90)");
  }
  if (!(event_intensity >= 0.0) || event_intensity > 1e300) {
    add("event_intensity", "must be finite and >= 0");
  }
  if (profiles.empty()) add("profiles", "must name at least one event profile");
  for (const fault::EventProfile profile : profiles) {
    if (profile == fault::EventProfile::kOff) {
      add("profiles", "kOff is not a chaos cell (the identity pair covers it)");
      break;
    }
  }
  if (slo_window_steps == 0) add("slo_window_steps", "must be > 0");
  for (core::ConfigIssue& issue : policy.validate()) {
    issues.push_back(std::move(issue));
  }
  return issues;
}

ChaosSweepResult chaos_sweep(const ChaosSweepConfig& config,
                             sim::RunContext& context) {
  core::throw_if_invalid("core::chaos_sweep", config.validate());

  sim::Scenario scenario;
  scenario.duration_s = config.duration_s;
  scenario.step_s = config.step_s;
  scenario.elevation_mask_deg = config.elevation_mask_deg;
  const sim::Workload decentralized = sim::build_workload(scenario);
  const sim::Workload centralized = centralize(decentralized);
  const orbit::TimeGrid grid = scenario.grid();

  net::DegradationPolicy policy = config.policy;
  policy.slo_window_steps = config.slo_window_steps;

  obs::Counter cells_counter = context.metrics().counter("chaos_sweep.cells");
  obs::Counter events_counter = context.metrics().counter("chaos_sweep.events");

  ChaosSweepResult result;
  for (const fault::EventProfile profile : config.profiles) {
    const fault::EventBook book = fault::EventBook::preset(
        profile, grid.duration_seconds(), config.event_seed,
        config.event_intensity);
    events_counter.add(book.event_count());
    for (const bool dec : {true, false}) {
      const sim::Workload& workload = dec ? decentralized : centralized;
      const fault::FaultTimeline timeline =
          book.compile(grid, workload.satellites, workload.stations);
      const net::ScheduleResult run =
          replay(workload, policy, grid, &timeline, false, context);
      result.cells.push_back(make_cell(profile, dec, run));
      cells_counter.add(1);
    }
  }

  // Empty-book identity: an empty book compiled onto a fresh timeline plus a
  // disabled policy must replay bit-identically to the plain fault-free run.
  {
    const fault::EventBook empty_book(config.event_seed);
    const fault::FaultTimeline empty_timeline = empty_book.compile(
        grid, decentralized.satellites, decentralized.stations);
    const net::DegradationPolicy disabled;
    const net::ScheduleResult with_book =
        replay(decentralized, disabled, grid, &empty_timeline, true, context);
    const net::ScheduleResult baseline =
        replay(decentralized, disabled, grid, nullptr, true, context);
    result.empty_book_identity = identical_runs(with_book, baseline);
  }

  // Hysteresis A/B: the decentralized storm cell with the sweep policy's
  // spare margin vs the same policy with the margin zeroed. Flap counts come
  // from the SLO section, so both runs keep it engaged.
  {
    const fault::EventBook storm_book = fault::EventBook::preset(
        fault::EventProfile::kStorm, grid.duration_seconds(), config.event_seed,
        config.event_intensity);
    const fault::FaultTimeline storm_timeline = storm_book.compile(
        grid, decentralized.satellites, decentralized.stations);
    net::DegradationPolicy margin_off = policy;
    margin_off.spare_hysteresis_margin = 0.0;
    const net::ScheduleResult on =
        replay(decentralized, policy, grid, &storm_timeline, false, context);
    const net::ScheduleResult off =
        replay(decentralized, margin_off, grid, &storm_timeline, false, context);
    result.storm_flaps_hysteresis_on = on.slo.has_value() ? on.slo->grant_flaps : 0;
    result.storm_flaps_hysteresis_off =
        off.slo.has_value() ? off.slo->grant_flaps : 0;
  }

  return result;
}

}  // namespace mpleo::core
