// Pricing of spare capacity (§3.2): prices "can be dynamically set, leading
// to open data markets, or they can be predetermined".
#pragma once

#include <algorithm>

namespace mpleo::core {

// Predetermined tariff: flat rates per carried gigabyte and per connected
// minute of spare capacity.
struct StaticPricing {
  double tokens_per_gb = 8.0;
  double tokens_per_minute = 0.5;

  [[nodiscard]] double price_for(double bytes, double seconds) const noexcept {
    return tokens_per_gb * bytes / 1e9 + tokens_per_minute * seconds / 60.0;
  }
};

// Utilization-responsive price: multiplies a base tariff by a factor driven
// by demand/supply, clamped to [min_multiplier, max_multiplier]. At
// utilization == target the multiplier is 1 (the market-clearing anchor);
// scarcity raises price linearly, slack lowers it.
class DynamicPricing {
 public:
  struct Config {
    StaticPricing base;
    double target_utilization = 0.6;
    double sensitivity = 2.0;      // slope of the multiplier around target
    double min_multiplier = 0.25;
    double max_multiplier = 4.0;
  };

  explicit DynamicPricing(Config config) : config_(config) {}

  // utilization in [0, 1]: offered-demand / available-spare-capacity.
  [[nodiscard]] double multiplier(double utilization) const noexcept {
    const double m =
        1.0 + config_.sensitivity * (utilization - config_.target_utilization);
    return std::clamp(m, config_.min_multiplier, config_.max_multiplier);
  }

  [[nodiscard]] double price_for(double bytes, double seconds,
                                 double utilization) const noexcept {
    return config_.base.price_for(bytes, seconds) * multiplier(utilization);
  }

  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
};

}  // namespace mpleo::core
