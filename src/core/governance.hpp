// Multi-party control (§4): "space-based trusted execution environments…
// can potentially be utilized to provide cryptographic guarantees on what
// runs on the satellite and how they are controlled (e.g., by consensus
// from multiple parties)."
//
// Model: shared-infrastructure satellites register a quorum policy (M-of-N
// council parties). Sensitive commands (deorbit, beam reconfiguration,
// software update) require M distinct, cryptographically bound approvals
// before the (simulated) TEE executes them. Approvals are keyed digests over
// (command id, action, satellite, approver) — the same simulated-MAC
// primitive proof-of-coverage uses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "constellation/shell.hpp"
#include "core/party.hpp"

namespace mpleo::core {

enum class CommandAction {
  kBeamReconfigure,
  kSoftwareUpdate,
  kSafeMode,
  kDeorbit,
};

[[nodiscard]] const char* to_string(CommandAction action) noexcept;

struct QuorumPolicy {
  std::vector<PartyId> council;  // the N parties with a vote
  std::size_t required = 1;      // M approvals needed

  [[nodiscard]] bool valid() const noexcept {
    return required >= 1 && required <= council.size();
  }
};

struct Approval {
  PartyId approver = 0;
  std::uint64_t signature = 0;  // keyed digest over the command
};

enum class CommandStatus {
  kPending,    // collecting approvals
  kAuthorized, // quorum met; executed
  kRejected,   // invalid approval or non-council approver
};

struct CommandRecord {
  std::uint64_t command_id = 0;
  constellation::SatelliteId satellite = 0;
  CommandAction action = CommandAction::kBeamReconfigure;
  std::vector<Approval> approvals;
  CommandStatus status = CommandStatus::kPending;
};

class CommandAuthority {
 public:
  // Registers a satellite under a quorum policy. Party keys are derived from
  // `authority_seed` and handed back to the parties out of band; here each
  // party's key is retrievable via party_key() (tests act as all parties).
  CommandAuthority(QuorumPolicy policy, std::uint64_t authority_seed);

  [[nodiscard]] const QuorumPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] std::uint64_t party_key(PartyId party) const;

  // Opens a command; returns its id.
  std::uint64_t propose(constellation::SatelliteId satellite, CommandAction action);

  // Party side: produce an approval signature for a command.
  [[nodiscard]] static Approval sign(std::uint64_t command_id,
                                     constellation::SatelliteId satellite,
                                     CommandAction action, PartyId approver,
                                     std::uint64_t party_key);

  // Submits an approval. Returns the command's status after processing:
  //  - non-council approvers and bad signatures are rejected (no state change
  //    beyond the audit log);
  //  - duplicate approvals from the same party are idempotent;
  //  - reaching M distinct approvals authorizes (executes) the command.
  CommandStatus approve(std::uint64_t command_id, const Approval& approval);

  [[nodiscard]] std::optional<CommandRecord> record(std::uint64_t command_id) const;
  [[nodiscard]] const std::vector<std::string>& audit_log() const noexcept {
    return audit_log_;
  }

 private:
  QuorumPolicy policy_;
  std::uint64_t seed_;
  std::vector<CommandRecord> commands_;
  std::vector<std::string> audit_log_;
  std::uint64_t next_command_id_ = 1;
};

}  // namespace mpleo::core
