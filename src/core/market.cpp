#include "core/market.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpleo::core {

void CapacityMarket::post_ask(Ask ask) {
  if (ask.capacity_gb < 0.0 || ask.price_per_gb < 0.0) {
    throw std::invalid_argument("post_ask: negative capacity or price");
  }
  asks_.push_back(ask);
}

void CapacityMarket::post_bid(Bid bid) {
  if (bid.demand_gb < 0.0 || bid.limit_price_per_gb < 0.0) {
    throw std::invalid_argument("post_bid: negative demand or price");
  }
  bids_.push_back(bid);
}

ClearingResult CapacityMarket::clear(Ledger& ledger) {
  return clear(ledger, {});
}

ClearingResult CapacityMarket::clear(Ledger& ledger,
                                     std::span<const std::uint8_t> excluded_parties) {
  ClearingResult result;

  const auto excluded = [excluded_parties](std::uint32_t party) {
    return party < excluded_parties.size() && excluded_parties[party] != 0;
  };
  if (!excluded_parties.empty()) {
    // Sanctioned orders leave the book before matching; their volume is
    // reported as unmatched so the clearing result still accounts for it.
    std::vector<Ask> kept_asks;
    kept_asks.reserve(asks_.size());
    for (const Ask& ask : asks_) {
      if (excluded(ask.provider_party)) {
        result.unmatched_supply_gb += ask.capacity_gb;
      } else {
        kept_asks.push_back(ask);
      }
    }
    asks_ = std::move(kept_asks);
    std::vector<Bid> kept_bids;
    kept_bids.reserve(bids_.size());
    for (const Bid& bid : bids_) {
      if (excluded(bid.consumer_party)) {
        result.unmatched_demand_gb += bid.demand_gb;
      } else {
        kept_bids.push_back(bid);
      }
    }
    bids_ = std::move(kept_bids);
  }

  std::sort(asks_.begin(), asks_.end(),
            [](const Ask& a, const Ask& b) { return a.price_per_gb < b.price_per_gb; });
  std::sort(bids_.begin(), bids_.end(), [](const Bid& a, const Bid& b) {
    return a.limit_price_per_gb > b.limit_price_per_gb;
  });

  std::size_t ai = 0, bi = 0;
  double ask_left = asks_.empty() ? 0.0 : asks_[0].capacity_gb;
  double bid_left = bids_.empty() ? 0.0 : bids_[0].demand_gb;

  while (ai < asks_.size() && bi < bids_.size()) {
    const Ask& ask = asks_[ai];
    const Bid& bid = bids_[bi];
    if (bid.limit_price_per_gb < ask.price_per_gb) break;  // book crossed no further

    const double quantity = std::min(ask_left, bid_left);
    if (quantity > 0.0) {
      Trade trade;
      trade.provider_party = ask.provider_party;
      trade.consumer_party = bid.consumer_party;
      trade.quantity_gb = quantity;
      trade.price_per_gb = (ask.price_per_gb + bid.limit_price_per_gb) / 2.0;
      const double value = trade.quantity_gb * trade.price_per_gb;
      trade.settled = ledger.transfer(bid.consumer_account, ask.provider_account, value,
                                      "capacity market trade");
      if (trade.settled) {
        result.cleared_gb += quantity;
        result.cleared_value += value;
      } else {
        result.unmatched_demand_gb += quantity;
      }
      result.trades.push_back(trade);
    }

    ask_left -= quantity;
    bid_left -= quantity;
    if (ask_left <= 0.0 && ++ai < asks_.size()) ask_left = asks_[ai].capacity_gb;
    if (bid_left <= 0.0 && ++bi < bids_.size()) bid_left = bids_[bi].demand_gb;
  }

  // Whatever remains on either side is unmatched.
  if (bi < bids_.size()) {
    result.unmatched_demand_gb += bid_left;
    for (std::size_t j = bi + 1; j < bids_.size(); ++j) {
      result.unmatched_demand_gb += bids_[j].demand_gb;
    }
  }
  if (ai < asks_.size()) {
    result.unmatched_supply_gb += ask_left;
    for (std::size_t j = ai + 1; j < asks_.size(); ++j) {
      result.unmatched_supply_gb += asks_[j].capacity_gb;
    }
  }

  asks_.clear();
  bids_.clear();
  return result;
}

}  // namespace mpleo::core
