#include "core/sla.hpp"

#include "fault/timeline.hpp"
#include "obs/metrics.hpp"
#include "sim/run_context.hpp"

namespace mpleo::core {
const char* to_string(SlaClause clause) noexcept {
  switch (clause) {
    case SlaClause::kCoverageFraction: return "coverage-fraction";
    case SlaClause::kMaxGap: return "max-gap";
    case SlaClause::kServedFraction: return "served-fraction";
  }
  return "?";
}

SlaReport evaluate_sla(const SlaTerms& terms, const cov::CoverageStats& coverage) {
  SlaReport report;
  if (coverage.covered_fraction < terms.min_coverage_fraction) {
    report.violations.push_back({SlaClause::kCoverageFraction,
                                 terms.min_coverage_fraction,
                                 coverage.covered_fraction});
  }
  if (coverage.max_gap_seconds > terms.max_gap_seconds) {
    report.violations.push_back(
        {SlaClause::kMaxGap, terms.max_gap_seconds, coverage.max_gap_seconds});
  }
  report.compliant = report.violations.empty();
  report.total_penalty =
      terms.penalty_per_violation * static_cast<double>(report.violations.size());
  return report;
}

SlaReport evaluate_sla(const SlaTerms& terms, const cov::CoverageStats& coverage,
                       const net::PartyUsage& usage, double window_seconds) {
  SlaReport report = evaluate_sla(terms, coverage);
  if (terms.min_served_fraction > 0.0 && window_seconds > 0.0) {
    const double served =
        (usage.own_link_seconds + usage.spare_used_seconds) / window_seconds;
    if (served < terms.min_served_fraction) {
      report.violations.push_back(
          {SlaClause::kServedFraction, terms.min_served_fraction, served});
      report.compliant = false;
      report.total_penalty += terms.penalty_per_violation;
    }
  }
  return report;
}

SlaReport evaluate_sla(const SlaTerms& terms, cov::VisibilityCache& cache,
                       std::span<const std::size_t> satellite_indices,
                       std::size_t site_index, sim::RunContext& context) {
  obs::ScopedTimer timer(context.metrics().histogram("sla.evaluate_seconds"));
  if (context.pool() != nullptr) cache.precompute_all(context.pool());
  const cov::StepMask mask =
      cache.union_mask(satellite_indices, site_index, context.faults());
  const SlaReport report = evaluate_sla(terms, cache.engine().stats(mask));
  context.metrics().counter("sla.evaluations").add(1);
  context.metrics().counter("sla.violations").add(report.violations.size());
  return report;
}

bool settle_sla_penalty(const SlaReport& report, Ledger& ledger, AccountId provider,
                        AccountId customer) {
  if (report.total_penalty <= 0.0) return true;
  return ledger.transfer(provider, customer, report.total_penalty, "SLA penalty");
}

}  // namespace mpleo::core
