// Settlement: turns the scheduler's per-party usage aggregates into ledger
// transfers — consumers of spare capacity pay the providers (§3.2: "consumers
// pay satellite operators to carry traffic, in proportion to utilization").
#pragma once

#include <vector>

#include "core/ledger.hpp"
#include "core/pricing.hpp"
#include "net/scheduler.hpp"

namespace mpleo::core {

struct SettlementConfig {
  StaticPricing pricing;
  // When set, the dynamic multiplier from system-wide spare utilization is
  // applied on top of the static tariff.
  bool dynamic = false;
  DynamicPricing::Config dynamic_config{};
};

struct PartySettlement {
  double paid = 0.0;     // tokens this party paid for spare capacity it used
  double earned = 0.0;   // tokens this party earned carrying others' traffic
};

struct SettlementReport {
  std::vector<PartySettlement> per_party;
  double total_cleared = 0.0;     // sum of all payments
  double utilization = 0.0;       // spare-used / (spare-used + unserved), [0,1]
  double price_multiplier = 1.0;  // dynamic multiplier actually applied
  std::size_t failed_transfers = 0;  // payments rejected for insufficient funds
};

// Computes payments from `usage` and executes them on `ledger`.
// `party_accounts[i]` is the ledger account of party i; arity must match
// usage.per_party. Payments are proportional: a consumer's payment is split
// across providers by their share of spare_provided_seconds.
[[nodiscard]] SettlementReport settle(const net::ScheduleResult& usage,
                                      const std::vector<AccountId>& party_accounts,
                                      const SettlementConfig& config, Ledger& ledger);

}  // namespace mpleo::core
