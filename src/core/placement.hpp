// Incremental placement (§3.3): where should the next satellite go?
//
// The paper's finding: marginal population-weighted coverage gain is
// maximized by placing new satellites *far* from existing ones — different
// phase, plane, or inclination — and this incentive-aligned placement is
// exactly what also makes the constellation robust to withdrawals.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "constellation/designer.hpp"
#include "constellation/shell.hpp"
#include "coverage/engine.hpp"

namespace mpleo::util {
class ThreadPool;
}

namespace mpleo::core {

struct PlacementEvaluation {
  constellation::CandidateSlot slot;
  double base_weighted_seconds = 0.0;
  double gained_weighted_seconds = 0.0;  // marginal coverage from adding the slot
};

class PlacementOptimizer {
 public:
  // `engine` and `sites` define the coverage objective (typically the
  // population-weighted 21-city set).
  PlacementOptimizer(const cov::CoverageEngine& engine,
                     std::span<const cov::GroundSite> sites);

  // Marginal weighted coverage (seconds) of adding `candidate` to `base`.
  [[nodiscard]] double marginal_gain_seconds(
      std::span<const constellation::Satellite> base,
      const orbit::ClassicalElements& candidate, orbit::TimePoint candidate_epoch) const;

  // Evaluates every candidate against the same base; results are returned in
  // candidate order (not sorted) so callers can plot sweeps (Fig. 4b).
  [[nodiscard]] std::vector<PlacementEvaluation> evaluate(
      std::span<const constellation::Satellite> base,
      std::span<const constellation::CandidateSlot> candidates,
      orbit::TimePoint candidate_epoch) const;

  // Greedy gap-filling: picks `count` slots one at a time, each maximizing
  // marginal gain against base + previous picks. Returns picks in order.
  // Candidate masks are computed once (in parallel across candidates when a
  // pool is given) and reused across rounds; results are identical to
  // re-evaluating every round.
  [[nodiscard]] std::vector<PlacementEvaluation> plan_incremental(
      std::vector<constellation::Satellite> base,
      std::span<const constellation::CandidateSlot> candidates,
      orbit::TimePoint candidate_epoch, std::size_t count,
      util::ThreadPool* pool = nullptr) const;

 private:
  // Per-site union masks of a satellite set (the reusable part of the eval).
  [[nodiscard]] std::vector<cov::StepMask> union_masks(
      std::span<const constellation::Satellite> satellites) const;

  const cov::CoverageEngine* engine_;
  std::vector<cov::GroundSite> sites_;
  std::vector<double> weights_;  // normalised
};

}  // namespace mpleo::core
