#include "core/pricing.hpp"

// Pricing is header-only arithmetic; this TU anchors the module.
