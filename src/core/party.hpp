// Parties: the countries, ISPs, and companies that contribute satellites to
// an MP-LEO constellation (§1, §3).
#pragma once

#include <cstdint>
#include <string>

#include "orbit/geodesy.hpp"

namespace mpleo::core {

using PartyId = std::uint32_t;

enum class PartyKind {
  kCountry,   // optimizes for connectivity in its own region
  kCompany,   // optimizes for profit
};

// §3.2: participants either maximize profit or regional connectivity; the
// paper observes the two are correlated but not identical.
enum class Objective {
  kGlobalCoverage,
  kRegionalCoverage,
  kProfit,
};

struct Party {
  PartyId id = 0;
  std::string name;
  PartyKind kind = PartyKind::kCountry;
  Objective objective = Objective::kRegionalCoverage;
  // Service region anchor (used by regional-objective placement and by the
  // GSaaS helper to lease nearby ground stations).
  orbit::Geodetic home_region;
  bool active = true;
};

[[nodiscard]] const char* to_string(PartyKind kind) noexcept;
[[nodiscard]] const char* to_string(Objective objective) noexcept;

}  // namespace mpleo::core
