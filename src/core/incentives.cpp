#include "core/incentives.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "coverage/engine.hpp"

namespace mpleo::core {

std::vector<double> reward_multipliers(std::span<const double> cell_coverage,
                                       const IncentiveConfig& config) {
  if (config.base_rate < 0.0 || config.hole_boost < 0.0 || config.gamma <= 0.0) {
    throw std::invalid_argument("reward_multipliers: invalid config");
  }
  std::vector<double> multipliers;
  multipliers.reserve(cell_coverage.size());
  for (double covered : cell_coverage) {
    const double deficit = std::clamp(1.0 - covered, 0.0, 1.0);
    multipliers.push_back(config.base_rate *
                          (1.0 + config.hole_boost * std::pow(deficit, config.gamma)));
  }
  return multipliers;
}

double expected_reward_rate(const cov::CoverageEngine& engine,
                            const cov::EarthGrid& grid,
                            std::span<const double> multipliers,
                            const constellation::Satellite& satellite) {
  return expected_reward_rate(engine, grid, multipliers, engine.ephemeris(satellite));
}

double expected_reward_rate(const cov::CoverageEngine& engine,
                            const cov::EarthGrid& grid,
                            std::span<const double> multipliers,
                            const orbit::EphemerisTable& ephemeris) {
  if (multipliers.size() != grid.size()) {
    throw std::invalid_argument("expected_reward_rate: arity mismatch");
  }
  std::vector<cov::GroundSite> sites;
  sites.reserve(grid.size());
  for (const cov::EarthGrid::Cell& cell : grid.cells()) {
    sites.push_back({"cell", orbit::TopocentricFrame(cell.center), cell.area_weight});
  }
  const std::vector<cov::StepMask> per_cell = engine.visibility_masks(ephemeris, sites);

  double rate = 0.0;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    rate += grid.cells()[c].area_weight * multipliers[c] * per_cell[c].fraction();
  }
  return rate;
}

}  // namespace mpleo::core
