#include "core/allocation.hpp"

#include <stdexcept>

namespace mpleo::core {

SettlementReport settle(const net::ScheduleResult& usage,
                        const std::vector<AccountId>& party_accounts,
                        const SettlementConfig& config, Ledger& ledger) {
  const std::size_t n = usage.per_party.size();
  if (party_accounts.size() != n) {
    throw std::invalid_argument("settle: account/party arity mismatch");
  }

  SettlementReport report;
  report.per_party.resize(n);

  // System-wide spare utilization drives the dynamic multiplier.
  double spare_used = 0.0;
  double unserved = 0.0;
  double provided_total = 0.0;
  for (const net::PartyUsage& u : usage.per_party) {
    spare_used += u.spare_used_seconds;
    unserved += u.unserved_terminal_seconds;
    provided_total += u.spare_provided_seconds;
  }
  const double demand = spare_used + unserved;
  report.utilization = demand > 0.0 ? spare_used / demand : 0.0;

  report.price_multiplier = 1.0;
  if (config.dynamic) {
    report.price_multiplier =
        DynamicPricing(config.dynamic_config).multiplier(report.utilization);
  }

  if (provided_total <= 0.0) return report;  // nothing to clear

  for (std::size_t consumer = 0; consumer < n; ++consumer) {
    const net::PartyUsage& cu = usage.per_party[consumer];
    const double owed = config.pricing.price_for(cu.bytes_received_from_others,
                                                 cu.spare_used_seconds) *
                        report.price_multiplier;
    if (owed <= 0.0) continue;

    // Split the payment across providers by provided-seconds share.
    for (std::size_t provider = 0; provider < n; ++provider) {
      if (provider == consumer) continue;
      const double share =
          usage.per_party[provider].spare_provided_seconds / provided_total;
      const double amount = owed * share;
      if (amount <= 0.0) continue;
      if (ledger.transfer(party_accounts[consumer], party_accounts[provider], amount,
                          "spare-capacity settlement")) {
        report.per_party[consumer].paid += amount;
        report.per_party[provider].earned += amount;
        report.total_cleared += amount;
      } else {
        ++report.failed_transfers;
      }
    }
  }
  return report;
}

}  // namespace mpleo::core
