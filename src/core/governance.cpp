#include "core/governance.hpp"

#include <algorithm>
#include <stdexcept>

namespace mpleo::core {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0x100000001B3ULL;
  return h;
}

std::uint64_t command_digest(std::uint64_t key, std::uint64_t command_id,
                             constellation::SatelliteId satellite, CommandAction action,
                             PartyId approver) noexcept {
  std::uint64_t h = key ^ 0xC0FFEE;
  h = mix(h, command_id);
  h = mix(h, satellite);
  h = mix(h, static_cast<std::uint64_t>(action));
  h = mix(h, approver);
  return h;
}

}  // namespace

const char* to_string(CommandAction action) noexcept {
  switch (action) {
    case CommandAction::kBeamReconfigure: return "beam-reconfigure";
    case CommandAction::kSoftwareUpdate: return "software-update";
    case CommandAction::kSafeMode: return "safe-mode";
    case CommandAction::kDeorbit: return "deorbit";
  }
  return "?";
}

CommandAuthority::CommandAuthority(QuorumPolicy policy, std::uint64_t authority_seed)
    : policy_(std::move(policy)), seed_(authority_seed) {
  if (!policy_.valid()) {
    throw std::invalid_argument("CommandAuthority: invalid quorum policy");
  }
}

std::uint64_t CommandAuthority::party_key(PartyId party) const {
  const bool on_council =
      std::find(policy_.council.begin(), policy_.council.end(), party) !=
      policy_.council.end();
  if (!on_council) {
    throw std::invalid_argument("CommandAuthority::party_key: party not on council");
  }
  return mix(seed_ ^ 0x5EED, party);
}

std::uint64_t CommandAuthority::propose(constellation::SatelliteId satellite,
                                        CommandAction action) {
  CommandRecord record;
  record.command_id = next_command_id_++;
  record.satellite = satellite;
  record.action = action;
  commands_.push_back(record);
  audit_log_.push_back("proposed #" + std::to_string(record.command_id) + " " +
                       to_string(action) + " on sat " + std::to_string(satellite));
  return record.command_id;
}

Approval CommandAuthority::sign(std::uint64_t command_id,
                                constellation::SatelliteId satellite,
                                CommandAction action, PartyId approver,
                                std::uint64_t party_key) {
  return {approver, command_digest(party_key, command_id, satellite, action, approver)};
}

CommandStatus CommandAuthority::approve(std::uint64_t command_id,
                                        const Approval& approval) {
  auto it = std::find_if(commands_.begin(), commands_.end(),
                         [command_id](const CommandRecord& r) {
                           return r.command_id == command_id;
                         });
  if (it == commands_.end()) {
    throw std::out_of_range("CommandAuthority::approve: unknown command");
  }
  CommandRecord& record = *it;
  if (record.status == CommandStatus::kAuthorized) return record.status;

  // Council membership check.
  const bool on_council =
      std::find(policy_.council.begin(), policy_.council.end(), approval.approver) !=
      policy_.council.end();
  if (!on_council) {
    audit_log_.push_back("rejected non-council approval on #" +
                         std::to_string(command_id));
    return CommandStatus::kRejected;
  }

  // Signature check against the approver's derived key.
  const std::uint64_t expected =
      command_digest(mix(seed_ ^ 0x5EED, approval.approver), command_id,
                     record.satellite, record.action, approval.approver);
  if (expected != approval.signature) {
    audit_log_.push_back("rejected bad signature on #" + std::to_string(command_id));
    return CommandStatus::kRejected;
  }

  // Idempotent per party.
  const bool already = std::any_of(
      record.approvals.begin(), record.approvals.end(),
      [&](const Approval& a) { return a.approver == approval.approver; });
  if (!already) {
    record.approvals.push_back(approval);
    audit_log_.push_back("approval from party " + std::to_string(approval.approver) +
                         " on #" + std::to_string(command_id));
  }

  if (record.approvals.size() >= policy_.required) {
    record.status = CommandStatus::kAuthorized;
    audit_log_.push_back("executed #" + std::to_string(command_id) + " (" +
                         to_string(record.action) + ")");
  }
  return record.status;
}

std::optional<CommandRecord> CommandAuthority::record(std::uint64_t command_id) const {
  for (const CommandRecord& r : commands_) {
    if (r.command_id == command_id) return r;
  }
  return std::nullopt;
}

}  // namespace mpleo::core
