// Structured input validation for the core layer.
//
// The consortium/quarantine surfaces take fraction- and stake-valued inputs
// from configuration and command lines; silently clamping a negative stake
// or a fraction of 1.7 hides operator errors behind plausible-looking
// results. ValidationError carries the offending field name and value so
// callers (and CI logs) see exactly which knob was wrong.
#pragma once

#include <stdexcept>
#include <string>

namespace mpleo::core {

class ValidationError : public std::invalid_argument {
 public:
  ValidationError(std::string field, double value, const std::string& requirement)
      : std::invalid_argument(field + " = " + std::to_string(value) + " " + requirement),
        field_(std::move(field)),
        value_(value) {}

  [[nodiscard]] const std::string& field() const noexcept { return field_; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  std::string field_;
  double value_;
};

// Requires value in [0, 1] (a stake share, slash fraction, byzantine
// fraction...). NaN fails both bounds checks and is rejected.
inline double require_fraction(double value, const char* field) {
  if (!(value >= 0.0) || !(value <= 1.0)) {
    throw ValidationError(field, value, "must be a fraction in [0, 1]");
  }
  return value;
}

// Requires value >= 0 and finite (a stake, balance, intensity...).
inline double require_non_negative(double value, const char* field) {
  if (!(value >= 0.0) || value > 1e300) {
    throw ValidationError(field, value, "must be finite and >= 0");
  }
  return value;
}

}  // namespace mpleo::core
