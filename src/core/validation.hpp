// Structured input validation shared by every configuration surface.
//
// Two complementary tools live here:
//
//  * ConfigIssue — the one issue record every config struct's `validate()`
//    returns. rf::RfConfigIssue, orbit::TleFieldIssue and the scheduler /
//    scenario validation paths each used to invent their own shape; they are
//    now thin aliases of this type, so a driver can collect issues from any
//    layer into one damage report. `validate()` collects every problem found
//    (not just the first) so an operator fixing a config sees the whole
//    report in one pass; constructing a component from an invalid config
//    throws with every issue joined into the message (throw_if_invalid).
//
//  * ValidationError / require_* — scalar guards for single-value call sites
//    (stakes, fractions) where a full issue list is overkill.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpleo::core {

enum class IssueSeverity : std::uint8_t {
  kWarning,  // suspicious but runnable; reported, never thrown on
  kError,    // the config cannot be used; throw_if_invalid throws
};

[[nodiscard]] const char* to_string(IssueSeverity severity) noexcept;

// One problem found in one configuration field. `component` names the
// owning subsystem ("rf.doppler", "orbit.tle", "net.scheduler",
// "sim.scenario"...), `field` the offending knob within it, and `message`
// the human-readable reason including the offending value.
struct ConfigIssue {
  std::string component;
  std::string field;
  std::string message;
  IssueSeverity severity = IssueSeverity::kError;

  friend bool operator==(const ConfigIssue&, const ConfigIssue&) = default;
};

// True when any issue is an error (warnings alone leave a config usable).
[[nodiscard]] bool has_errors(const std::vector<ConfigIssue>& issues) noexcept;

// Joins issues into one multi-line message: "<context>: N invalid field(s)"
// followed by one "  field: message" line per issue. Empty issues -> "".
[[nodiscard]] std::string format_issues(const std::string& context,
                                        const std::vector<ConfigIssue>& issues);

// Throws std::invalid_argument carrying format_issues(...) when any
// error-severity issue is present; no-op otherwise.
void throw_if_invalid(const std::string& context,
                      const std::vector<ConfigIssue>& issues);

class ValidationError : public std::invalid_argument {
 public:
  ValidationError(std::string field, double value, const std::string& requirement)
      : std::invalid_argument(field + " = " + std::to_string(value) + " " + requirement),
        field_(std::move(field)),
        value_(value) {}

  [[nodiscard]] const std::string& field() const noexcept { return field_; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  std::string field_;
  double value_;
};

// Requires value in [0, 1] (a stake share, slash fraction, byzantine
// fraction...). NaN fails both bounds checks and is rejected.
inline double require_fraction(double value, const char* field) {
  if (!(value >= 0.0) || !(value <= 1.0)) {
    throw ValidationError(field, value, "must be a fraction in [0, 1]");
  }
  return value;
}

// Requires value >= 0 and finite (a stake, balance, intensity...).
inline double require_non_negative(double value, const char* field) {
  if (!(value >= 0.0) || value > 1e300) {
    throw ValidationError(field, value, "must be finite and >= 0");
  }
  return value;
}

}  // namespace mpleo::core
