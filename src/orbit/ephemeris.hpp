// Ephemeris evaluation over a uniform time grid.
//
// The coverage engine evaluates many satellites against the same grid, so
// the per-step sidereal rotation is computed once (GmstTable) and reused for
// every satellite's ECI->ECEF transform.
#pragma once

#include <vector>

#include "orbit/propagator.hpp"
#include "orbit/time.hpp"
#include "util/vec3.hpp"

namespace mpleo::orbit {

// Precomputed cos/sin of GMST at each grid step.
struct GmstTable {
  std::vector<double> cos_gmst;
  std::vector<double> sin_gmst;

  [[nodiscard]] static GmstTable for_grid(const TimeGrid& grid);
  [[nodiscard]] std::size_t size() const noexcept { return cos_gmst.size(); }
};

// ECEF positions of one satellite at every step of `grid`.
[[nodiscard]] std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                                     const TimeGrid& grid,
                                                     const GmstTable& gmst);

// Convenience overload that builds the GmstTable internally (single use).
[[nodiscard]] std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                                     const TimeGrid& grid);

}  // namespace mpleo::orbit
