// Ephemeris evaluation over a uniform time grid.
//
// The coverage engine evaluates many satellites against the same grid, so
// the per-step sidereal rotation is computed once (GmstTable) and reused for
// every satellite's ECI->ECEF transform.
//
// EphemerisTable is the batched form: one satellite propagated once over the
// whole grid into contiguous SoA ECEF buffers. All trigonometry that is
// linear in time (argument of perigee, RAAN, and — for circular orbits —
// the mean anomaly) advances through incremental plane rotations that are
// resynchronised against libm every few dozen steps, so a table costs a
// handful of multiply-adds per step instead of a full element conversion.
// EphemerisSet owns tables for a whole catalog and can fill them in
// parallel across satellites; every visibility consumer (coverage, contact
// plans, ISL, handover, placement) reads these shared tables instead of
// re-propagating.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "orbit/any_propagator.hpp"
#include "orbit/backend.hpp"
#include "orbit/propagator.hpp"
#include "orbit/time.hpp"
#include "orbit/tle.hpp"
#include "util/vec3.hpp"

namespace mpleo::util {
class ThreadPool;
}

namespace mpleo::orbit {

// Precomputed cos/sin of GMST at each grid step.
struct GmstTable {
  std::vector<double> cos_gmst;
  std::vector<double> sin_gmst;

  [[nodiscard]] static GmstTable for_grid(const TimeGrid& grid);
  [[nodiscard]] std::size_t size() const noexcept { return cos_gmst.size(); }
};

// ECEF positions of one satellite at every step of `grid`.
[[nodiscard]] std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                                     const TimeGrid& grid,
                                                     const GmstTable& gmst);

// Convenience overload that builds the GmstTable internally (single use).
[[nodiscard]] std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                                     const TimeGrid& grid);

// For circular orbits the geometry collapses to an exactly linear argument
// of latitude: z(k) = radius * sin_incl * sin(u0 + du * k). Visibility
// kernels use this to enumerate the only grid steps on which a satellite
// can clear a site's latitude band, instead of scanning every step.
struct LinearLatitudeArgument {
  bool valid = false;   // true only for (near-)circular orbits
  double u0 = 0.0;      // argument of latitude at grid step 0, radians
  double du = 0.0;      // per-step advance, radians (positive for bound orbits)
  double sin_incl = 0.0;
  double radius_m = 0.0;  // constant orbital radius
};

// One satellite propagated over a whole grid: contiguous SoA ECEF
// coordinates plus the geocentric radius per step. Positions match the
// pointwise KeplerianPropagator path to well under a millimetre.
class EphemerisTable {
 public:
  EphemerisTable() = default;

  [[nodiscard]] static EphemerisTable compute(const KeplerianPropagator& propagator,
                                              const TimeGrid& grid, const GmstTable& gmst);
  [[nodiscard]] static EphemerisTable compute(const KeplerianPropagator& propagator,
                                              const TimeGrid& grid);
  // Backend-erased overloads: a J2 handle delegates to the specialised path
  // above (bit-identical); SGP4 runs the generic pointwise fill.
  [[nodiscard]] static EphemerisTable compute(const AnyPropagator& propagator,
                                              const TimeGrid& grid, const GmstTable& gmst);
  [[nodiscard]] static EphemerisTable compute(const AnyPropagator& propagator,
                                              const TimeGrid& grid);

  [[nodiscard]] std::size_t size() const noexcept { return x_.size(); }

  [[nodiscard]] util::Vec3 position_ecef(std::size_t step) const noexcept {
    return {x_[step], y_[step], z_[step]};
  }
  [[nodiscard]] std::span<const double> x() const noexcept { return x_; }
  [[nodiscard]] std::span<const double> y() const noexcept { return y_; }
  [[nodiscard]] std::span<const double> z() const noexcept { return z_; }
  // Geocentric distance |position| per step (from the orbit equation, not a
  // recomputed norm).
  [[nodiscard]] std::span<const double> radius_m() const noexcept { return r_; }
  [[nodiscard]] double min_radius_m() const noexcept { return r_min_; }
  [[nodiscard]] double max_radius_m() const noexcept { return r_max_; }

  [[nodiscard]] const LinearLatitudeArgument& latitude_argument() const noexcept {
    return lat_arg_;
  }

 private:
  friend class EphemerisSet;  // lane-batched fill writes the SoA arrays directly

  std::vector<double> x_, y_, z_, r_;
  double r_min_ = 0.0;
  double r_max_ = 0.0;
  LinearLatitudeArgument lat_arg_;
};

// Elements + epoch of one catalog entry, the input to EphemerisSet. Mirrors
// constellation::Satellite without depending on the constellation layer.
// Trailing members default so existing {elements, epoch, perturbation}
// aggregate initialisers keep selecting the J2 analytic backend.
struct EphemerisSpec {
  ClassicalElements elements;
  TimePoint epoch;
  Perturbation perturbation = Perturbation::kJ2Secular;
  PropagatorBackend backend = PropagatorBackend::kJ2Analytic;
  // Source TLE for the SGP4 backend (carries BSTAR drag and the mean-element
  // fit). When absent, a drag-free TLE is synthesised from `elements`.
  std::optional<Tle> tle;

  [[nodiscard]] static EphemerisSpec from_tle(const Tle& tle,
                                              PropagatorBackend backend =
                                                  PropagatorBackend::kSgp4);
};

// Builds the propagator a spec asks for. SGP4 requests whose orbit is
// outside the near-earth SGP4 domain (period >= 225 min) fall back to the J2
// analytic model — the returned handle's backend() reports what actually ran.
[[nodiscard]] AnyPropagator make_propagator(const EphemerisSpec& spec);

// Shared ephemerides of a whole catalog over one grid. Tables are computed
// in parallel across satellites when a thread pool is given; results are
// identical to the serial fill. Circular J2 entries are additionally batched
// four satellites across SIMD lanes when the active SimdMode is AVX2 (see
// orbit/simd.hpp) — the batched fill is bit-identical to the per-satellite
// scalar path by construction.
class EphemerisSet {
 public:
  EphemerisSet() = default;

  [[nodiscard]] static EphemerisSet compute(std::span<const EphemerisSpec> specs,
                                            const TimeGrid& grid,
                                            util::ThreadPool* pool = nullptr);
  // Reuses an existing GmstTable (copied into the set) instead of rebuilding.
  [[nodiscard]] static EphemerisSet compute(std::span<const EphemerisSpec> specs,
                                            const TimeGrid& grid, GmstTable gmst,
                                            util::ThreadPool* pool = nullptr);

  [[nodiscard]] std::size_t size() const noexcept { return tables_.size(); }
  [[nodiscard]] const EphemerisTable& table(std::size_t index) const {
    return tables_.at(index);
  }
  [[nodiscard]] const TimeGrid& grid() const noexcept { return grid_; }
  [[nodiscard]] const GmstTable& gmst() const noexcept { return gmst_; }
  // The backend that actually produced table `index` (kJ2Analytic when an
  // SGP4 request fell back on a deep-space orbit).
  [[nodiscard]] PropagatorBackend backend(std::size_t index) const {
    return backends_.at(index);
  }

 private:
  TimeGrid grid_;
  GmstTable gmst_;
  std::vector<EphemerisTable> tables_;
  std::vector<PropagatorBackend> backends_;
};

}  // namespace mpleo::orbit
