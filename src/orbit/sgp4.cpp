#include "orbit/sgp4.hpp"

#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

// WGS-72 gravity model — the constant set TLEs are generated against.
// Mixing in WGS-84 values would *reduce* accuracy: SGP4 must invert the
// same model the elements were fitted with.
constexpr double kReKm = 6378.135;          // equatorial radius, km
constexpr double kMuKm3PerS2 = 398600.8;    // gravitational parameter
constexpr double kJ2 = 0.001082616;
constexpr double kJ3 = -0.00000253881;
constexpr double kJ4 = -0.00000165597;
constexpr double kJ3OverJ2 = kJ3 / kJ2;
const double kXke = 60.0 / std::sqrt(kReKm * kReKm * kReKm / kMuKm3PerS2);
const double kVKmPerSec = kReKm * kXke / 60.0;

constexpr double kTwoPi = 2.0 * 3.14159265358979323846;
constexpr double kMinutesPerDay = 1440.0;
// Near-earth / deep-space split: periods of 225 minutes and longer take the
// SDP4 branch in the reference implementation.
constexpr double kDeepSpacePeriodMin = 225.0;

struct MeanMotion {
  double no_kozai = 0.0;    // rad/min as published in the TLE
  double no_unkozai = 0.0;  // Brouwer mean motion the model propagates
};

// The TLE mean motion is a Kozai value; SGP4 runs on the Brouwer convention,
// recovered by inverting the first-order J2 relation.
MeanMotion un_kozai(double rev_per_day, double ecco, double inclo) {
  MeanMotion mm;
  mm.no_kozai = rev_per_day * kTwoPi / kMinutesPerDay;
  const double cosio = std::cos(inclo);
  const double eccsq = ecco * ecco;
  const double omeosq = 1.0 - eccsq;
  const double rteosq = std::sqrt(omeosq);
  const double ak = std::pow(kXke / mm.no_kozai, 2.0 / 3.0);
  const double d1 =
      0.75 * kJ2 * (3.0 * cosio * cosio - 1.0) / (rteosq * omeosq);
  double del = d1 / (ak * ak);
  const double adel =
      ak * (1.0 - del * del - del * (1.0 / 3.0 + 134.0 * del * del / 81.0));
  del = d1 / (adel * adel);
  mm.no_unkozai = mm.no_kozai / (1.0 + del);
  return mm;
}

}  // namespace

bool Sgp4Propagator::supports(const Tle& tle) noexcept {
  if (!(tle.mean_motion_rev_per_day > 0.0)) return false;
  if (tle.eccentricity < 0.0 || tle.eccentricity >= 1.0) return false;
  const double period_min = kMinutesPerDay / tle.mean_motion_rev_per_day;
  return period_min < kDeepSpacePeriodMin;
}

Sgp4Propagator::Sgp4Propagator(const Tle& tle) : tle_(tle), epoch_(tle.epoch) {
  if (!(tle.mean_motion_rev_per_day > 0.0)) {
    throw std::invalid_argument("Sgp4Propagator: non-positive mean motion");
  }
  if (tle.eccentricity < 0.0 || tle.eccentricity >= 1.0) {
    throw std::invalid_argument("Sgp4Propagator: eccentricity outside [0, 1)");
  }
  if (!supports(tle)) {
    throw std::invalid_argument(
        "Sgp4Propagator: deep-space orbit (period >= 225 min) requires SDP4, "
        "which this near-earth implementation does not provide");
  }

  ecco_ = tle.eccentricity;
  inclo_ = util::deg_to_rad(tle.inclination_deg);
  nodeo_ = util::deg_to_rad(tle.raan_deg);
  argpo_ = util::deg_to_rad(tle.arg_perigee_deg);
  mo_ = util::deg_to_rad(tle.mean_anomaly_deg);
  bstar_ = tle.bstar;

  const MeanMotion mm = un_kozai(tle.mean_motion_rev_per_day, ecco_, inclo_);
  no_unkozai_ = mm.no_unkozai;

  const double cosio = std::cos(inclo_);
  const double sinio = std::sin(inclo_);
  const double cosio2 = cosio * cosio;
  const double eccsq = ecco_ * ecco_;
  const double omeosq = 1.0 - eccsq;
  const double rteosq = std::sqrt(omeosq);

  ao_ = std::pow(kXke / no_unkozai_, 2.0 / 3.0);
  const double po = ao_ * omeosq;
  const double con42 = 1.0 - 5.0 * cosio2;
  con41_ = -con42 - 2.0 * cosio2;  // 3*cos^2(i) - 1
  const double pinvsq = 1.0 / (po * po);
  const double rp = ao_ * (1.0 - ecco_);  // perigee radius, Earth radii

  // Drag reference altitude: the s4/q0 fit constants shift for perigees
  // below 156 km (Spacetrack Report #3, section 6).
  double sfour = 78.0 / kReKm + 1.0;
  double qzms24 = std::pow((120.0 - 78.0) / kReKm, 4.0);
  const double perige = (rp - 1.0) * kReKm;
  if (perige < 156.0) {
    sfour = perige - 78.0;
    if (perige < 98.0) sfour = 20.0;
    qzms24 = std::pow((120.0 - sfour) / kReKm, 4.0);
    sfour = sfour / kReKm + 1.0;
  }

  const double tsi = 1.0 / (ao_ - sfour);
  eta_ = ao_ * ecco_ * tsi;
  const double etasq = eta_ * eta_;
  const double eeta = ecco_ * eta_;
  const double psisq = std::fabs(1.0 - etasq);
  const double coef = qzms24 * std::pow(tsi, 4.0);
  const double coef1 = coef / std::pow(psisq, 3.5);
  const double cc2 =
      coef1 * no_unkozai_ *
      (ao_ * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq)) +
       0.375 * kJ2 * tsi / psisq * con41_ *
           (8.0 + 3.0 * etasq * (8.0 + etasq)));
  cc1_ = bstar_ * cc2;
  double cc3 = 0.0;
  if (ecco_ > 1.0e-4) {
    cc3 = -2.0 * coef * tsi * kJ3OverJ2 * no_unkozai_ * sinio / ecco_;
  }
  x1mth2_ = 1.0 - cosio2;
  cc4_ = 2.0 * no_unkozai_ * coef1 * ao_ * omeosq *
         (eta_ * (2.0 + 0.5 * etasq) + ecco_ * (0.5 + 2.0 * etasq) -
          kJ2 * tsi / (ao_ * psisq) *
              (-3.0 * con41_ * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta)) +
               0.75 * x1mth2_ * (2.0 * etasq - eeta * (1.0 + etasq)) *
                   std::cos(2.0 * argpo_)));
  cc5_ = 2.0 * coef1 * ao_ * omeosq *
         (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

  const double cosio4 = cosio2 * cosio2;
  const double temp1 = 1.5 * kJ2 * pinvsq * no_unkozai_;
  const double temp2 = 0.5 * temp1 * kJ2 * pinvsq;
  const double temp3 = -0.46875 * kJ4 * pinvsq * pinvsq * no_unkozai_;
  mdot_ = no_unkozai_ + 0.5 * temp1 * rteosq * con41_ +
          0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
  argpdot_ = -0.5 * temp1 * con42 +
             0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4) +
             temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
  const double xhdot1 = -temp1 * cosio;
  nodedot_ = xhdot1 + (0.5 * temp2 * (4.0 - 19.0 * cosio2) +
                       2.0 * temp3 * (3.0 - 7.0 * cosio2)) *
                          cosio;
  omgcof_ = bstar_ * cc3 * std::cos(argpo_);
  xmcof_ = 0.0;
  if (ecco_ > 1.0e-4) xmcof_ = -(2.0 / 3.0) * coef * bstar_ / eeta;
  nodecf_ = 3.5 * omeosq * xhdot1 * cc1_;
  t2cof_ = 1.5 * cc1_;
  // Long-period coefficients; the xlcof denominator degenerates for
  // retrograde-equatorial orbits (i ~ 180 deg), guarded like the reference.
  const double denom =
      std::fabs(1.0 + cosio) > 1.5e-12 ? 1.0 + cosio : 1.5e-12;
  xlcof_ = -0.25 * kJ3OverJ2 * sinio * (3.0 + 5.0 * cosio) / denom;
  aycof_ = -0.5 * kJ3OverJ2 * sinio;
  delmo_ = std::pow(1.0 + eta_ * std::cos(mo_), 3.0);
  sinmao_ = std::sin(mo_);
  x7thm1_ = 7.0 * cosio2 - 1.0;

  // Perigees below 220 km skip the higher-order drag terms (isimp branch).
  isimp_ = rp < 220.0 / kReKm + 1.0;
  if (!isimp_) {
    const double cc1sq = cc1_ * cc1_;
    d2_ = 4.0 * ao_ * tsi * cc1sq;
    const double temp = d2_ * tsi * cc1_ / 3.0;
    d3_ = (17.0 * ao_ + sfour) * temp;
    d4_ = 0.5 * temp * ao_ * tsi * (221.0 * ao_ + 31.0 * sfour) * cc1_;
    t3cof_ = d2_ + 2.0 * cc1sq;
    t4cof_ = 0.25 * (3.0 * d3_ + cc1_ * (12.0 * d2_ + 10.0 * cc1sq));
    t5cof_ = 0.2 * (3.0 * d4_ + 12.0 * cc1_ * d3_ + 6.0 * d2_ * d2_ +
                    15.0 * cc1sq * (2.0 * d2_ + cc1sq));
  }
}

double Sgp4Propagator::semi_major_axis_m() const noexcept {
  return ao_ * kReKm * 1000.0;
}

StateVector Sgp4Propagator::state_at_offset(double dt_seconds) const {
  const double t = dt_seconds / 60.0;  // model time unit is minutes

  // --- Secular gravity and drag -------------------------------------------
  const double xmdf = mo_ + mdot_ * t;
  const double argpdf = argpo_ + argpdot_ * t;
  const double nodedf = nodeo_ + nodedot_ * t;
  double argpm = argpdf;
  double mm = xmdf;
  const double t2 = t * t;
  double nodem = nodedf + nodecf_ * t2;
  double tempa = 1.0 - cc1_ * t;
  double tempe = bstar_ * cc4_ * t;
  double templ = t2cof_ * t2;

  if (!isimp_) {
    const double delomg = omgcof_ * t;
    const double delmtemp = 1.0 + eta_ * std::cos(xmdf);
    const double delm = xmcof_ * (delmtemp * delmtemp * delmtemp - delmo_);
    const double temp = delomg + delm;
    mm = xmdf + temp;
    argpm = argpdf - temp;
    const double t3 = t2 * t;
    const double t4 = t3 * t;
    tempa = tempa - d2_ * t2 - d3_ * t3 - d4_ * t4;
    tempe = tempe + bstar_ * cc5_ * (std::sin(mm) - sinmao_);
    templ = templ + t3cof_ * t3 + t4 * (t4cof_ + t * t5cof_);
  }

  const double am = ao_ * tempa * tempa;
  const double nm = kXke / std::pow(am, 1.5);
  double em = ecco_ - tempe;
  if (em >= 1.0 || em < -0.001) {
    throw std::domain_error("Sgp4Propagator: drag drove eccentricity out of range");
  }
  if (em < 1.0e-6) em = 1.0e-6;
  mm = mm + no_unkozai_ * templ;

  nodem = std::fmod(nodem, kTwoPi);
  argpm = std::fmod(argpm, kTwoPi);
  mm = std::fmod(mm, kTwoPi);

  // --- Long-period periodics ----------------------------------------------
  const double sinim = std::sin(inclo_);
  const double cosim = std::cos(inclo_);
  const double axnl = em * std::cos(argpm);
  const double temp_lp = 1.0 / (am * (1.0 - em * em));
  const double aynl = em * std::sin(argpm) + temp_lp * aycof_;
  const double xl = mm + argpm + nodem + temp_lp * xlcof_ * axnl;

  // --- Kepler's equation for E + omega ------------------------------------
  const double u = std::fmod(xl - nodem, kTwoPi);
  double eo1 = u;
  double sineo1 = 0.0;
  double coseo1 = 1.0;
  double tem5 = 9999.9;
  for (int ktr = 0; std::fabs(tem5) >= 1.0e-12 && ktr < 10; ++ktr) {
    sineo1 = std::sin(eo1);
    coseo1 = std::cos(eo1);
    tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
    tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
    if (std::fabs(tem5) >= 0.95) tem5 = tem5 > 0.0 ? 0.95 : -0.95;
    eo1 += tem5;
  }

  // --- Short-period periodics ---------------------------------------------
  const double ecose = axnl * coseo1 + aynl * sineo1;
  const double esine = axnl * sineo1 - aynl * coseo1;
  const double el2 = axnl * axnl + aynl * aynl;
  const double pl = am * (1.0 - el2);
  if (pl < 0.0) {
    throw std::domain_error("Sgp4Propagator: semi-latus rectum went negative");
  }
  const double rl = am * (1.0 - ecose);
  const double rdotl = std::sqrt(am) * esine / rl;
  const double rvdotl = std::sqrt(pl) / rl;
  const double betal = std::sqrt(1.0 - el2);
  const double temp_sp = esine / (1.0 + betal);
  const double sinu = am / rl * (sineo1 - aynl - axnl * temp_sp);
  const double cosu = am / rl * (coseo1 - axnl + aynl * temp_sp);
  double su = std::atan2(sinu, cosu);
  const double sin2u = (cosu + cosu) * sinu;
  const double cos2u = 1.0 - 2.0 * sinu * sinu;
  const double temp = 1.0 / pl;
  const double temp1 = 0.5 * kJ2 * temp;
  const double temp2 = temp1 * temp;

  const double mrt =
      rl * (1.0 - 1.5 * temp2 * betal * con41_) + 0.5 * temp1 * x1mth2_ * cos2u;
  if (mrt < 1.0) {
    throw std::domain_error("Sgp4Propagator: satellite decayed (radius below surface)");
  }
  su = su - 0.25 * temp2 * x7thm1_ * sin2u;
  const double xnode = nodem + 1.5 * temp2 * cosim * sin2u;
  const double xinc = inclo_ + 1.5 * temp2 * cosim * sinim * cos2u;
  const double mvt = rdotl - nm * temp1 * x1mth2_ * sin2u / kXke;
  const double rvdot =
      rvdotl + nm * temp1 * (x1mth2_ * cos2u + 1.5 * con41_) / kXke;

  // --- Orientation vectors and TEME state ---------------------------------
  const double sinsu = std::sin(su);
  const double cossu = std::cos(su);
  const double snod = std::sin(xnode);
  const double cnod = std::cos(xnode);
  const double sini = std::sin(xinc);
  const double cosi = std::cos(xinc);
  const double xmx = -snod * cosi;
  const double xmy = cnod * cosi;
  const double ux = xmx * sinsu + cnod * cossu;
  const double uy = xmy * sinsu + snod * cossu;
  const double uz = sini * sinsu;
  const double vx = xmx * cossu - cnod * sinsu;
  const double vy = xmy * cossu - snod * sinsu;
  const double vz = sini * cossu;

  StateVector state;
  const double r_km = mrt * kReKm;
  state.position = {r_km * ux * 1000.0, r_km * uy * 1000.0, r_km * uz * 1000.0};
  const double vscale = kVKmPerSec * 1000.0;
  state.velocity = {(mvt * ux + rvdot * vx) * vscale, (mvt * uy + rvdot * vy) * vscale,
                    (mvt * uz + rvdot * vz) * vscale};
  return state;
}

StateVector Sgp4Propagator::state_at(const TimePoint& t) const {
  return state_at_offset(t.seconds_since(epoch_));
}

Vec3 Sgp4Propagator::position_eci_at_offset(double dt_seconds) const {
  return state_at_offset(dt_seconds).position;
}

}  // namespace mpleo::orbit
