#include "orbit/kepler.hpp"

#include <cmath>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {

double solve_kepler(double mean_anomaly_rad, double eccentricity) noexcept {
  const double e = eccentricity;
  // Reduce to [-pi, pi] for the solve, restore the branch at the end.
  const double m_wrapped = util::wrap_pi(mean_anomaly_rad);
  const double branch = mean_anomaly_rad - m_wrapped;

  if (e < 1e-12) return mean_anomaly_rad;

  // Starter: E0 = M + e*sin(M) works well for moderate e; for high e near
  // M ~ 0 use the cube-root starter.
  double E = m_wrapped + e * std::sin(m_wrapped);
  if (e > 0.8) {
    E = m_wrapped >= 0.0 ? std::cbrt(6.0 * m_wrapped) : -std::cbrt(-6.0 * m_wrapped);
  }

  double lo = -util::kPi, hi = util::kPi;
  for (int iter = 0; iter < 60; ++iter) {
    const double f = E - e * std::sin(E) - m_wrapped;
    if (std::fabs(f) < 1e-13) break;
    if (f > 0.0) hi = E; else lo = E;
    const double fp = 1.0 - e * std::cos(E);
    double next = E - f / fp;
    // Bisection fallback if Newton leaves the bracket.
    if (!(next > lo && next < hi)) next = 0.5 * (lo + hi);
    E = next;
  }
  return E + branch;
}

double true_from_eccentric(double E, double e) noexcept {
  const double cos_e = std::cos(E);
  const double sin_e = std::sin(E);
  const double nu = std::atan2(std::sqrt(1.0 - e * e) * sin_e, cos_e - e);
  // Keep the same branch as E.
  return nu + (E - util::wrap_pi(E));
}

double eccentric_from_true(double nu, double e) noexcept {
  const double cos_nu = std::cos(nu);
  const double sin_nu = std::sin(nu);
  const double E = std::atan2(std::sqrt(1.0 - e * e) * sin_nu, cos_nu + e);
  return E + (nu - util::wrap_pi(nu));
}

double mean_from_eccentric(double E, double e) noexcept { return E - e * std::sin(E); }

}  // namespace mpleo::orbit
