// Propagator backend selection. The ephemeris kernel is a multi-backend
// facade: the cheap analytic two-body+J2 model remains the fast path for
// synthetic Walker catalogs, while SGP4 propagates real TLE catalogs with
// flight-grade fidelity. Every consumer selects a backend through
// PropagatorBackend (scenario flag --propagator=) and reads positions from
// the same EphemerisTable layout regardless of which backend filled it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mpleo::orbit {

enum class PropagatorBackend : std::uint8_t {
  kJ2Analytic,  // two-body + secular J2 (KeplerianPropagator) — the fast path
  kSgp4,        // SGP4 mean-element propagation from TLE data (Sgp4Propagator)
};

[[nodiscard]] const char* to_string(PropagatorBackend backend) noexcept;

// Parses "j2" / "j2_analytic" / "sgp4"; throws std::invalid_argument listing
// the valid names otherwise.
[[nodiscard]] PropagatorBackend propagator_backend_from_string(std::string_view name);

}  // namespace mpleo::orbit
