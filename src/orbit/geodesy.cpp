#include "orbit/geodesy.hpp"

#include <algorithm>
#include <cmath>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

constexpr double kA = util::kEarthEquatorialRadiusM;
constexpr double kF = util::kEarthFlattening;
constexpr double kE2 = kF * (2.0 - kF);          // first eccentricity squared
constexpr double kB = kA * (1.0 - kF);           // semi-minor axis
constexpr double kEp2 = kE2 / (1.0 - kE2);       // second eccentricity squared

}  // namespace

Geodetic Geodetic::from_degrees(double lat_deg, double lon_deg, double alt_m) noexcept {
  return {util::deg_to_rad(lat_deg), util::deg_to_rad(lon_deg), alt_m};
}

Vec3 geodetic_to_ecef(const Geodetic& g) noexcept {
  const double sin_lat = std::sin(g.latitude_rad);
  const double cos_lat = std::cos(g.latitude_rad);
  const double n = kA / std::sqrt(1.0 - kE2 * sin_lat * sin_lat);
  return {(n + g.altitude_m) * cos_lat * std::cos(g.longitude_rad),
          (n + g.altitude_m) * cos_lat * std::sin(g.longitude_rad),
          (n * (1.0 - kE2) + g.altitude_m) * sin_lat};
}

Geodetic ecef_to_geodetic(const Vec3& p) noexcept {
  const double lon = std::atan2(p.y, p.x);
  const double rho = std::hypot(p.x, p.y);

  // Bowring's initial parametric latitude, then one correction pass.
  double beta = std::atan2(p.z * kA, rho * kB);
  double lat = std::atan2(p.z + kEp2 * kB * std::pow(std::sin(beta), 3),
                          rho - kE2 * kA * std::pow(std::cos(beta), 3));
  beta = std::atan2((1.0 - kF) * std::sin(lat), std::cos(lat));
  lat = std::atan2(p.z + kEp2 * kB * std::pow(std::sin(beta), 3),
                   rho - kE2 * kA * std::pow(std::cos(beta), 3));

  const double sin_lat = std::sin(lat);
  const double n = kA / std::sqrt(1.0 - kE2 * sin_lat * sin_lat);
  double alt;
  if (std::fabs(std::cos(lat)) > 1e-10) {
    alt = rho / std::cos(lat) - n;
  } else {
    alt = std::fabs(p.z) - kB;  // polar case
  }
  return {lat, lon, alt};
}

Vec3 eci_to_ecef(const Vec3& eci, double gmst) noexcept {
  const double c = std::cos(gmst);
  const double s = std::sin(gmst);
  return {c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z};
}

Vec3 ecef_to_eci(const Vec3& ecef, double gmst) noexcept {
  const double c = std::cos(gmst);
  const double s = std::sin(gmst);
  return {c * ecef.x - s * ecef.y, s * ecef.x + c * ecef.y, ecef.z};
}

TopocentricFrame::TopocentricFrame(const Geodetic& site) noexcept
    : origin_(geodetic_to_ecef(site)) {
  const double sin_lat = std::sin(site.latitude_rad);
  const double cos_lat = std::cos(site.latitude_rad);
  const double sin_lon = std::sin(site.longitude_rad);
  const double cos_lon = std::cos(site.longitude_rad);
  // Geodetic (ellipsoidal-normal) up; correct for elevation angles.
  up_ = {cos_lat * cos_lon, cos_lat * sin_lon, sin_lat};
  east_ = {-sin_lon, cos_lon, 0.0};
  north_ = {-sin_lat * cos_lon, -sin_lat * sin_lon, cos_lat};
}

double TopocentricFrame::elevation_rad(const Vec3& target_ecef) const noexcept {
  const Vec3 rho = target_ecef - origin_;
  const double n = rho.norm();
  if (n <= 0.0) return util::kPi / 2.0;
  // Clamp: rounding can push the ratio infinitesimally past +-1 at zenith.
  return std::asin(std::clamp(dot(rho, up_) / n, -1.0, 1.0));
}

double TopocentricFrame::azimuth_rad(const Vec3& target_ecef) const noexcept {
  const Vec3 rho = target_ecef - origin_;
  const double az = std::atan2(dot(rho, east_), dot(rho, north_));
  return util::wrap_two_pi(az);
}

double TopocentricFrame::range_m(const Vec3& target_ecef) const noexcept {
  return (target_ecef - origin_).norm();
}

bool TopocentricFrame::visible_above(const Vec3& target_ecef, double sin_mask) const noexcept {
  // Precondition: sin_mask >= 0 (masks below the horizon are not meaningful
  // for ground stations).
  const Vec3 rho = target_ecef - origin_;
  const double along_up = dot(rho, up_);
  // sin(el) >= sin_mask  <=>  along_up >= sin_mask * |rho| (mask in [0, pi/2)).
  if (along_up < 0.0) return false;
  return along_up * along_up >= sin_mask * sin_mask * rho.norm_squared();
}

}  // namespace mpleo::orbit
