#include "orbit/simd.hpp"

#include <cstdlib>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>

namespace mpleo::orbit {
namespace {

// Set once by the first active_simd_mode() call or by force_simd_mode;
// dispatch afterwards is a plain load. Not atomic: resolution happens before
// any parallel fill starts (EphemerisSet::compute resolves on the calling
// thread), and force_simd_mode is a test-only hook.
std::optional<SimdMode> g_mode;

SimdMode resolve_from_environment() {
  const char* env = std::getenv("MPLEO_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0 || *env == '\0') {
    return cpu_supports_avx2() ? SimdMode::kAvx2 : SimdMode::kScalar;
  }
  if (std::strcmp(env, "scalar") == 0 || std::strcmp(env, "off") == 0) {
    return SimdMode::kScalar;
  }
  if (std::strcmp(env, "avx2") == 0) {
    if (!cpu_supports_avx2()) {
      throw std::runtime_error(
          "MPLEO_SIMD=avx2 requested but this build/CPU has no AVX2 support");
    }
    return SimdMode::kAvx2;
  }
  throw std::runtime_error("invalid MPLEO_SIMD value '" + std::string(env) +
                           "' (valid: auto, scalar, off, avx2)");
}

}  // namespace

const char* to_string(SimdMode mode) noexcept {
  switch (mode) {
    case SimdMode::kScalar: return "scalar";
    case SimdMode::kAvx2: return "avx2";
  }
  return "unknown";
}

bool cpu_supports_avx2() noexcept {
#if defined(MPLEO_HAVE_AVX2_KERNEL) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

SimdMode active_simd_mode() {
  if (!g_mode.has_value()) g_mode = resolve_from_environment();
  return *g_mode;
}

void force_simd_mode(SimdMode mode) {
  if (mode == SimdMode::kAvx2 && !cpu_supports_avx2()) {
    throw std::invalid_argument(
        "force_simd_mode(kAvx2): this build/CPU has no AVX2 support");
  }
  g_mode = mode;
}

}  // namespace mpleo::orbit
