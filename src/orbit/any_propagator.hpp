// Backend-erased propagator handle. Consumers that need per-instant states
// (proof-of-coverage receipt checks, Doppler tracks, latency sampling) hold
// an AnyPropagator instead of a concrete KeplerianPropagator, so the same
// code path serves both the analytic J2 model and SGP4 without templates or
// heap indirection.
#pragma once

#include <variant>

#include "orbit/backend.hpp"
#include "orbit/propagator.hpp"
#include "orbit/sgp4.hpp"

namespace mpleo::orbit {

class AnyPropagator {
 public:
  explicit AnyPropagator(KeplerianPropagator propagator) noexcept
      : impl_(std::move(propagator)) {}
  explicit AnyPropagator(Sgp4Propagator propagator) noexcept
      : impl_(std::move(propagator)) {}

  [[nodiscard]] PropagatorBackend backend() const noexcept {
    return std::holds_alternative<Sgp4Propagator>(impl_) ? PropagatorBackend::kSgp4
                                                         : PropagatorBackend::kJ2Analytic;
  }

  [[nodiscard]] StateVector state_at(const TimePoint& t) const {
    return std::visit([&](const auto& p) { return p.state_at(t); }, impl_);
  }
  [[nodiscard]] StateVector state_at_offset(double dt_seconds) const {
    return std::visit([&](const auto& p) { return p.state_at_offset(dt_seconds); },
                      impl_);
  }
  [[nodiscard]] Vec3 position_eci_at_offset(double dt_seconds) const {
    return std::visit(
        [&](const auto& p) { return p.position_eci_at_offset(dt_seconds); }, impl_);
  }
  [[nodiscard]] TimePoint epoch() const noexcept {
    return std::visit([](const auto& p) { return p.epoch(); }, impl_);
  }

  // Concrete accessors; nullptr when the other backend is held.
  [[nodiscard]] const KeplerianPropagator* keplerian() const noexcept {
    return std::get_if<KeplerianPropagator>(&impl_);
  }
  [[nodiscard]] const Sgp4Propagator* sgp4() const noexcept {
    return std::get_if<Sgp4Propagator>(&impl_);
  }

 private:
  std::variant<KeplerianPropagator, Sgp4Propagator> impl_;
};

}  // namespace mpleo::orbit
