// Runtime SIMD dispatch for the batched ephemeris kernel.
//
// The lane-batched fill exists in two binary-identical-by-construction
// variants: a portable scalar loop and an AVX2 build of the same operation
// sequence (satellites across lanes, so per-satellite arithmetic order — and
// therefore every IEEE rounding — is preserved exactly). Which one runs is
// resolved once per process from CPU capability and the MPLEO_SIMD
// environment variable:
//
//   MPLEO_SIMD=scalar  force the portable path (CI runs the suite this way)
//   MPLEO_SIMD=avx2    require AVX2; throws at first use if the CPU lacks it
//   MPLEO_SIMD=auto    (default) AVX2 when available, scalar otherwise
//
// Tests flip the mode in-process via force_simd_mode to pin bit-identity of
// the two variants against each other and against the unbatched path.
#pragma once

#include <cstdint>

namespace mpleo::orbit {

enum class SimdMode : std::uint8_t {
  kScalar,
  kAvx2,
};

[[nodiscard]] const char* to_string(SimdMode mode) noexcept;

// True when this build and CPU can run the AVX2 kernel.
[[nodiscard]] bool cpu_supports_avx2() noexcept;

// The mode the batched kernel dispatches on right now (env + CPU resolved on
// first call, unless overridden by force_simd_mode). Throws
// std::runtime_error if MPLEO_SIMD=avx2 was requested on a CPU without AVX2.
[[nodiscard]] SimdMode active_simd_mode();

// Test hook: overrides the active mode for the rest of the process (or until
// the next call). Throws std::invalid_argument when asked for AVX2 on a
// machine that cannot run it.
void force_simd_mode(SimdMode mode);

}  // namespace mpleo::orbit
