#include "orbit/propagator.hpp"

#include <cmath>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {

KeplerianPropagator::KeplerianPropagator(const ClassicalElements& epoch_elements,
                                         TimePoint epoch,
                                         Perturbation perturbation) noexcept
    : coe_(epoch_elements), epoch_(epoch), perturbation_(perturbation) {
  const double n = coe_.mean_motion_rad_per_sec();
  m_dot_ = n;
  if (perturbation_ == Perturbation::kJ2Secular) {
    const double p = coe_.semi_latus_rectum_m();
    const double re_over_p = util::kEarthEquatorialRadiusM / p;
    const double j2_factor = util::kJ2Earth * re_over_p * re_over_p;
    const double cos_i = std::cos(coe_.inclination_rad);
    const double sqrt_1me2 =
        std::sqrt(1.0 - coe_.eccentricity * coe_.eccentricity);

    // Vallado, "Fundamentals of Astrodynamics", secular J2 rates.
    raan_dot_ = -1.5 * n * j2_factor * cos_i;
    argp_dot_ = 0.75 * n * j2_factor * (5.0 * cos_i * cos_i - 1.0);
    m_dot_ = n + 0.75 * n * j2_factor * sqrt_1me2 * (3.0 * cos_i * cos_i - 1.0);
  }
}

ClassicalElements KeplerianPropagator::elements_at_offset(double dt) const noexcept {
  ClassicalElements out = coe_;
  out.raan_rad = util::wrap_two_pi(coe_.raan_rad + raan_dot_ * dt);
  out.arg_perigee_rad = util::wrap_two_pi(coe_.arg_perigee_rad + argp_dot_ * dt);
  out.mean_anomaly_rad = util::wrap_two_pi(coe_.mean_anomaly_rad + m_dot_ * dt);
  return out;
}

StateVector KeplerianPropagator::state_at_offset(double dt) const noexcept {
  return elements_to_state(elements_at_offset(dt));
}

StateVector KeplerianPropagator::state_at(const TimePoint& t) const noexcept {
  return state_at_offset(t.seconds_since(epoch_));
}

Vec3 KeplerianPropagator::position_eci_at_offset(double dt) const noexcept {
  return state_at_offset(dt).position;
}

}  // namespace mpleo::orbit
