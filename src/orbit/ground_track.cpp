#include "orbit/ground_track.hpp"

#include <cmath>

#include "orbit/ephemeris.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {

std::vector<GroundTrackPoint> ground_track(const KeplerianPropagator& propagator,
                                           const TimeGrid& grid) {
  const std::vector<util::Vec3> positions = ecef_positions(propagator, grid);
  std::vector<GroundTrackPoint> track;
  track.reserve(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    Geodetic g = ecef_to_geodetic(positions[i]);
    g.altitude_m = 0.0;
    track.push_back({grid.step_seconds * static_cast<double>(i), g});
  }
  return track;
}

double ground_track_shift_per_orbit_deg(const KeplerianPropagator& propagator) noexcept {
  // Earth's inertial rotation carries the ground point eastward while the
  // node drifts at the J2 rate; the track shifts west by the difference,
  // accumulated over one (anomalistic) period.
  const double period_s = util::kTwoPi / propagator.mean_anomaly_rate();
  const double relative_rate =
      util::kEarthRotationRateRadPerSec - propagator.raan_rate();
  return util::rad_to_deg(relative_rate * period_s);
}

double max_track_latitude_rad(const ClassicalElements& elements) noexcept {
  const double incl = elements.inclination_rad;
  return incl <= util::kPi / 2.0 ? incl : util::kPi - incl;
}

}  // namespace mpleo::orbit
