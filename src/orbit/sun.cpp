#include "orbit/sun.hpp"

#include <cmath>

#include "util/units.hpp"

namespace mpleo::orbit {

util::Vec3 sun_direction_eci(const TimePoint& t) noexcept {
  // Astronomical Almanac low-precision solar coordinates.
  const double n = t.julian_date() - kJ2000Jd;
  const double mean_longitude_deg = 280.460 + 0.9856474 * n;
  const double mean_anomaly_rad = util::deg_to_rad(357.528 + 0.9856003 * n);
  const double ecliptic_longitude_rad =
      util::deg_to_rad(mean_longitude_deg + 1.915 * std::sin(mean_anomaly_rad) +
                       0.020 * std::sin(2.0 * mean_anomaly_rad));
  const double obliquity_rad = util::deg_to_rad(23.439 - 4.0e-7 * n);

  return {std::cos(ecliptic_longitude_rad),
          std::cos(obliquity_rad) * std::sin(ecliptic_longitude_rad),
          std::sin(obliquity_rad) * std::sin(ecliptic_longitude_rad)};
}

bool is_eclipsed(const util::Vec3& position_eci, const util::Vec3& sun_direction) noexcept {
  // Cylindrical shadow: behind the terminator plane and within one Earth
  // radius of the anti-solar axis.
  const double along_sun = dot(position_eci, sun_direction);
  if (along_sun >= 0.0) return false;  // sun side of Earth
  const util::Vec3 perpendicular = position_eci - along_sun * sun_direction;
  return perpendicular.norm() < util::kEarthMeanRadiusM;
}

double sunlit_fraction(const KeplerianPropagator& propagator, const TimeGrid& grid) {
  if (grid.count == 0) return 0.0;
  std::size_t sunlit = 0;
  for (std::size_t i = 0; i < grid.count; ++i) {
    const TimePoint t = grid.at(i);
    const util::Vec3 position = propagator.state_at(t).position;
    if (!is_eclipsed(position, sun_direction_eci(t))) ++sunlit;
  }
  return static_cast<double>(sunlit) / static_cast<double>(grid.count);
}

}  // namespace mpleo::orbit
