#include "orbit/elements.hpp"

#include <algorithm>
#include <cmath>

#include "orbit/kepler.hpp"
#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {
namespace {
constexpr double kMu = util::kMuEarth;
}

double ClassicalElements::mean_motion_rad_per_sec() const noexcept {
  const double a = semi_major_axis_m;
  return std::sqrt(kMu / (a * a * a));
}

double ClassicalElements::period_seconds() const noexcept {
  return util::kTwoPi / mean_motion_rad_per_sec();
}

double ClassicalElements::semi_latus_rectum_m() const noexcept {
  return semi_major_axis_m * (1.0 - eccentricity * eccentricity);
}

double ClassicalElements::perigee_altitude_m() const noexcept {
  return semi_major_axis_m * (1.0 - eccentricity) - util::kEarthMeanRadiusM;
}

double ClassicalElements::apogee_altitude_m() const noexcept {
  return semi_major_axis_m * (1.0 + eccentricity) - util::kEarthMeanRadiusM;
}

ClassicalElements ClassicalElements::circular(double altitude_m, double inclination_deg,
                                              double raan_deg,
                                              double mean_anomaly_deg) noexcept {
  ClassicalElements coe;
  coe.semi_major_axis_m = util::kEarthMeanRadiusM + altitude_m;
  coe.eccentricity = 0.0;
  coe.inclination_rad = util::deg_to_rad(inclination_deg);
  coe.raan_rad = util::wrap_two_pi(util::deg_to_rad(raan_deg));
  coe.arg_perigee_rad = 0.0;
  coe.mean_anomaly_rad = util::wrap_two_pi(util::deg_to_rad(mean_anomaly_deg));
  return coe;
}

StateVector elements_to_state(const ClassicalElements& coe) noexcept {
  const double e = coe.eccentricity;
  const double E = solve_kepler(coe.mean_anomaly_rad, e);
  const double nu = true_from_eccentric(E, e);
  const double p = coe.semi_latus_rectum_m();
  const double r = p / (1.0 + e * std::cos(nu));

  // Perifocal frame (PQW): P toward perigee, W along angular momentum.
  const double cos_nu = std::cos(nu);
  const double sin_nu = std::sin(nu);
  const Vec3 r_pqw{r * cos_nu, r * sin_nu, 0.0};
  const double vf = std::sqrt(kMu / p);
  const Vec3 v_pqw{-vf * sin_nu, vf * (e + cos_nu), 0.0};

  // Rotate PQW -> ECI: Rz(-raan) Rx(-i) Rz(-argp).
  const double cr = std::cos(coe.raan_rad), sr = std::sin(coe.raan_rad);
  const double ci = std::cos(coe.inclination_rad), si = std::sin(coe.inclination_rad);
  const double cw = std::cos(coe.arg_perigee_rad), sw = std::sin(coe.arg_perigee_rad);

  auto rotate = [&](const Vec3& v) noexcept -> Vec3 {
    // Row-major composition of the three rotations.
    const double r11 = cr * cw - sr * sw * ci;
    const double r12 = -cr * sw - sr * cw * ci;
    const double r21 = sr * cw + cr * sw * ci;
    const double r22 = -sr * sw + cr * cw * ci;
    const double r31 = sw * si;
    const double r32 = cw * si;
    return {r11 * v.x + r12 * v.y, r21 * v.x + r22 * v.y, r31 * v.x + r32 * v.y};
  };

  return {rotate(r_pqw), rotate(v_pqw)};
}

ClassicalElements state_to_elements(const StateVector& s) noexcept {
  const Vec3& r = s.position;
  const Vec3& v = s.velocity;
  const double rn = r.norm();
  const double vn2 = v.norm_squared();

  const Vec3 h = cross(r, v);             // specific angular momentum
  const double hn = h.norm();
  const Vec3 n{-h.y, h.x, 0.0};           // node vector = k x h
  const double nn = n.norm();

  const Vec3 e_vec = cross(v, h) / kMu - r / rn;
  const double e = e_vec.norm();

  const double energy = vn2 / 2.0 - kMu / rn;
  ClassicalElements coe;
  coe.semi_major_axis_m = -kMu / (2.0 * energy);
  coe.eccentricity = e;
  coe.inclination_rad = std::acos(std::clamp(h.z / hn, -1.0, 1.0));

  const bool equatorial = nn < 1e-8 * hn;
  const bool circular = e < 1e-10;

  double raan = 0.0;
  if (!equatorial) {
    raan = std::acos(std::clamp(n.x / nn, -1.0, 1.0));
    if (n.y < 0.0) raan = util::kTwoPi - raan;
  }
  coe.raan_rad = raan;

  double argp = 0.0;
  double nu;  // true anomaly
  if (circular) {
    // Measure anomaly from the node line (or x-axis when equatorial).
    const Vec3 ref = equatorial ? Vec3{1.0, 0.0, 0.0} : n.normalized();
    nu = std::acos(std::clamp(dot(ref, r) / rn, -1.0, 1.0));
    if (dot(cross(ref, r), h) < 0.0) nu = util::kTwoPi - nu;
  } else {
    if (equatorial) {
      argp = std::atan2(e_vec.y, e_vec.x);
      if (argp < 0.0) argp += util::kTwoPi;
    } else {
      argp = std::acos(std::clamp(dot(n, e_vec) / (nn * e), -1.0, 1.0));
      if (e_vec.z < 0.0) argp = util::kTwoPi - argp;
    }
    nu = std::acos(std::clamp(dot(e_vec, r) / (e * rn), -1.0, 1.0));
    if (dot(r, v) < 0.0) nu = util::kTwoPi - nu;
  }
  coe.arg_perigee_rad = argp;

  const double E = eccentric_from_true(nu, e);
  coe.mean_anomaly_rad = util::wrap_two_pi(mean_from_eccentric(E, e));
  return coe;
}

}  // namespace mpleo::orbit
