// Internal lane-batched kernel behind EphemerisSet's circular-orbit fill.
//
// Layout: satellites across lanes. Each AVX2 lane runs one satellite's
// per-step arithmetic in exactly the order the scalar EphemerisTable::compute
// loop uses (incremental plane rotations, libm resync every kResyncInterval
// steps, no FMA contraction), so lane l of the batched fill is bit-identical
// to the scalar fill of that satellite. Outputs are staged lane-major per
// resync block and de-interleaved into each table's contiguous SoA arrays.
//
// Only the (near-)circular J2 fast path is batched: its per-step work is
// branch-free and identical across lanes. Eccentric orbits (data-dependent
// Kepler iteration counts) and SGP4 stay on per-satellite scalar paths.
#pragma once

#include <cstddef>

namespace mpleo::orbit::batch {

inline constexpr std::size_t kLanes = 4;

// Must match the scalar kernel's resync cadence (ephemeris.cpp) or the
// incremental-rotation sequences diverge from the unbatched path.
inline constexpr std::size_t kResyncInterval = 64;

// Structure-of-arrays epoch constants for one group of up to kLanes circular
// satellites. Unused tail lanes are padded by replicating lane 0 and their
// output pointers left null; they compute garbage that is never stored.
struct CircularBatch {
  alignas(32) double a[kLanes];       // semi-major axis, m
  alignas(32) double e[kLanes];       // eccentricity (< circular threshold)
  alignas(32) double b[kLanes];       // semi-minor axis, m
  alignas(32) double cos_i[kLanes];
  alignas(32) double sin_i[kLanes];
  alignas(32) double t0[kLanes];      // grid start minus satellite epoch, s
  alignas(32) double w0[kLanes];      // argument of perigee at epoch, rad
  alignas(32) double o0[kLanes];      // RAAN at epoch, rad
  alignas(32) double m0[kLanes];      // mean anomaly at epoch, rad
  alignas(32) double w_dot[kLanes];   // secular rates, rad/s
  alignas(32) double o_dot[kLanes];
  alignas(32) double m_dot[kLanes];
  alignas(32) double cdw[kLanes];     // per-step rotation of each angle:
  alignas(32) double sdw[kLanes];     // cos/sin(rate * step_seconds)
  alignas(32) double cdo[kLanes];
  alignas(32) double sdo[kLanes];
  alignas(32) double cdm[kLanes];
  alignas(32) double sdm[kLanes];
};

// Destination SoA arrays for one lane's table; null x skips the lane.
struct LaneOutput {
  double* x = nullptr;
  double* y = nullptr;
  double* z = nullptr;
  double* r = nullptr;
};

#if defined(MPLEO_HAVE_AVX2_KERNEL)
// AVX2 build of the circular fill (compiled in a dedicated -mavx2 TU, no
// -mfma: the scalar reference is compiled without FMA contraction, so the
// vector twin must not fuse either). Caller guarantees the CPU has AVX2.
void fill_circular_avx2(const CircularBatch& batch, std::size_t n, double h,
                        const double* cos_gmst, const double* sin_gmst,
                        const LaneOutput out[kLanes]);
#endif

}  // namespace mpleo::orbit::batch
