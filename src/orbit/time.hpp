// Astronomical time: Julian dates, civil conversion, sidereal angle, and the
// uniform step grids all coverage experiments run on.
//
// The library runs on a single UTC-like uniform timescale (leap seconds are
// ignored; over one-week windows the <1 s error is far below the 60 s
// coverage step). This matches what TLE-based simulators such as CosmicBeats
// effectively do.
#pragma once

#include <compare>
#include <cstddef>
#include <string>

namespace mpleo::orbit {

// Broken-down civil UTC time.
struct CivilTime {
  int year = 2000;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
  int hour = 0;
  int minute = 0;
  double second = 0.0;
};

// An absolute instant (UTC). Stored as a whole Julian day number at midnight
// plus seconds-of-day, so second-level arithmetic over multi-week windows
// keeps sub-microsecond precision (a single double JD only resolves ~40 us).
class TimePoint {
 public:
  TimePoint() = default;

  [[nodiscard]] static TimePoint from_julian_date(double jd) noexcept;
  // Precondition: a valid Gregorian civil date (year >= 1583).
  [[nodiscard]] static TimePoint from_civil(const CivilTime& civil);
  // Parses "YYYY-MM-DDTHH:MM:SSZ" (fractional seconds allowed).
  [[nodiscard]] static TimePoint from_iso8601(const std::string& text);

  [[nodiscard]] double julian_date() const noexcept {
    return jd_midnight_ + seconds_ / 86400.0;
  }
  [[nodiscard]] CivilTime to_civil() const;
  [[nodiscard]] std::string to_iso8601() const;

  // Seconds from `earlier` to *this (negative if *this precedes it).
  [[nodiscard]] double seconds_since(const TimePoint& earlier) const noexcept;

  [[nodiscard]] TimePoint plus_seconds(double seconds) const noexcept;
  [[nodiscard]] TimePoint plus_days(double days) const noexcept;

  friend auto operator<=>(const TimePoint&, const TimePoint&) = default;

 private:
  TimePoint(double jd_midnight, double seconds) noexcept
      : jd_midnight_(jd_midnight), seconds_(seconds) {
    normalise();
  }
  // Restores the invariant seconds_ in [0, 86400) with jd_midnight_ at a
  // midnight boundary (x.5 in JD convention).
  void normalise() noexcept;

  double jd_midnight_ = 2451544.5;  // 2000-01-01T00:00:00
  double seconds_ = 43200.0;        // J2000.0 = noon
};

// Julian date of the J2000.0 epoch.
inline constexpr double kJ2000Jd = 2451545.0;

// Greenwich Mean Sidereal Time (IAU 1982 model), radians in [0, 2*pi).
[[nodiscard]] double gmst_rad(const TimePoint& t) noexcept;

// A uniform grid of `count` instants: start, start+step, ...
// This is the time base shared by the coverage engine, masks, and schedulers.
struct TimeGrid {
  TimePoint start;
  double step_seconds = 60.0;
  std::size_t count = 0;

  [[nodiscard]] static TimeGrid over_duration(TimePoint start, double duration_seconds,
                                              double step_seconds);

  [[nodiscard]] TimePoint at(std::size_t index) const noexcept {
    return start.plus_seconds(step_seconds * static_cast<double>(index));
  }
  [[nodiscard]] double duration_seconds() const noexcept {
    return count == 0 ? 0.0 : step_seconds * static_cast<double>(count);
  }
};

}  // namespace mpleo::orbit
