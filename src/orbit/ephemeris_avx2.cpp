// AVX2 twin of the scalar circular-orbit fill in ephemeris.cpp. This TU is
// the only one compiled with -mavx2 (and deliberately without -mfma: the
// scalar reference never contracts mul+add, so neither may this path —
// bit-identity is the contract, enforced by the backend property tests).
//
// Every vector statement below maps 1:1 onto a line of the scalar loop;
// change them together or the identity tests will catch the drift.
#include "orbit/ephemeris_batch.hpp"

#if defined(MPLEO_HAVE_AVX2_KERNEL)

#include <immintrin.h>

#include <algorithm>
#include <cmath>

namespace mpleo::orbit::batch {
namespace {

// Moves one staged quantity (lane-major [step][lane]) into the per-satellite
// output runs via 4x4 register transposes: four steps of four lanes become
// one contiguous 4-step store per satellite. Pure data movement — values are
// copied bitwise, so this cannot disturb the bit-identity contract.
inline void deinterleave_store(const double* stage, double* const dst[kLanes],
                               std::size_t k, std::size_t block) {
  std::size_t j = 0;
  for (; j + 4 <= block; j += 4) {
    const __m256d r0 = _mm256_load_pd(stage + kLanes * j);
    const __m256d r1 = _mm256_load_pd(stage + kLanes * (j + 1));
    const __m256d r2 = _mm256_load_pd(stage + kLanes * (j + 2));
    const __m256d r3 = _mm256_load_pd(stage + kLanes * (j + 3));
    const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
    const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
    const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
    const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
    if (dst[0] != nullptr)
      _mm256_storeu_pd(dst[0] + k + j, _mm256_permute2f128_pd(t0, t2, 0x20));
    if (dst[1] != nullptr)
      _mm256_storeu_pd(dst[1] + k + j, _mm256_permute2f128_pd(t1, t3, 0x20));
    if (dst[2] != nullptr)
      _mm256_storeu_pd(dst[2] + k + j, _mm256_permute2f128_pd(t0, t2, 0x31));
    if (dst[3] != nullptr)
      _mm256_storeu_pd(dst[3] + k + j, _mm256_permute2f128_pd(t1, t3, 0x31));
  }
  for (; j < block; ++j) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      if (dst[l] != nullptr) dst[l][k + j] = stage[kLanes * j + l];
    }
  }
}

}  // namespace

void fill_circular_avx2(const CircularBatch& batch, std::size_t n, double h,
                        const double* cos_gmst, const double* sin_gmst,
                        const LaneOutput out[kLanes]) {
  if (n == 0) return;

  const __m256d a = _mm256_load_pd(batch.a);
  const __m256d e = _mm256_load_pd(batch.e);
  const __m256d b = _mm256_load_pd(batch.b);
  const __m256d cos_i = _mm256_load_pd(batch.cos_i);
  const __m256d sin_i = _mm256_load_pd(batch.sin_i);
  const __m256d cdw = _mm256_load_pd(batch.cdw);
  const __m256d sdw = _mm256_load_pd(batch.sdw);
  const __m256d cdo = _mm256_load_pd(batch.cdo);
  const __m256d sdo = _mm256_load_pd(batch.sdo);
  const __m256d cdm = _mm256_load_pd(batch.cdm);
  const __m256d sdm = _mm256_load_pd(batch.sdm);
  const __m256d one = _mm256_set1_pd(1.0);

  __m256d cw = _mm256_setzero_pd(), sw = _mm256_setzero_pd();
  __m256d co = _mm256_setzero_pd(), so = _mm256_setzero_pd();
  __m256d ce = _mm256_setzero_pd(), se = _mm256_setzero_pd();

  // Lane-major staging for one resync block; de-interleaved per block so all
  // stores stay L1-resident.
  alignas(32) double stage_x[kLanes * kResyncInterval];
  alignas(32) double stage_y[kLanes * kResyncInterval];
  alignas(32) double stage_z[kLanes * kResyncInterval];
  alignas(32) double stage_r[kLanes * kResyncInterval];

  double* dst_x[kLanes];
  double* dst_y[kLanes];
  double* dst_z[kLanes];
  double* dst_r[kLanes];
  for (std::size_t l = 0; l < kLanes; ++l) {
    dst_x[l] = out[l].x;
    dst_y[l] = out[l].y;
    dst_z[l] = out[l].z;
    dst_r[l] = out[l].r;
  }

  std::size_t k = 0;
  while (k < n) {
    // Exact libm resynchronisation, per lane, with the scalar path's exact
    // expression order: dt = t0 + h*k, then angle = angle0 + rate*dt. The
    // staging buffers double as scratch here; the register loads below
    // happen before the block loop overwrites them.
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double dt = batch.t0[l] + h * static_cast<double>(k);
      const double w = batch.w0[l] + batch.w_dot[l] * dt;
      const double raan = batch.o0[l] + batch.o_dot[l] * dt;
      const double m = batch.m0[l] + batch.m_dot[l] * dt;
      stage_x[l] = std::cos(w);
      stage_x[kLanes + l] = std::sin(w);
      stage_y[l] = std::cos(raan);
      stage_y[kLanes + l] = std::sin(raan);
      stage_z[l] = std::cos(m);
      stage_z[kLanes + l] = std::sin(m);
    }
    cw = _mm256_load_pd(stage_x);
    sw = _mm256_load_pd(stage_x + kLanes);
    co = _mm256_load_pd(stage_y);
    so = _mm256_load_pd(stage_y + kLanes);
    ce = _mm256_load_pd(stage_z);
    se = _mm256_load_pd(stage_z + kLanes);

    const std::size_t block = std::min(kResyncInterval, n - k);
    for (std::size_t j = 0; j < block; ++j) {
      // Perifocal coordinates from the (circular) eccentric anomaly.
      const __m256d xp = _mm256_mul_pd(a, _mm256_sub_pd(ce, e));
      const __m256d yp = _mm256_mul_pd(b, se);
      const __m256d r = _mm256_mul_pd(a, _mm256_sub_pd(one, _mm256_mul_pd(e, ce)));
      // Rz(argp)
      const __m256d x1 =
          _mm256_sub_pd(_mm256_mul_pd(xp, cw), _mm256_mul_pd(yp, sw));
      const __m256d y1 =
          _mm256_add_pd(_mm256_mul_pd(xp, sw), _mm256_mul_pd(yp, cw));
      // Rx(inclination)
      const __m256d y2 = _mm256_mul_pd(y1, cos_i);
      const __m256d z2 = _mm256_mul_pd(y1, sin_i);
      // Rz(raan - gmst), sidereal rotation folded in via the shared table.
      const __m256d cg = _mm256_set1_pd(cos_gmst[k + j]);
      const __m256d sg = _mm256_set1_pd(sin_gmst[k + j]);
      const __m256d ca =
          _mm256_add_pd(_mm256_mul_pd(co, cg), _mm256_mul_pd(so, sg));
      const __m256d sa =
          _mm256_sub_pd(_mm256_mul_pd(so, cg), _mm256_mul_pd(co, sg));
      _mm256_store_pd(stage_x + kLanes * j,
                      _mm256_sub_pd(_mm256_mul_pd(x1, ca), _mm256_mul_pd(y2, sa)));
      _mm256_store_pd(stage_y + kLanes * j,
                      _mm256_add_pd(_mm256_mul_pd(x1, sa), _mm256_mul_pd(y2, ca)));
      _mm256_store_pd(stage_z + kLanes * j, z2);
      _mm256_store_pd(stage_r + kLanes * j, r);

      // Advance the incremental rotations to step k+j+1.
      const __m256d cw_next =
          _mm256_sub_pd(_mm256_mul_pd(cw, cdw), _mm256_mul_pd(sw, sdw));
      sw = _mm256_add_pd(_mm256_mul_pd(sw, cdw), _mm256_mul_pd(cw, sdw));
      cw = cw_next;
      const __m256d co_next =
          _mm256_sub_pd(_mm256_mul_pd(co, cdo), _mm256_mul_pd(so, sdo));
      so = _mm256_add_pd(_mm256_mul_pd(so, cdo), _mm256_mul_pd(co, sdo));
      co = co_next;
      const __m256d ce_next =
          _mm256_sub_pd(_mm256_mul_pd(ce, cdm), _mm256_mul_pd(se, sdm));
      se = _mm256_add_pd(_mm256_mul_pd(se, cdm), _mm256_mul_pd(ce, sdm));
      ce = ce_next;
    }

    deinterleave_store(stage_x, dst_x, k, block);
    deinterleave_store(stage_y, dst_y, k, block);
    deinterleave_store(stage_z, dst_z, k, block);
    deinterleave_store(stage_r, dst_r, k, block);
    k += block;
  }
}

}  // namespace mpleo::orbit::batch

#endif  // MPLEO_HAVE_AVX2_KERNEL
