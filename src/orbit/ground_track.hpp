// Ground tracks: the sub-satellite point over time. This is the geometry in
// the paper's Fig. 1a — a LEO satellite's track shifts westward every orbit
// because Earth rotates underneath it, which is why region-specific
// constellations waste capacity.
#pragma once

#include <vector>

#include "orbit/geodesy.hpp"
#include "orbit/propagator.hpp"
#include "orbit/time.hpp"

namespace mpleo::orbit {

struct GroundTrackPoint {
  double offset_seconds = 0.0;  // from grid start
  Geodetic point;               // sub-satellite latitude/longitude (alt = 0)
};

// Sub-satellite points at every grid step.
[[nodiscard]] std::vector<GroundTrackPoint> ground_track(
    const KeplerianPropagator& propagator, const TimeGrid& grid);

// Westward shift (degrees, positive = west) of the ground track between
// consecutive ascending equator crossings — approximately
// 360 deg * period / sidereal day (~22.9 deg for a 550 km orbit), modified
// slightly by J2 nodal regression.
[[nodiscard]] double ground_track_shift_per_orbit_deg(
    const KeplerianPropagator& propagator) noexcept;

// Maximum |latitude| the track reaches: the orbit inclination (mirrored for
// retrograde orbits).
[[nodiscard]] double max_track_latitude_rad(const ClassicalElements& elements) noexcept;

}  // namespace mpleo::orbit
