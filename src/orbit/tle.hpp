// NORAD Two-Line Element (TLE) parsing, formatting, and conversion to the
// library's classical elements. Supports the standard 69-column fixed format
// including the modulo-10 checksum and the implied-decimal exponent fields.
#pragma once

#include <string>
#include <vector>

#include "core/validation.hpp"
#include "orbit/elements.hpp"
#include "orbit/time.hpp"

namespace mpleo::orbit {

struct Tle {
  std::string name;         // optional line-0 satellite name
  int catalog_number = 0;   // NORAD id
  char classification = 'U';
  std::string intl_designator;  // e.g. "24001A"
  TimePoint epoch;
  double mean_motion_dot = 0.0;    // rev/day^2 (first derivative / 2 field)
  double mean_motion_ddot = 0.0;   // rev/day^3 (second derivative / 6 field)
  double bstar = 0.0;              // 1/earth-radii drag term
  int element_set_number = 0;
  int revolution_number = 0;

  double inclination_deg = 0.0;
  double raan_deg = 0.0;
  double eccentricity = 0.0;
  double arg_perigee_deg = 0.0;
  double mean_anomaly_deg = 0.0;
  double mean_motion_rev_per_day = 15.0;

  // Mean elements equivalent to this TLE (a derived from the mean motion).
  [[nodiscard]] ClassicalElements to_elements() const noexcept;

  // Builds a TLE record from elements at an epoch (inverse of to_elements).
  [[nodiscard]] static Tle from_elements(const ClassicalElements& coe, TimePoint epoch,
                                         int catalog_number, std::string name = {});
};

// One malformed or out-of-range field, named so ingestion pipelines can
// triage programmatically instead of string-matching a flat message. A thin
// alias of the unified core::ConfigIssue — `field` is e.g.
// "inclination_deg" or "line1.checksum", `message` includes the offending
// text, and parse issues carry component "orbit.tle".
using TleFieldIssue = core::ConfigIssue;

// Parse results carry error details instead of throwing: TLE ingestion is a
// data-plane operation that must tolerate malformed catalog lines. All field
// problems found are collected (not just the first), and every element field
// is range-checked — a line that parses numerically but encodes a physically
// impossible orbit is rejected, not silently accepted.
struct TleParseResult {
  bool ok = false;
  std::string error;                  // joined summary of `issues`
  std::vector<TleFieldIssue> issues;  // every problem found, in field order
  Tle tle;
};

// Parses a 2-line record (line0 name optional; pass empty string if absent).
[[nodiscard]] TleParseResult parse_tle(const std::string& line0, const std::string& line1,
                                       const std::string& line2);

// Formats the two 69-column lines (checksums computed). name is emitted by
// the caller if desired; returns {line1, line2}.
struct TleLines {
  std::string line1;
  std::string line2;
};
[[nodiscard]] TleLines format_tle(const Tle& tle);

// The standard TLE checksum: digit sum + count of '-' characters, mod 10,
// over the first 68 columns.
[[nodiscard]] int tle_checksum(const std::string& line) noexcept;

// Parses a whole catalog in 2LE or 3LE (name-line) format. Malformed records
// are skipped and reported; parsing continues — catalog files in the wild
// routinely contain damaged rows.
struct TleCatalog {
  std::vector<Tle> entries;
  std::vector<std::string> errors;  // "line N: <reason>" per skipped record
};
[[nodiscard]] TleCatalog parse_tle_catalog(const std::string& text);

// Formats satellites as a 3LE catalog block (name line + two element lines
// per satellite).
[[nodiscard]] std::string format_tle_catalog(const std::vector<Tle>& entries);

}  // namespace mpleo::orbit
