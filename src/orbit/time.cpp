#include "orbit/time.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "util/angles.hpp"
#include "util/units.hpp"

namespace mpleo::orbit {

void TimePoint::normalise() noexcept {
  // Snap jd_midnight_ to the nearest midnight boundary (fraction 0.5), moving
  // any residual into seconds_, then wrap seconds_ into [0, 86400).
  const double boundary = std::floor(jd_midnight_ - 0.5) + 0.5;
  seconds_ += (jd_midnight_ - boundary) * util::kSecondsPerDay;
  jd_midnight_ = boundary;
  const double days = std::floor(seconds_ / util::kSecondsPerDay);
  if (days != 0.0) {
    jd_midnight_ += days;
    seconds_ -= days * util::kSecondsPerDay;
  }
  if (seconds_ < 0.0) {  // guard against -0.0 / rounding
    seconds_ = 0.0;
  }
}

TimePoint TimePoint::from_julian_date(double jd) noexcept { return TimePoint(jd, 0.0); }

TimePoint TimePoint::from_civil(const CivilTime& c) {
  if (c.month < 1 || c.month > 12 || c.day < 1 || c.day > 31 || c.year < 1583) {
    throw std::invalid_argument("TimePoint::from_civil: invalid civil date");
  }
  // Fliegel & Van Flandern (1968) Gregorian date -> Julian day number.
  const long y = c.year;
  const long m = c.month;
  const long d = c.day;
  const long jdn = d - 32075 + 1461 * (y + 4800 + (m - 14) / 12) / 4 +
                   367 * (m - 2 - (m - 14) / 12 * 12) / 12 -
                   3 * ((y + 4900 + (m - 14) / 12) / 100) / 4;
  // jdn is the Julian day number at *noon* of the civil date; midnight is
  // half a day earlier.
  const double seconds = static_cast<double>(c.hour) * 3600.0 +
                         static_cast<double>(c.minute) * 60.0 + c.second;
  return TimePoint(static_cast<double>(jdn) - 0.5, seconds);
}

TimePoint TimePoint::from_iso8601(const std::string& text) {
  CivilTime c;
  double sec = 0.0;
  const int matched = std::sscanf(text.c_str(), "%d-%d-%dT%d:%d:%lf", &c.year, &c.month,
                                  &c.day, &c.hour, &c.minute, &sec);
  if (matched < 3) throw std::invalid_argument("TimePoint::from_iso8601: parse failure");
  c.second = matched >= 6 ? sec : 0.0;
  if (matched < 5) c.minute = 0;
  if (matched < 4) c.hour = 0;
  return from_civil(c);
}

CivilTime TimePoint::to_civil() const {
  // Invert Fliegel & Van Flandern. jd_midnight_ + 0.5 is exactly the Julian
  // day number of the civil date; seconds_ carries the time of day.
  const auto z = static_cast<long>(std::floor(jd_midnight_ + 0.5 + 1e-9));

  long a = z;
  if (z >= 2299161) {
    const long alpha = static_cast<long>((static_cast<double>(z) - 1867216.25) / 36524.25);
    a = z + 1 + alpha - alpha / 4;
  }
  const long b = a + 1524;
  const auto cc = static_cast<long>((static_cast<double>(b) - 122.1) / 365.25);
  const auto dd = static_cast<long>(365.25 * static_cast<double>(cc));
  const auto e = static_cast<long>(static_cast<double>(b - dd) / 30.6001);

  CivilTime out;
  out.day = static_cast<int>(b - dd - static_cast<long>(30.6001 * static_cast<double>(e)));
  out.month = static_cast<int>(e < 14 ? e - 1 : e - 13);
  out.year = static_cast<int>(out.month > 2 ? cc - 4716 : cc - 4715);

  double seconds = seconds_;
  out.hour = static_cast<int>(seconds / 3600.0);
  seconds -= out.hour * 3600.0;
  out.minute = static_cast<int>(seconds / 60.0);
  out.second = seconds - out.minute * 60.0;
  // Guard against floating point pushing second to 60.
  if (out.second >= 60.0 - 1e-9) {
    out.second = 0.0;
    if (++out.minute == 60) {
      out.minute = 0;
      ++out.hour;
    }
  }
  return out;
}

std::string TimePoint::to_iso8601() const {
  const CivilTime c = to_civil();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%06.3fZ", c.year, c.month, c.day,
                c.hour, c.minute, c.second);
  return buf;
}

double TimePoint::seconds_since(const TimePoint& earlier) const noexcept {
  // Whole-day differences are exact (midnight JDs are x.5 integers well
  // within double's exact-integer range), so the result is exact to the
  // precision of the stored seconds.
  return (jd_midnight_ - earlier.jd_midnight_) * util::kSecondsPerDay +
         (seconds_ - earlier.seconds_);
}

TimePoint TimePoint::plus_seconds(double seconds) const noexcept {
  return TimePoint(jd_midnight_, seconds_ + seconds);
}

TimePoint TimePoint::plus_days(double days) const noexcept {
  return TimePoint(jd_midnight_ + days, seconds_);
}

double gmst_rad(const TimePoint& t) noexcept {
  // IAU 1982 GMST, evaluated with UTC as a stand-in for UT1 (|UT1-UTC| < 1 s).
  const double d = t.julian_date() - kJ2000Jd;
  const double tc = d / 36525.0;  // Julian centuries since J2000
  const double gmst_deg = 280.46061837 + 360.98564736629 * d + 0.000387933 * tc * tc -
                          tc * tc * tc / 38710000.0;
  return util::wrap_two_pi(util::deg_to_rad(gmst_deg));
}

TimeGrid TimeGrid::over_duration(TimePoint start, double duration_seconds,
                                 double step_seconds) {
  if (!(step_seconds > 0.0) || duration_seconds < 0.0) {
    throw std::invalid_argument("TimeGrid: step must be > 0 and duration >= 0");
  }
  TimeGrid grid;
  grid.start = start;
  grid.step_seconds = step_seconds;
  grid.count = static_cast<std::size_t>(std::floor(duration_seconds / step_seconds)) + 1;
  return grid;
}

}  // namespace mpleo::orbit
