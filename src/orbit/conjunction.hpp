// Conjunction screening and orbital occupancy — the §1 sustainability
// argument ("increased orbital congestion, with higher risks of collisions")
// made measurable. MP-LEO's pitch is that one shared constellation occupies
// fewer altitude bands with fewer satellites than N redundant sovereign
// constellations; these tools quantify both the crowding and the
// close-approach load.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "constellation/shell.hpp"
#include "orbit/propagator.hpp"
#include "orbit/time.hpp"

namespace mpleo::orbit {

struct CloseApproach {
  std::size_t satellite_a = 0;  // indices into the screened set
  std::size_t satellite_b = 0;
  double min_distance_m = 0.0;
  double offset_seconds = 0.0;  // from grid start, at the sampled minimum
};

// Minimum separation of two satellites across the grid (sampled at grid
// resolution; LEO relative velocities of ~10 km/s mean a 1 s step resolves
// to ~10 km — choose the step to match the screening threshold).
[[nodiscard]] CloseApproach closest_approach(const constellation::Satellite& a,
                                             const constellation::Satellite& b,
                                             const TimeGrid& grid);

// All pairs whose sampled minimum separation falls below `threshold_m`,
// sorted by ascending distance. O(n^2 * steps): intended for screening
// shells or samples, not 10k-satellite catalogs at 1 s resolution.
[[nodiscard]] std::vector<CloseApproach> screen_conjunctions(
    std::span<const constellation::Satellite> satellites, const TimeGrid& grid,
    double threshold_m);

// Orbital occupancy: satellites per altitude band (keyed by the band's lower
// edge in metres). The abstract's "orbital occupancy" metric.
[[nodiscard]] std::map<double, std::size_t> altitude_occupancy(
    std::span<const constellation::Satellite> satellites, double band_width_m);

// Crowding index: mean satellites per occupied band (higher = more crowded
// shells, more coordination burden).
[[nodiscard]] double crowding_index(const std::map<double, std::size_t>& occupancy);

}  // namespace mpleo::orbit
