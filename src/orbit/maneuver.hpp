// Impulsive maneuver budgets: the delta-v arithmetic behind constellation
// deployment choices (§3.3) and end-of-life disposal (§1's sustainability
// concern). All two-body circular-orbit approximations — the fidelity of a
// mission-planning spreadsheet, which is what incremental-deployment
// decisions are made with.
#pragma once

#include <cstddef>

namespace mpleo::orbit {

// Circular orbital speed at radius r (m), m/s.
[[nodiscard]] double circular_velocity(double radius_m);

// Total delta-v (m/s) of a two-burn Hohmann transfer between circular orbits
// at the given radii (order independent).
[[nodiscard]] double hohmann_delta_v(double r1_m, double r2_m);

// Transfer time (s) of the Hohmann half-ellipse.
[[nodiscard]] double hohmann_transfer_time(double r1_m, double r2_m);

// Delta-v of a pure plane change of `delta_inclination_rad` at circular
// speed for `radius_m`: 2 v sin(di/2). The reason "different inclination"
// (Fig 4c's best coverage factor) is the most expensive slot to fill.
[[nodiscard]] double plane_change_delta_v(double radius_m, double delta_inclination_rad);

// Co-planar phasing: time (s) to drift `phase_change_rad` ahead/behind by
// temporarily lowering/raising the orbit by `altitude_offset_m`.
// Positive phase change = move ahead (drift in a lower, faster orbit).
[[nodiscard]] double phasing_time(double radius_m, double phase_change_rad,
                                  double altitude_offset_m);

// Delta-v to enter and leave the phasing orbit (two Hohmann-like pairs).
[[nodiscard]] double phasing_delta_v(double radius_m, double altitude_offset_m);

// Delta-v to lower perigee from a circular orbit at `radius_m` to
// `perigee_target_m` (deorbit burn; target below the dense atmosphere).
[[nodiscard]] double deorbit_delta_v(double radius_m, double perigee_target_m);

}  // namespace mpleo::orbit
