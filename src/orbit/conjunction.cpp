#include "orbit/conjunction.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/units.hpp"

namespace mpleo::orbit {

CloseApproach closest_approach(const constellation::Satellite& a,
                               const constellation::Satellite& b, const TimeGrid& grid) {
  const KeplerianPropagator prop_a(a.elements, a.epoch);
  const KeplerianPropagator prop_b(b.elements, b.epoch);

  CloseApproach approach;
  approach.min_distance_m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < grid.count; ++i) {
    const TimePoint t = grid.at(i);
    // Relative distance is frame-independent; compare in ECI directly.
    const util::Vec3 ra = prop_a.state_at(t).position;
    const util::Vec3 rb = prop_b.state_at(t).position;
    const double d = (ra - rb).norm();
    if (d < approach.min_distance_m) {
      approach.min_distance_m = d;
      approach.offset_seconds = grid.step_seconds * static_cast<double>(i);
    }
  }
  return approach;
}

std::vector<CloseApproach> screen_conjunctions(
    std::span<const constellation::Satellite> satellites, const TimeGrid& grid,
    double threshold_m) {
  if (threshold_m <= 0.0) {
    throw std::invalid_argument("screen_conjunctions: threshold must be > 0");
  }
  // Precompute ECI positions per satellite per step (time-major would thrash
  // propagators; satellite-major reuses each one).
  std::vector<std::vector<util::Vec3>> positions(satellites.size());
  for (std::size_t s = 0; s < satellites.size(); ++s) {
    const KeplerianPropagator prop(satellites[s].elements, satellites[s].epoch);
    positions[s].reserve(grid.count);
    const double t0 = grid.start.seconds_since(satellites[s].epoch);
    for (std::size_t i = 0; i < grid.count; ++i) {
      positions[s].push_back(prop.position_eci_at_offset(
          t0 + grid.step_seconds * static_cast<double>(i)));
    }
  }

  std::vector<CloseApproach> hits;
  const double threshold_sq = threshold_m * threshold_m;
  for (std::size_t i = 0; i < satellites.size(); ++i) {
    for (std::size_t j = i + 1; j < satellites.size(); ++j) {
      double best_sq = std::numeric_limits<double>::infinity();
      std::size_t best_step = 0;
      for (std::size_t k = 0; k < grid.count; ++k) {
        const double d_sq = (positions[i][k] - positions[j][k]).norm_squared();
        if (d_sq < best_sq) {
          best_sq = d_sq;
          best_step = k;
        }
      }
      if (best_sq < threshold_sq) {
        hits.push_back({i, j, std::sqrt(best_sq),
                        grid.step_seconds * static_cast<double>(best_step)});
      }
    }
  }
  std::sort(hits.begin(), hits.end(), [](const CloseApproach& a, const CloseApproach& b) {
    return a.min_distance_m < b.min_distance_m;
  });
  return hits;
}

std::map<double, std::size_t> altitude_occupancy(
    std::span<const constellation::Satellite> satellites, double band_width_m) {
  if (band_width_m <= 0.0) {
    throw std::invalid_argument("altitude_occupancy: band width must be > 0");
  }
  std::map<double, std::size_t> occupancy;
  for (const constellation::Satellite& sat : satellites) {
    const double altitude = sat.elements.semi_major_axis_m - util::kEarthMeanRadiusM;
    const double band = std::floor(altitude / band_width_m) * band_width_m;
    ++occupancy[band];
  }
  return occupancy;
}

double crowding_index(const std::map<double, std::size_t>& occupancy) {
  if (occupancy.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& [band, count] : occupancy) total += count;
  return static_cast<double>(total) / static_cast<double>(occupancy.size());
}

}  // namespace mpleo::orbit
