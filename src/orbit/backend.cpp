#include "orbit/backend.hpp"

#include <stdexcept>

namespace mpleo::orbit {

const char* to_string(PropagatorBackend backend) noexcept {
  switch (backend) {
    case PropagatorBackend::kJ2Analytic: return "j2_analytic";
    case PropagatorBackend::kSgp4: return "sgp4";
  }
  return "unknown";
}

PropagatorBackend propagator_backend_from_string(std::string_view name) {
  if (name == "j2" || name == "j2_analytic") return PropagatorBackend::kJ2Analytic;
  if (name == "sgp4") return PropagatorBackend::kSgp4;
  throw std::invalid_argument("unknown propagator backend: '" + std::string(name) +
                              "' (valid: j2_analytic, sgp4)");
}

}  // namespace mpleo::orbit
