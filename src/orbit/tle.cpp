#include "orbit/tle.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

// Extracts the [start, start+len) column slice (1-based TLE column start).
std::string slice(const std::string& line, std::size_t start_col, std::size_t len) {
  if (start_col - 1 >= line.size()) return {};
  return line.substr(start_col - 1, len);
}

double parse_double(const std::string& field, bool* ok) {
  char* end = nullptr;
  const std::string trimmed = field;
  const double v = std::strtod(trimmed.c_str(), &end);
  if (end == trimmed.c_str()) {
    *ok = false;
    return 0.0;
  }
  return v;
}

long parse_long(const std::string& field, bool* ok) {
  char* end = nullptr;
  const long v = std::strtol(field.c_str(), &end, 10);
  if (end == field.c_str()) {
    *ok = false;
    return 0;
  }
  return v;
}

// Parses the TLE "implied decimal + exponent" notation, e.g. " 34123-4"
// meaning 0.34123e-4, used for BSTAR and the second derivative field.
double parse_implied_exponent(const std::string& field, bool* ok) {
  std::string s;
  for (char ch : field) {
    if (!std::isspace(static_cast<unsigned char>(ch))) s += ch;
  }
  if (s.empty() || s == "00000-0" || s == "00000+0") return 0.0;
  double sign = 1.0;
  std::size_t i = 0;
  if (s[i] == '-') {
    sign = -1.0;
    ++i;
  } else if (s[i] == '+') {
    ++i;
  }
  std::string mantissa_digits;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    mantissa_digits += s[i++];
  }
  if (mantissa_digits.empty() || i >= s.size()) {
    *ok = false;
    return 0.0;
  }
  double exp_sign = 1.0;
  if (s[i] == '-') {
    exp_sign = -1.0;
    ++i;
  } else if (s[i] == '+') {
    ++i;
  }
  if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
    *ok = false;
    return 0.0;
  }
  const double exponent = exp_sign * (s[i] - '0');
  const double mantissa =
      std::strtod(("0." + mantissa_digits).c_str(), nullptr);
  return sign * mantissa * std::pow(10.0, exponent);
}

std::string format_implied_exponent(double value) {
  char buf[16];
  if (value == 0.0) return " 00000+0";
  const char sign = value < 0.0 ? '-' : ' ';
  double mag = std::fabs(value);
  int exponent = static_cast<int>(std::floor(std::log10(mag))) + 1;
  double mantissa = mag / std::pow(10.0, exponent);
  auto digits = static_cast<long>(std::llround(mantissa * 1e5));
  if (digits >= 100000) {  // rounding overflow, e.g. 0.999999 -> 1.0
    digits = 10000;
    ++exponent;
  }
  std::snprintf(buf, sizeof buf, "%c%05ld%+d", sign, digits, exponent);
  return buf;
}

// TLE epoch field: YYDDD.DDDDDDDD.
TimePoint parse_tle_epoch(const std::string& field, bool* ok) {
  bool field_ok = true;
  const double raw = parse_double(field, &field_ok);
  if (!field_ok) {
    *ok = false;
    return {};
  }
  const int yy = static_cast<int>(raw / 1000.0);
  const double doy = raw - yy * 1000.0;  // fractional day of year (1.0 = Jan 1 00:00)
  const int year = yy >= 57 ? 1900 + yy : 2000 + yy;
  const TimePoint jan1 = TimePoint::from_civil({year, 1, 1, 0, 0, 0.0});
  return jan1.plus_days(doy - 1.0);
}

std::string format_tle_epoch(const TimePoint& t) {
  const CivilTime c = t.to_civil();
  const TimePoint jan1 = TimePoint::from_civil({c.year, 1, 1, 0, 0, 0.0});
  const double doy = t.seconds_since(jan1) / util::kSecondsPerDay + 1.0;
  const int yy = c.year % 100;
  char buf[20];
  std::snprintf(buf, sizeof buf, "%02d%012.8f", yy, doy);
  return buf;
}

}  // namespace

int tle_checksum(const std::string& line) noexcept {
  int sum = 0;
  const std::size_t limit = std::min<std::size_t>(line.size(), 68);
  for (std::size_t i = 0; i < limit; ++i) {
    const char ch = line[i];
    if (ch >= '0' && ch <= '9') sum += ch - '0';
    if (ch == '-') sum += 1;
  }
  return sum % 10;
}

TleParseResult parse_tle(const std::string& line0, const std::string& line1,
                         const std::string& line2) {
  TleParseResult result;
  auto add = [&result](std::string field, std::string message) {
    result.issues.push_back({"orbit.tle", std::move(field), std::move(message)});
  };
  // Joins the collected issues into the flat `error` summary and returns.
  auto finish_fail = [&result]() {
    result.ok = false;
    for (const TleFieldIssue& issue : result.issues) {
      if (!result.error.empty()) result.error += "; ";
      result.error += issue.field + ": " + issue.message;
    }
    return result;
  };

  // Structural problems make the column slices meaningless, so they abort
  // before field extraction; field and range problems are all collected.
  if (line1.size() < 69) add("line1", "shorter than 69 columns");
  if (line2.size() < 69) add("line2", "shorter than 69 columns");
  if (!result.issues.empty()) return finish_fail();
  if (line1[0] != '1') add("line1", "does not start with '1'");
  if (line2[0] != '2') add("line2", "does not start with '2'");
  if (!result.issues.empty()) return finish_fail();
  if (const int want = line1[68] - '0'; tle_checksum(line1) != want) {
    add("line1.checksum", "checksum mismatch: computed " +
                              std::to_string(tle_checksum(line1)) + ", line has " +
                              std::to_string(want));
  }
  if (const int want = line2[68] - '0'; tle_checksum(line2) != want) {
    add("line2.checksum", "checksum mismatch: computed " +
                              std::to_string(tle_checksum(line2)) + ", line has " +
                              std::to_string(want));
  }
  if (!result.issues.empty()) return finish_fail();

  auto parse_num = [&](const char* field, const std::string& text) {
    bool ok = true;
    const double v = parse_double(text, &ok);
    if (!ok) add(field, "unparsable numeric field '" + text + "'");
    return v;
  };
  auto parse_int = [&](const char* field, const std::string& text) {
    bool ok = true;
    const long v = parse_long(text, &ok);
    if (!ok) add(field, "unparsable integer field '" + text + "'");
    return static_cast<int>(v);
  };
  auto parse_imp = [&](const char* field, const std::string& text) {
    bool ok = true;
    const double v = parse_implied_exponent(text, &ok);
    if (!ok) add(field, "unparsable implied-exponent field '" + text + "'");
    return v;
  };
  // Rejects NaN too: !(v >= lo && v <= hi) is true for unordered compares.
  auto check_range = [&](const char* field, double v, double lo, double hi) {
    if (!(v >= lo && v <= hi)) {
      add(field, "value " + std::to_string(v) + " outside [" + std::to_string(lo) +
                     ", " + std::to_string(hi) + "]");
    }
  };

  Tle tle;
  tle.name = line0;
  while (!tle.name.empty() && std::isspace(static_cast<unsigned char>(tle.name.back()))) {
    tle.name.pop_back();
  }

  tle.catalog_number = parse_int("catalog_number", slice(line1, 3, 5));
  tle.classification = line1[7];
  tle.intl_designator = slice(line1, 10, 8);
  while (!tle.intl_designator.empty() &&
         std::isspace(static_cast<unsigned char>(tle.intl_designator.back()))) {
    tle.intl_designator.pop_back();
  }
  {
    bool ok = true;
    tle.epoch = parse_tle_epoch(slice(line1, 19, 14), &ok);
    if (!ok) add("epoch", "unparsable epoch field '" + slice(line1, 19, 14) + "'");
  }
  tle.mean_motion_dot = parse_num("mean_motion_dot", slice(line1, 34, 10));
  tle.mean_motion_ddot = parse_imp("mean_motion_ddot", slice(line1, 45, 8));
  tle.bstar = parse_imp("bstar", slice(line1, 54, 8));
  tle.element_set_number = parse_int("element_set_number", slice(line1, 65, 4));

  const int cat2 = parse_int("catalog_number", slice(line2, 3, 5));
  if (cat2 != tle.catalog_number) {
    add("catalog_number", "catalog number differs between lines (" +
                              std::to_string(tle.catalog_number) + " vs " +
                              std::to_string(cat2) + ")");
    return finish_fail();
  }
  tle.inclination_deg = parse_num("inclination_deg", slice(line2, 9, 8));
  tle.raan_deg = parse_num("raan_deg", slice(line2, 18, 8));
  tle.eccentricity = parse_num("eccentricity", "0." + slice(line2, 27, 7));
  tle.arg_perigee_deg = parse_num("arg_perigee_deg", slice(line2, 35, 8));
  tle.mean_anomaly_deg = parse_num("mean_anomaly_deg", slice(line2, 44, 8));
  tle.mean_motion_rev_per_day = parse_num("mean_motion", slice(line2, 53, 11));
  tle.revolution_number = parse_int("revolution_number", slice(line2, 64, 5));
  if (!result.issues.empty()) return finish_fail();

  // Physical element ranges. The upper angle bound is inclusive because
  // formatted lines legitimately round up to 360.0000.
  check_range("inclination_deg", tle.inclination_deg, 0.0, 180.0);
  check_range("raan_deg", tle.raan_deg, 0.0, 360.0);
  check_range("arg_perigee_deg", tle.arg_perigee_deg, 0.0, 360.0);
  check_range("mean_anomaly_deg", tle.mean_anomaly_deg, 0.0, 360.0);
  if (!(tle.eccentricity >= 0.0 && tle.eccentricity < 1.0)) {
    add("eccentricity",
        "value " + std::to_string(tle.eccentricity) + " outside [0, 1)");
  }
  // No bound orbit above the Earth's surface completes 20+ rev/day.
  if (!(tle.mean_motion_rev_per_day > 0.0 && tle.mean_motion_rev_per_day <= 20.0)) {
    add("mean_motion", "value " + std::to_string(tle.mean_motion_rev_per_day) +
                           " outside (0, 20] rev/day");
  }
  if (!result.issues.empty()) return finish_fail();

  result.ok = true;
  result.tle = std::move(tle);
  return result;
}

TleLines format_tle(const Tle& tle) {
  char l1[80];
  char l2[80];

  // First derivative field: sign, then ".NNNNNNNN".
  char nd_buf[16];
  std::snprintf(nd_buf, sizeof nd_buf, "%.8f", std::fabs(tle.mean_motion_dot));
  // nd_buf is "0.XXXXXXXX"; the TLE field drops the leading zero.
  std::string ndot = (tle.mean_motion_dot < 0.0 ? "-" : " ") + std::string(nd_buf + 1);

  std::snprintf(l1, sizeof l1, "1 %05dU %-8s %s %s %s %s 0 %4d", tle.catalog_number,
                tle.intl_designator.c_str(), format_tle_epoch(tle.epoch).c_str(),
                ndot.c_str(), format_implied_exponent(tle.mean_motion_ddot).c_str(),
                format_implied_exponent(tle.bstar).c_str(), tle.element_set_number % 10000);

  const auto ecc_digits = static_cast<long>(std::llround(tle.eccentricity * 1e7));
  std::snprintf(l2, sizeof l2, "2 %05d %8.4f %8.4f %07ld %8.4f %8.4f %11.8f%5d",
                tle.catalog_number, tle.inclination_deg, tle.raan_deg, ecc_digits,
                tle.arg_perigee_deg, tle.mean_anomaly_deg, tle.mean_motion_rev_per_day,
                tle.revolution_number % 100000);

  TleLines lines{l1, l2};
  lines.line1 += static_cast<char>('0' + tle_checksum(lines.line1));
  lines.line2 += static_cast<char>('0' + tle_checksum(lines.line2));
  return lines;
}

TleCatalog parse_tle_catalog(const std::string& text) {
  TleCatalog catalog;

  // Split into lines (tolerate \r\n).
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    start = end + 1;
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();

  std::string pending_name;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    if (line[0] == '1' && line.size() >= 69) {
      if (i + 1 >= lines.size()) {
        catalog.errors.push_back("line " + std::to_string(i + 1) +
                                 ": line 1 without a following line 2");
        break;
      }
      TleParseResult parsed = parse_tle(pending_name, line, lines[i + 1]);
      if (parsed.ok) {
        catalog.entries.push_back(std::move(parsed.tle));
      } else {
        catalog.errors.push_back("line " + std::to_string(i + 1) + ": " + parsed.error);
      }
      pending_name.clear();
      ++i;  // consume line 2
    } else {
      // Anything else is treated as a name (line 0), possibly "0 NAME".
      pending_name = line;
      if (pending_name.size() >= 2 && pending_name[0] == '0' && pending_name[1] == ' ') {
        pending_name.erase(0, 2);
      }
    }
  }
  return catalog;
}

std::string format_tle_catalog(const std::vector<Tle>& entries) {
  std::string out;
  for (const Tle& tle : entries) {
    const TleLines lines = format_tle(tle);
    out += tle.name.empty() ? "UNKNOWN" : tle.name;
    out += '\n';
    out += lines.line1;
    out += '\n';
    out += lines.line2;
    out += '\n';
  }
  return out;
}

ClassicalElements Tle::to_elements() const noexcept {
  ClassicalElements coe;
  const double n = mean_motion_rev_per_day * util::kTwoPi / util::kSecondsPerDay;
  coe.semi_major_axis_m = std::cbrt(util::kMuEarth / (n * n));
  coe.eccentricity = eccentricity;
  coe.inclination_rad = util::deg_to_rad(inclination_deg);
  coe.raan_rad = util::deg_to_rad(raan_deg);
  coe.arg_perigee_rad = util::deg_to_rad(arg_perigee_deg);
  coe.mean_anomaly_rad = util::deg_to_rad(mean_anomaly_deg);
  return coe;
}

Tle Tle::from_elements(const ClassicalElements& coe, TimePoint epoch, int catalog_number,
                       std::string name) {
  Tle tle;
  tle.name = std::move(name);
  tle.catalog_number = catalog_number;
  tle.intl_designator = "24001A";
  tle.epoch = epoch;
  tle.inclination_deg = util::rad_to_deg(coe.inclination_rad);
  tle.raan_deg = util::rad_to_deg(coe.raan_rad);
  tle.eccentricity = coe.eccentricity;
  tle.arg_perigee_deg = util::rad_to_deg(coe.arg_perigee_rad);
  tle.mean_anomaly_deg = util::rad_to_deg(coe.mean_anomaly_rad);
  tle.mean_motion_rev_per_day =
      coe.mean_motion_rad_per_sec() * util::kSecondsPerDay / util::kTwoPi;
  return tle;
}

}  // namespace mpleo::orbit
