#include "orbit/tle.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {

// Extracts the [start, start+len) column slice (1-based TLE column start).
std::string slice(const std::string& line, std::size_t start_col, std::size_t len) {
  if (start_col - 1 >= line.size()) return {};
  return line.substr(start_col - 1, len);
}

double parse_double(const std::string& field, bool* ok) {
  char* end = nullptr;
  const std::string trimmed = field;
  const double v = std::strtod(trimmed.c_str(), &end);
  if (end == trimmed.c_str()) {
    *ok = false;
    return 0.0;
  }
  return v;
}

long parse_long(const std::string& field, bool* ok) {
  char* end = nullptr;
  const long v = std::strtol(field.c_str(), &end, 10);
  if (end == field.c_str()) {
    *ok = false;
    return 0;
  }
  return v;
}

// Parses the TLE "implied decimal + exponent" notation, e.g. " 34123-4"
// meaning 0.34123e-4, used for BSTAR and the second derivative field.
double parse_implied_exponent(const std::string& field, bool* ok) {
  std::string s;
  for (char ch : field) {
    if (!std::isspace(static_cast<unsigned char>(ch))) s += ch;
  }
  if (s.empty() || s == "00000-0" || s == "00000+0") return 0.0;
  double sign = 1.0;
  std::size_t i = 0;
  if (s[i] == '-') {
    sign = -1.0;
    ++i;
  } else if (s[i] == '+') {
    ++i;
  }
  std::string mantissa_digits;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
    mantissa_digits += s[i++];
  }
  if (mantissa_digits.empty() || i >= s.size()) {
    *ok = false;
    return 0.0;
  }
  double exp_sign = 1.0;
  if (s[i] == '-') {
    exp_sign = -1.0;
    ++i;
  } else if (s[i] == '+') {
    ++i;
  }
  if (i >= s.size() || !std::isdigit(static_cast<unsigned char>(s[i]))) {
    *ok = false;
    return 0.0;
  }
  const double exponent = exp_sign * (s[i] - '0');
  const double mantissa =
      std::strtod(("0." + mantissa_digits).c_str(), nullptr);
  return sign * mantissa * std::pow(10.0, exponent);
}

std::string format_implied_exponent(double value) {
  char buf[16];
  if (value == 0.0) return " 00000+0";
  const char sign = value < 0.0 ? '-' : ' ';
  double mag = std::fabs(value);
  int exponent = static_cast<int>(std::floor(std::log10(mag))) + 1;
  double mantissa = mag / std::pow(10.0, exponent);
  auto digits = static_cast<long>(std::llround(mantissa * 1e5));
  if (digits >= 100000) {  // rounding overflow, e.g. 0.999999 -> 1.0
    digits = 10000;
    ++exponent;
  }
  std::snprintf(buf, sizeof buf, "%c%05ld%+d", sign, digits, exponent);
  return buf;
}

// TLE epoch field: YYDDD.DDDDDDDD.
TimePoint parse_tle_epoch(const std::string& field, bool* ok) {
  bool field_ok = true;
  const double raw = parse_double(field, &field_ok);
  if (!field_ok) {
    *ok = false;
    return {};
  }
  const int yy = static_cast<int>(raw / 1000.0);
  const double doy = raw - yy * 1000.0;  // fractional day of year (1.0 = Jan 1 00:00)
  const int year = yy >= 57 ? 1900 + yy : 2000 + yy;
  const TimePoint jan1 = TimePoint::from_civil({year, 1, 1, 0, 0, 0.0});
  return jan1.plus_days(doy - 1.0);
}

std::string format_tle_epoch(const TimePoint& t) {
  const CivilTime c = t.to_civil();
  const TimePoint jan1 = TimePoint::from_civil({c.year, 1, 1, 0, 0, 0.0});
  const double doy = t.seconds_since(jan1) / util::kSecondsPerDay + 1.0;
  const int yy = c.year % 100;
  char buf[20];
  std::snprintf(buf, sizeof buf, "%02d%012.8f", yy, doy);
  return buf;
}

}  // namespace

int tle_checksum(const std::string& line) noexcept {
  int sum = 0;
  const std::size_t limit = std::min<std::size_t>(line.size(), 68);
  for (std::size_t i = 0; i < limit; ++i) {
    const char ch = line[i];
    if (ch >= '0' && ch <= '9') sum += ch - '0';
    if (ch == '-') sum += 1;
  }
  return sum % 10;
}

TleParseResult parse_tle(const std::string& line0, const std::string& line1,
                         const std::string& line2) {
  TleParseResult result;
  auto fail = [&result](std::string message) {
    result.ok = false;
    result.error = std::move(message);
    return result;
  };

  if (line1.size() < 69 || line2.size() < 69) return fail("line shorter than 69 columns");
  if (line1[0] != '1') return fail("line 1 does not start with '1'");
  if (line2[0] != '2') return fail("line 2 does not start with '2'");
  if (tle_checksum(line1) != line1[68] - '0') return fail("line 1 checksum mismatch");
  if (tle_checksum(line2) != line2[68] - '0') return fail("line 2 checksum mismatch");

  bool ok = true;
  Tle tle;
  tle.name = line0;
  while (!tle.name.empty() && std::isspace(static_cast<unsigned char>(tle.name.back()))) {
    tle.name.pop_back();
  }

  tle.catalog_number = static_cast<int>(parse_long(slice(line1, 3, 5), &ok));
  tle.classification = line1[7];
  tle.intl_designator = slice(line1, 10, 8);
  while (!tle.intl_designator.empty() &&
         std::isspace(static_cast<unsigned char>(tle.intl_designator.back()))) {
    tle.intl_designator.pop_back();
  }
  tle.epoch = parse_tle_epoch(slice(line1, 19, 14), &ok);
  tle.mean_motion_dot = parse_double(slice(line1, 34, 10), &ok);
  tle.mean_motion_ddot = parse_implied_exponent(slice(line1, 45, 8), &ok);
  tle.bstar = parse_implied_exponent(slice(line1, 54, 8), &ok);
  tle.element_set_number = static_cast<int>(parse_long(slice(line1, 65, 4), &ok));

  const int cat2 = static_cast<int>(parse_long(slice(line2, 3, 5), &ok));
  if (cat2 != tle.catalog_number) return fail("catalog number differs between lines");
  tle.inclination_deg = parse_double(slice(line2, 9, 8), &ok);
  tle.raan_deg = parse_double(slice(line2, 18, 8), &ok);
  tle.eccentricity = parse_double("0." + slice(line2, 27, 7), &ok);
  tle.arg_perigee_deg = parse_double(slice(line2, 35, 8), &ok);
  tle.mean_anomaly_deg = parse_double(slice(line2, 44, 8), &ok);
  tle.mean_motion_rev_per_day = parse_double(slice(line2, 53, 11), &ok);
  tle.revolution_number = static_cast<int>(parse_long(slice(line2, 64, 5), &ok));

  if (!ok) return fail("numeric field parse failure");
  if (tle.mean_motion_rev_per_day <= 0.0) return fail("non-positive mean motion");
  if (tle.eccentricity < 0.0 || tle.eccentricity >= 1.0) return fail("eccentricity out of range");

  result.ok = true;
  result.tle = std::move(tle);
  return result;
}

TleLines format_tle(const Tle& tle) {
  char l1[80];
  char l2[80];

  // First derivative field: sign, then ".NNNNNNNN".
  char nd_buf[16];
  std::snprintf(nd_buf, sizeof nd_buf, "%.8f", std::fabs(tle.mean_motion_dot));
  // nd_buf is "0.XXXXXXXX"; the TLE field drops the leading zero.
  std::string ndot = (tle.mean_motion_dot < 0.0 ? "-" : " ") + std::string(nd_buf + 1);

  std::snprintf(l1, sizeof l1, "1 %05dU %-8s %s %s %s %s 0 %4d", tle.catalog_number,
                tle.intl_designator.c_str(), format_tle_epoch(tle.epoch).c_str(),
                ndot.c_str(), format_implied_exponent(tle.mean_motion_ddot).c_str(),
                format_implied_exponent(tle.bstar).c_str(), tle.element_set_number % 10000);

  const auto ecc_digits = static_cast<long>(std::llround(tle.eccentricity * 1e7));
  std::snprintf(l2, sizeof l2, "2 %05d %8.4f %8.4f %07ld %8.4f %8.4f %11.8f%5d",
                tle.catalog_number, tle.inclination_deg, tle.raan_deg, ecc_digits,
                tle.arg_perigee_deg, tle.mean_anomaly_deg, tle.mean_motion_rev_per_day,
                tle.revolution_number % 100000);

  TleLines lines{l1, l2};
  lines.line1 += static_cast<char>('0' + tle_checksum(lines.line1));
  lines.line2 += static_cast<char>('0' + tle_checksum(lines.line2));
  return lines;
}

TleCatalog parse_tle_catalog(const std::string& text) {
  TleCatalog catalog;

  // Split into lines (tolerate \r\n).
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(std::move(line));
    start = end + 1;
  }
  while (!lines.empty() && lines.back().empty()) lines.pop_back();

  std::string pending_name;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    if (line[0] == '1' && line.size() >= 69) {
      if (i + 1 >= lines.size()) {
        catalog.errors.push_back("line " + std::to_string(i + 1) +
                                 ": line 1 without a following line 2");
        break;
      }
      TleParseResult parsed = parse_tle(pending_name, line, lines[i + 1]);
      if (parsed.ok) {
        catalog.entries.push_back(std::move(parsed.tle));
      } else {
        catalog.errors.push_back("line " + std::to_string(i + 1) + ": " + parsed.error);
      }
      pending_name.clear();
      ++i;  // consume line 2
    } else {
      // Anything else is treated as a name (line 0), possibly "0 NAME".
      pending_name = line;
      if (pending_name.size() >= 2 && pending_name[0] == '0' && pending_name[1] == ' ') {
        pending_name.erase(0, 2);
      }
    }
  }
  return catalog;
}

std::string format_tle_catalog(const std::vector<Tle>& entries) {
  std::string out;
  for (const Tle& tle : entries) {
    const TleLines lines = format_tle(tle);
    out += tle.name.empty() ? "UNKNOWN" : tle.name;
    out += '\n';
    out += lines.line1;
    out += '\n';
    out += lines.line2;
    out += '\n';
  }
  return out;
}

ClassicalElements Tle::to_elements() const noexcept {
  ClassicalElements coe;
  const double n = mean_motion_rev_per_day * util::kTwoPi / util::kSecondsPerDay;
  coe.semi_major_axis_m = std::cbrt(util::kMuEarth / (n * n));
  coe.eccentricity = eccentricity;
  coe.inclination_rad = util::deg_to_rad(inclination_deg);
  coe.raan_rad = util::deg_to_rad(raan_deg);
  coe.arg_perigee_rad = util::deg_to_rad(arg_perigee_deg);
  coe.mean_anomaly_rad = util::deg_to_rad(mean_anomaly_deg);
  return coe;
}

Tle Tle::from_elements(const ClassicalElements& coe, TimePoint epoch, int catalog_number,
                       std::string name) {
  Tle tle;
  tle.name = std::move(name);
  tle.catalog_number = catalog_number;
  tle.intl_designator = "24001A";
  tle.epoch = epoch;
  tle.inclination_deg = util::rad_to_deg(coe.inclination_rad);
  tle.raan_deg = util::rad_to_deg(coe.raan_rad);
  tle.eccentricity = coe.eccentricity;
  tle.arg_perigee_deg = util::rad_to_deg(coe.arg_perigee_rad);
  tle.mean_anomaly_deg = util::rad_to_deg(coe.mean_anomaly_rad);
  tle.mean_motion_rev_per_day =
      coe.mean_motion_rad_per_sec() * util::kSecondsPerDay / util::kTwoPi;
  return tle;
}

}  // namespace mpleo::orbit
