// WGS-84 geodesy and reference-frame transforms.
//
// Frames:
//   ECI  — Earth-centred inertial (TEME-like; z = rotation axis).
//   ECEF — Earth-centred Earth-fixed; rotates with GMST about z.
//   Topocentric (ENU) — local east/north/up at a ground site.
#pragma once

#include "orbit/time.hpp"
#include "util/vec3.hpp"

namespace mpleo::orbit {

using util::Vec3;

// Geodetic coordinates on the WGS-84 ellipsoid.
struct Geodetic {
  double latitude_rad = 0.0;   // [-pi/2, pi/2]
  double longitude_rad = 0.0;  // (-pi, pi]
  double altitude_m = 0.0;     // height above the ellipsoid

  [[nodiscard]] static Geodetic from_degrees(double lat_deg, double lon_deg,
                                             double alt_m = 0.0) noexcept;
};

// Geodetic -> ECEF (closed form).
[[nodiscard]] Vec3 geodetic_to_ecef(const Geodetic& g) noexcept;

// ECEF -> geodetic (Bowring's method, one refinement; < 1e-9 rad error for
// near-Earth points).
[[nodiscard]] Geodetic ecef_to_geodetic(const Vec3& ecef) noexcept;

// Frame rotations about z by the sidereal angle.
[[nodiscard]] Vec3 eci_to_ecef(const Vec3& eci, double gmst) noexcept;
[[nodiscard]] Vec3 ecef_to_eci(const Vec3& ecef, double gmst) noexcept;
[[nodiscard]] inline Vec3 eci_to_ecef(const Vec3& eci, const TimePoint& t) noexcept {
  return eci_to_ecef(eci, gmst_rad(t));
}

// Precomputed local east/north/up basis at a ground site; makes per-step
// elevation tests a couple of dot products.
class TopocentricFrame {
 public:
  explicit TopocentricFrame(const Geodetic& site) noexcept;

  [[nodiscard]] const Vec3& origin_ecef() const noexcept { return origin_; }
  [[nodiscard]] const Vec3& up() const noexcept { return up_; }
  [[nodiscard]] const Vec3& east() const noexcept { return east_; }
  [[nodiscard]] const Vec3& north() const noexcept { return north_; }

  // Elevation angle (radians) of a target given in ECEF; negative when the
  // target is below the local horizon.
  [[nodiscard]] double elevation_rad(const Vec3& target_ecef) const noexcept;
  // Azimuth angle (radians, clockwise from north in [0, 2*pi)).
  [[nodiscard]] double azimuth_rad(const Vec3& target_ecef) const noexcept;
  // Slant range (metres).
  [[nodiscard]] double range_m(const Vec3& target_ecef) const noexcept;

  // Fast visibility test: true iff elevation(target) >= mask. Equivalent to
  // elevation_rad(..) >= mask_rad but avoids the asin.
  [[nodiscard]] bool visible_above(const Vec3& target_ecef, double sin_mask) const noexcept;

 private:
  Vec3 origin_;
  Vec3 up_;
  Vec3 east_;
  Vec3 north_;
};

}  // namespace mpleo::orbit
