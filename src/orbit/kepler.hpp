// Kepler's equation and anomaly conversions for elliptic orbits (0 <= e < 1).
#pragma once

namespace mpleo::orbit {

// Solves Kepler's equation M = E - e*sin(E) for the eccentric anomaly E.
// Newton iteration with a high-eccentricity-safe starter and a bisection
// fallback; converges to |f(E)| < 1e-12 for all e in [0, 1).
// M may be any real; the result is in the same 2*pi branch as M.
[[nodiscard]] double solve_kepler(double mean_anomaly_rad, double eccentricity) noexcept;

// Anomaly conversions (radians). Preconditions: 0 <= e < 1.
[[nodiscard]] double true_from_eccentric(double eccentric_anomaly_rad,
                                         double eccentricity) noexcept;
[[nodiscard]] double eccentric_from_true(double true_anomaly_rad,
                                         double eccentricity) noexcept;
[[nodiscard]] double mean_from_eccentric(double eccentric_anomaly_rad,
                                         double eccentricity) noexcept;

}  // namespace mpleo::orbit
