#include "orbit/maneuver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/units.hpp"

namespace mpleo::orbit {
namespace {
constexpr double kMu = util::kMuEarth;

void require_positive_radius(double r) {
  if (!(r > util::kEarthMeanRadiusM * 0.5)) {
    throw std::invalid_argument("maneuver: radius implausibly small");
  }
}
}  // namespace

double circular_velocity(double radius_m) {
  require_positive_radius(radius_m);
  return std::sqrt(kMu / radius_m);
}

double hohmann_delta_v(double r1_m, double r2_m) {
  require_positive_radius(r1_m);
  require_positive_radius(r2_m);
  const double r1 = std::min(r1_m, r2_m);
  const double r2 = std::max(r1_m, r2_m);
  if (r1 == r2) return 0.0;
  const double a_transfer = (r1 + r2) / 2.0;
  const double v1 = std::sqrt(kMu / r1);
  const double v2 = std::sqrt(kMu / r2);
  const double v_peri = std::sqrt(kMu * (2.0 / r1 - 1.0 / a_transfer));
  const double v_apo = std::sqrt(kMu * (2.0 / r2 - 1.0 / a_transfer));
  return (v_peri - v1) + (v2 - v_apo);
}

double hohmann_transfer_time(double r1_m, double r2_m) {
  require_positive_radius(r1_m);
  require_positive_radius(r2_m);
  const double a_transfer = (r1_m + r2_m) / 2.0;
  return util::kPi * std::sqrt(a_transfer * a_transfer * a_transfer / kMu);
}

double plane_change_delta_v(double radius_m, double delta_inclination_rad) {
  return 2.0 * circular_velocity(radius_m) * std::fabs(std::sin(delta_inclination_rad / 2.0));
}

double phasing_time(double radius_m, double phase_change_rad, double altitude_offset_m) {
  require_positive_radius(radius_m);
  if (altitude_offset_m == 0.0 || phase_change_rad == 0.0) {
    throw std::invalid_argument("phasing_time: offset and phase change must be nonzero");
  }
  // Relative angular rate between the nominal orbit and the phasing orbit.
  const double n0 = std::sqrt(kMu / (radius_m * radius_m * radius_m));
  const double rp = radius_m - altitude_offset_m;  // lower = faster = catch up
  const double np = std::sqrt(kMu / (rp * rp * rp));
  const double relative_rate = np - n0;  // rad/s, sign follows offset
  const double required = phase_change_rad / relative_rate;
  if (required < 0.0) {
    throw std::invalid_argument(
        "phasing_time: offset direction cannot produce the requested drift");
  }
  return required;
}

double phasing_delta_v(double radius_m, double altitude_offset_m) {
  require_positive_radius(radius_m);
  // Enter and exit the phasing orbit: two Hohmann transfers.
  return 2.0 * hohmann_delta_v(radius_m, radius_m - altitude_offset_m);
}

double deorbit_delta_v(double radius_m, double perigee_target_m) {
  require_positive_radius(radius_m);
  if (perigee_target_m >= radius_m) {
    throw std::invalid_argument("deorbit_delta_v: target perigee above current orbit");
  }
  const double a_disposal = (radius_m + perigee_target_m) / 2.0;
  const double v_circ = circular_velocity(radius_m);
  const double v_after = std::sqrt(kMu * (2.0 / radius_m - 1.0 / a_disposal));
  return v_circ - v_after;
}

}  // namespace mpleo::orbit
