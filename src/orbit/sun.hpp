// Low-precision solar ephemeris and Earth-shadow (eclipse) tests.
//
// Needed by the power model: a LEO satellite spends ~35% of each orbit in
// Earth's shadow, which bounds how much spare capacity it can actually sell
// (§3.2 financial viability meets physics). Accuracy ~0.01 deg (Astronomical
// Almanac low-precision formula) — far beyond what eclipse timing needs.
#pragma once

#include "orbit/propagator.hpp"
#include "orbit/time.hpp"
#include "util/vec3.hpp"

namespace mpleo::orbit {

// Unit vector from Earth's centre toward the Sun, in the ECI frame.
[[nodiscard]] util::Vec3 sun_direction_eci(const TimePoint& t) noexcept;

// True when a satellite at `position_eci` (metres) is inside Earth's
// cylindrical umbra for the given sun direction.
[[nodiscard]] bool is_eclipsed(const util::Vec3& position_eci,
                               const util::Vec3& sun_direction) noexcept;

// Fraction of `grid` during which the satellite is sunlit.
[[nodiscard]] double sunlit_fraction(const KeplerianPropagator& propagator,
                                     const TimeGrid& grid);

}  // namespace mpleo::orbit
