// Classical (Keplerian) orbital elements and conversion to/from Cartesian
// inertial state vectors.
#pragma once

#include "util/vec3.hpp"

namespace mpleo::orbit {

using util::Vec3;

// Inertial position (m) and velocity (m/s).
struct StateVector {
  Vec3 position;
  Vec3 velocity;
};

// Classical orbital elements for a bound (elliptic) orbit.
// Angles in radians; semi-major axis in metres.
struct ClassicalElements {
  double semi_major_axis_m = 6928137.0;  // ~550 km altitude
  double eccentricity = 0.0;             // [0, 1)
  double inclination_rad = 0.0;          // [0, pi]
  double raan_rad = 0.0;                 // right ascension of ascending node
  double arg_perigee_rad = 0.0;
  double mean_anomaly_rad = 0.0;

  // Mean motion n = sqrt(mu/a^3), rad/s.
  [[nodiscard]] double mean_motion_rad_per_sec() const noexcept;
  // Orbital period, seconds.
  [[nodiscard]] double period_seconds() const noexcept;
  // Semi-latus rectum p = a(1-e^2), metres.
  [[nodiscard]] double semi_latus_rectum_m() const noexcept;
  // Perigee/apogee altitude above the mean Earth radius, metres.
  [[nodiscard]] double perigee_altitude_m() const noexcept;
  [[nodiscard]] double apogee_altitude_m() const noexcept;

  // Convenience constructor for circular orbits, taking the altitude above
  // the mean Earth radius and angles in degrees.
  [[nodiscard]] static ClassicalElements circular(double altitude_m, double inclination_deg,
                                                  double raan_deg,
                                                  double mean_anomaly_deg) noexcept;
};

// Elements -> inertial state (position/velocity) at the instant the mean
// anomaly refers to.
[[nodiscard]] StateVector elements_to_state(const ClassicalElements& coe) noexcept;

// Inertial state -> elements. Precondition: a bound, non-degenerate orbit.
// For near-circular / near-equatorial orbits the individual angles follow the
// usual conventions (raan := 0 when equatorial, argp := 0 when circular) so
// that elements_to_state(from_state(s)) reproduces s.
[[nodiscard]] ClassicalElements state_to_elements(const StateVector& state) noexcept;

}  // namespace mpleo::orbit
