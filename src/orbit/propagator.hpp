// Analytic orbit propagation: two-body Keplerian motion with optional J2
// secular perturbations (nodal regression, apsidal rotation, mean-anomaly
// drift). This is the same fidelity class as TLE mean-element propagation
// used by coverage simulators; short-period oscillations (~km) are far below
// the footprint scale (~1000 km) that drives coverage results.
#pragma once

#include "orbit/elements.hpp"
#include "orbit/time.hpp"

namespace mpleo::orbit {

enum class Perturbation {
  kNone,       // pure two-body
  kJ2Secular,  // two-body + secular J2 drift rates (default)
};

class KeplerianPropagator {
 public:
  // `epoch_elements` are osculating/mean elements valid at `epoch`.
  KeplerianPropagator(const ClassicalElements& epoch_elements, TimePoint epoch,
                      Perturbation perturbation = Perturbation::kJ2Secular) noexcept;

  // Elements advanced by `dt_seconds` from the epoch (secular rates applied).
  [[nodiscard]] ClassicalElements elements_at_offset(double dt_seconds) const noexcept;

  [[nodiscard]] StateVector state_at(const TimePoint& t) const noexcept;
  [[nodiscard]] StateVector state_at_offset(double dt_seconds) const noexcept;
  [[nodiscard]] Vec3 position_eci_at_offset(double dt_seconds) const noexcept;

  [[nodiscard]] const ClassicalElements& epoch_elements() const noexcept { return coe_; }
  [[nodiscard]] TimePoint epoch() const noexcept { return epoch_; }
  [[nodiscard]] Perturbation perturbation() const noexcept { return perturbation_; }

  // Secular rates (rad/s); zero under Perturbation::kNone.
  [[nodiscard]] double raan_rate() const noexcept { return raan_dot_; }
  [[nodiscard]] double arg_perigee_rate() const noexcept { return argp_dot_; }
  // Total mean anomaly rate including the J2 correction.
  [[nodiscard]] double mean_anomaly_rate() const noexcept { return m_dot_; }

 private:
  ClassicalElements coe_;
  TimePoint epoch_;
  Perturbation perturbation_;
  double raan_dot_ = 0.0;
  double argp_dot_ = 0.0;
  double m_dot_ = 0.0;
};

}  // namespace mpleo::orbit
