// SGP4 mean-element propagation — the NORAD model TLE catalogs are fitted
// against. Implemented from scratch following the Spacetrack Report #3
// equations as consolidated by Vallado's "Revisiting Spacetrack Report #3"
// (the near-earth branch: secular J2/J4 gravity, atmospheric drag through
// BSTAR, long- and short-period periodics).
//
// Output frame is TEME (true equator, mean equinox) — the frame TLE elements
// are defined in. The library's ECI->ECEF transform is the plain GMST
// rotation, which is exactly the TEME convention used by TLE-class coverage
// simulators, so SGP4 states slot into the shared ephemeris kernel with no
// extra frame plumbing.
//
// Deep-space orbits (period >= 225 min) need the SDP4 lunar/solar and
// resonance terms, which are outside this LEO simulator's envelope;
// initialisation reports them as unsupported and the backend facade falls
// back to the J2 analytic model for such entries (see make_propagator).
#pragma once

#include <string>

#include "orbit/elements.hpp"
#include "orbit/time.hpp"
#include "orbit/tle.hpp"

namespace mpleo::orbit {

class Sgp4Propagator {
 public:
  // Initialises the model from TLE mean elements. Throws
  // std::invalid_argument on out-of-domain inputs (deep-space period,
  // eccentricity outside [0, 1), non-positive mean motion).
  explicit Sgp4Propagator(const Tle& tle);

  // True for TLEs this implementation can propagate (near-earth period
  // < 225 min and in-range elements) — the facade's routing predicate.
  [[nodiscard]] static bool supports(const Tle& tle) noexcept;

  // TEME position (m) and velocity (m/s) at `dt_seconds` past the TLE epoch.
  // Throws std::domain_error if the orbit has decayed (radius below the
  // Earth surface) or drag drove the elements out of range at `dt_seconds`.
  [[nodiscard]] StateVector state_at_offset(double dt_seconds) const;
  [[nodiscard]] StateVector state_at(const TimePoint& t) const;
  [[nodiscard]] Vec3 position_eci_at_offset(double dt_seconds) const;

  [[nodiscard]] TimePoint epoch() const noexcept { return epoch_; }
  [[nodiscard]] const Tle& tle() const noexcept { return tle_; }

  // Semi-major axis recovered from the un-Kozai'd mean motion, metres —
  // useful for sanity checks and footprint sizing.
  [[nodiscard]] double semi_major_axis_m() const noexcept;

 private:
  Tle tle_;
  TimePoint epoch_;

  // Initialised model state (Vallado's variable names, WGS-72 constants in
  // Earth radii / radians / minutes).
  bool isimp_ = false;
  double no_unkozai_ = 0.0;  // mean motion, rad/min
  double ecco_ = 0.0, inclo_ = 0.0, nodeo_ = 0.0, argpo_ = 0.0, mo_ = 0.0;
  double bstar_ = 0.0;
  double ao_ = 0.0, con41_ = 0.0, x1mth2_ = 0.0, x7thm1_ = 0.0;
  double cc1_ = 0.0, cc4_ = 0.0, cc5_ = 0.0;
  double d2_ = 0.0, d3_ = 0.0, d4_ = 0.0;
  double t2cof_ = 0.0, t3cof_ = 0.0, t4cof_ = 0.0, t5cof_ = 0.0;
  double mdot_ = 0.0, argpdot_ = 0.0, nodedot_ = 0.0, nodecf_ = 0.0;
  double omgcof_ = 0.0, xmcof_ = 0.0, eta_ = 0.0, delmo_ = 0.0, sinmao_ = 0.0;
  double xlcof_ = 0.0, aycof_ = 0.0;
};

}  // namespace mpleo::orbit
