#include "orbit/ephemeris.hpp"

#include <cassert>
#include <cmath>

namespace mpleo::orbit {

GmstTable GmstTable::for_grid(const TimeGrid& grid) {
  GmstTable table;
  table.cos_gmst.reserve(grid.count);
  table.sin_gmst.reserve(grid.count);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const double g = gmst_rad(grid.at(i));
    table.cos_gmst.push_back(std::cos(g));
    table.sin_gmst.push_back(std::sin(g));
  }
  return table;
}

std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                       const TimeGrid& grid, const GmstTable& gmst) {
  assert(gmst.size() == grid.count);
  std::vector<util::Vec3> out;
  out.reserve(grid.count);
  const double t0 = grid.start.seconds_since(propagator.epoch());
  for (std::size_t i = 0; i < grid.count; ++i) {
    const double dt = t0 + grid.step_seconds * static_cast<double>(i);
    const util::Vec3 eci = propagator.position_eci_at_offset(dt);
    const double c = gmst.cos_gmst[i];
    const double s = gmst.sin_gmst[i];
    out.push_back({c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z});
  }
  return out;
}

std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                       const TimeGrid& grid) {
  return ecef_positions(propagator, grid, GmstTable::for_grid(grid));
}

}  // namespace mpleo::orbit
