#include "orbit/ephemeris.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "orbit/ephemeris_batch.hpp"
#include "orbit/kepler.hpp"
#include "orbit/simd.hpp"
#include "util/thread_pool.hpp"

namespace mpleo::orbit {
namespace {

// Steps between exact libm resynchronisations of the incremental plane
// rotations. Drift over one interval is a few tens of ulps — sub-micrometre
// at orbital radii, far below the <1 mm table accuracy contract.
constexpr std::size_t kResyncInterval = 64;
static_assert(kResyncInterval == batch::kResyncInterval,
              "scalar and lane-batched kernels must resync on the same cadence");

// Matches the solve_kepler fast path: below this the orbit is treated as
// circular (E == M) and the mean anomaly advances linearly in time.
constexpr double kCircularEccentricity = 1e-12;

}  // namespace

GmstTable GmstTable::for_grid(const TimeGrid& grid) {
  GmstTable table;
  table.cos_gmst.reserve(grid.count);
  table.sin_gmst.reserve(grid.count);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const double g = gmst_rad(grid.at(i));
    table.cos_gmst.push_back(std::cos(g));
    table.sin_gmst.push_back(std::sin(g));
  }
  return table;
}

std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                       const TimeGrid& grid, const GmstTable& gmst) {
  assert(gmst.size() == grid.count);
  std::vector<util::Vec3> out;
  out.reserve(grid.count);
  const double t0 = grid.start.seconds_since(propagator.epoch());
  for (std::size_t i = 0; i < grid.count; ++i) {
    const double dt = t0 + grid.step_seconds * static_cast<double>(i);
    const util::Vec3 eci = propagator.position_eci_at_offset(dt);
    const double c = gmst.cos_gmst[i];
    const double s = gmst.sin_gmst[i];
    out.push_back({c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z});
  }
  return out;
}

std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                       const TimeGrid& grid) {
  return ecef_positions(propagator, grid, GmstTable::for_grid(grid));
}

EphemerisTable EphemerisTable::compute(const KeplerianPropagator& propagator,
                                      const TimeGrid& grid, const GmstTable& gmst) {
  if (gmst.size() != grid.count) {
    throw std::invalid_argument("EphemerisTable: GmstTable does not match grid");
  }
  EphemerisTable table;
  const std::size_t n = grid.count;
  table.x_.resize(n);
  table.y_.resize(n);
  table.z_.resize(n);
  table.r_.resize(n);
  if (n == 0) return table;

  const ClassicalElements& coe = propagator.epoch_elements();
  const double a = coe.semi_major_axis_m;
  const double e = coe.eccentricity;
  const double b = a * std::sqrt(1.0 - e * e);  // semi-minor axis
  const double cos_i = std::cos(coe.inclination_rad);
  const double sin_i = std::sin(coe.inclination_rad);

  const double t0 = grid.start.seconds_since(propagator.epoch());
  const double h = grid.step_seconds;
  const double m_dot = propagator.mean_anomaly_rate();
  const double w_dot = propagator.arg_perigee_rate();
  const double o_dot = propagator.raan_rate();
  const bool circular = e < kCircularEccentricity;

  // Per-step rotations of the three time-linear angles.
  const double cdw = std::cos(w_dot * h), sdw = std::sin(w_dot * h);
  const double cdo = std::cos(o_dot * h), sdo = std::sin(o_dot * h);
  const double cdm = std::cos(m_dot * h), sdm = std::sin(m_dot * h);

  double cw = 0.0, sw = 0.0;  // argument of perigee
  double co = 0.0, so = 0.0;  // RAAN
  double ce = 0.0, se = 0.0;  // eccentric anomaly (circular fast path only)
  double r_min = 0.0, r_max = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    const double dt = t0 + h * static_cast<double>(k);
    if (k % kResyncInterval == 0) {
      const double w = coe.arg_perigee_rad + w_dot * dt;
      cw = std::cos(w);
      sw = std::sin(w);
      const double raan = coe.raan_rad + o_dot * dt;
      co = std::cos(raan);
      so = std::sin(raan);
      if (circular) {
        const double m = coe.mean_anomaly_rad + m_dot * dt;
        ce = std::cos(m);
        se = std::sin(m);
      }
    }
    if (!circular) {
      const double m = coe.mean_anomaly_rad + m_dot * dt;
      const double ecc_anomaly = solve_kepler(m, e);
      ce = std::cos(ecc_anomaly);
      se = std::sin(ecc_anomaly);
    }

    // Perifocal coordinates from the eccentric anomaly (identical geometry
    // to the r/nu form used by elements_to_state, without the atan2).
    const double xp = a * (ce - e);
    const double yp = b * se;
    const double r = a * (1.0 - e * ce);
    // Rz(argp)
    const double x1 = xp * cw - yp * sw;
    const double y1 = xp * sw + yp * cw;
    // Rx(inclination)
    const double y2 = y1 * cos_i;
    const double z2 = y1 * sin_i;
    // Rz(raan - gmst): the ECI->ECEF sidereal rotation folded into the node
    // rotation via the angle-difference identity, using the shared table.
    const double cg = gmst.cos_gmst[k];
    const double sg = gmst.sin_gmst[k];
    const double ca = co * cg + so * sg;
    const double sa = so * cg - co * sg;
    table.x_[k] = x1 * ca - y2 * sa;
    table.y_[k] = x1 * sa + y2 * ca;
    table.z_[k] = z2;
    table.r_[k] = r;
    if (k == 0 || r < r_min) r_min = r;
    if (k == 0 || r > r_max) r_max = r;

    // Advance the incremental rotations to step k+1.
    const double cw_next = cw * cdw - sw * sdw;
    sw = sw * cdw + cw * sdw;
    cw = cw_next;
    const double co_next = co * cdo - so * sdo;
    so = so * cdo + co * sdo;
    co = co_next;
    if (circular) {
      const double ce_next = ce * cdm - se * sdm;
      se = se * cdm + ce * sdm;
      ce = ce_next;
    }
  }

  table.r_min_ = r_min;
  table.r_max_ = r_max;
  if (circular) {
    const double u_dot = w_dot + m_dot;
    table.lat_arg_.valid = u_dot > 0.0;
    table.lat_arg_.u0 = coe.arg_perigee_rad + coe.mean_anomaly_rad + u_dot * t0;
    table.lat_arg_.du = u_dot * h;
    table.lat_arg_.sin_incl = sin_i;
    table.lat_arg_.radius_m = a;
  }
  return table;
}

EphemerisTable EphemerisTable::compute(const KeplerianPropagator& propagator,
                                      const TimeGrid& grid) {
  return compute(propagator, grid, GmstTable::for_grid(grid));
}

EphemerisTable EphemerisTable::compute(const AnyPropagator& propagator,
                                      const TimeGrid& grid, const GmstTable& gmst) {
  if (const KeplerianPropagator* keplerian = propagator.keplerian()) {
    return compute(*keplerian, grid, gmst);
  }
  if (gmst.size() != grid.count) {
    throw std::invalid_argument("EphemerisTable: GmstTable does not match grid");
  }
  // Generic pointwise fill for SGP4: one model evaluation per step, then the
  // shared sidereal rotation. The radius is the recomputed norm here (no
  // closed-form orbit equation under drag), and the latitude argument stays
  // invalid — SGP4's z is not an exact sinusoid, so visibility culling falls
  // back to per-step cone tests.
  EphemerisTable table;
  const std::size_t n = grid.count;
  table.x_.resize(n);
  table.y_.resize(n);
  table.z_.resize(n);
  table.r_.resize(n);
  if (n == 0) return table;

  const double t0 = grid.start.seconds_since(propagator.epoch());
  const double h = grid.step_seconds;
  double r_min = 0.0, r_max = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    const double dt = t0 + h * static_cast<double>(k);
    const util::Vec3 eci = propagator.position_eci_at_offset(dt);
    const double cg = gmst.cos_gmst[k];
    const double sg = gmst.sin_gmst[k];
    const double r = std::sqrt(eci.x * eci.x + eci.y * eci.y + eci.z * eci.z);
    table.x_[k] = cg * eci.x + sg * eci.y;
    table.y_[k] = -sg * eci.x + cg * eci.y;
    table.z_[k] = eci.z;
    table.r_[k] = r;
    if (k == 0 || r < r_min) r_min = r;
    if (k == 0 || r > r_max) r_max = r;
  }
  table.r_min_ = r_min;
  table.r_max_ = r_max;
  return table;
}

EphemerisTable EphemerisTable::compute(const AnyPropagator& propagator,
                                      const TimeGrid& grid) {
  return compute(propagator, grid, GmstTable::for_grid(grid));
}

EphemerisSpec EphemerisSpec::from_tle(const Tle& tle, PropagatorBackend backend) {
  EphemerisSpec spec;
  spec.elements = tle.to_elements();
  spec.epoch = tle.epoch;
  spec.backend = backend;
  spec.tle = tle;
  return spec;
}

AnyPropagator make_propagator(const EphemerisSpec& spec) {
  if (spec.backend == PropagatorBackend::kSgp4) {
    const Tle tle = spec.tle.has_value()
                        ? *spec.tle
                        : Tle::from_elements(spec.elements, spec.epoch,
                                             /*catalog_number=*/0);
    if (Sgp4Propagator::supports(tle)) {
      return AnyPropagator(Sgp4Propagator(tle));
    }
    // Deep-space / out-of-domain entry: documented fallback to J2 analytic.
    return AnyPropagator(
        KeplerianPropagator(tle.to_elements(), tle.epoch, spec.perturbation));
  }
  return AnyPropagator(
      KeplerianPropagator(spec.elements, spec.epoch, spec.perturbation));
}

namespace {

// One unit of parallel fill work: either a group of up to kLanes circular J2
// satellites for the lane-batched kernel, or a single satellite for the
// per-satellite scalar path.
struct FillItem {
  std::size_t first = 0;   // index into the batched-index vector, or spec index
  std::size_t count = 0;   // > 0: lane group size; 0: single satellite
};

}  // namespace

EphemerisSet EphemerisSet::compute(std::span<const EphemerisSpec> specs,
                                   const TimeGrid& grid, GmstTable gmst,
                                   util::ThreadPool* pool) {
  if (gmst.size() != grid.count) {
    throw std::invalid_argument("EphemerisSet: GmstTable does not match grid");
  }
  EphemerisSet set;
  set.grid_ = grid;
  set.gmst_ = std::move(gmst);
  set.tables_.resize(specs.size());
  set.backends_.assign(specs.size(), PropagatorBackend::kJ2Analytic);

  // Resolve the SIMD mode once, on the calling thread, so an invalid
  // MPLEO_SIMD setting throws here rather than inside the pool.
  bool lane_batching = false;
#if defined(MPLEO_HAVE_AVX2_KERNEL)
  lane_batching = active_simd_mode() == SimdMode::kAvx2 && grid.count > 0;
#endif

  // Partition: circular J2 entries go through the lane-batched kernel when
  // AVX2 is active; everything else (eccentric J2, SGP4) stays per-satellite.
  std::vector<std::size_t> batched;
  std::vector<FillItem> items;
  if (lane_batching) {
    batched.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      if (specs[i].backend == PropagatorBackend::kJ2Analytic &&
          specs[i].elements.eccentricity < kCircularEccentricity) {
        batched.push_back(i);
      }
    }
    // Lane groups carry less per-item work than scalar fills, so keep them
    // whole: one item per group of kLanes (tail group included).
    for (std::size_t g = 0; g < batched.size(); g += batch::kLanes) {
      items.push_back({g, std::min(batch::kLanes, batched.size() - g)});
    }
  }
  std::vector<bool> in_batch(specs.size(), false);
  for (const std::size_t i : batched) in_batch[i] = true;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (!in_batch[i]) items.push_back({i, 0});
  }

  const auto fill_group = [&set, &specs, &grid, &batched](std::size_t first,
                                                          std::size_t count) {
    const std::size_t n = grid.count;
    const double h = grid.step_seconds;
    batch::CircularBatch bt{};
    batch::LaneOutput out[batch::kLanes] = {};
    // Derived per-lane constants use the exact expressions (and libm calls)
    // of the scalar EphemerisTable::compute prologue.
    for (std::size_t l = 0; l < count; ++l) {
      const EphemerisSpec& spec = specs[batched[first + l]];
      const KeplerianPropagator propagator(spec.elements, spec.epoch,
                                           spec.perturbation);
      const ClassicalElements& coe = propagator.epoch_elements();
      bt.a[l] = coe.semi_major_axis_m;
      bt.e[l] = coe.eccentricity;
      bt.b[l] = bt.a[l] * std::sqrt(1.0 - bt.e[l] * bt.e[l]);
      bt.cos_i[l] = std::cos(coe.inclination_rad);
      bt.sin_i[l] = std::sin(coe.inclination_rad);
      bt.t0[l] = grid.start.seconds_since(propagator.epoch());
      bt.w0[l] = coe.arg_perigee_rad;
      bt.o0[l] = coe.raan_rad;
      bt.m0[l] = coe.mean_anomaly_rad;
      bt.w_dot[l] = propagator.arg_perigee_rate();
      bt.o_dot[l] = propagator.raan_rate();
      bt.m_dot[l] = propagator.mean_anomaly_rate();
      bt.cdw[l] = std::cos(bt.w_dot[l] * h);
      bt.sdw[l] = std::sin(bt.w_dot[l] * h);
      bt.cdo[l] = std::cos(bt.o_dot[l] * h);
      bt.sdo[l] = std::sin(bt.o_dot[l] * h);
      bt.cdm[l] = std::cos(bt.m_dot[l] * h);
      bt.sdm[l] = std::sin(bt.m_dot[l] * h);

      EphemerisTable& table = set.tables_[batched[first + l]];
      table.x_.resize(n);
      table.y_.resize(n);
      table.z_.resize(n);
      table.r_.resize(n);
      out[l] = {table.x_.data(), table.y_.data(), table.z_.data(),
                table.r_.data()};
    }
    // Pad unused tail lanes with lane 0's constants; null outputs skip them.
    for (std::size_t l = count; l < batch::kLanes; ++l) {
      bt.a[l] = bt.a[0];
      bt.e[l] = bt.e[0];
      bt.b[l] = bt.b[0];
      bt.cos_i[l] = bt.cos_i[0];
      bt.sin_i[l] = bt.sin_i[0];
      bt.t0[l] = bt.t0[0];
      bt.w0[l] = bt.w0[0];
      bt.o0[l] = bt.o0[0];
      bt.m0[l] = bt.m0[0];
      bt.w_dot[l] = bt.w_dot[0];
      bt.o_dot[l] = bt.o_dot[0];
      bt.m_dot[l] = bt.m_dot[0];
      bt.cdw[l] = bt.cdw[0];
      bt.sdw[l] = bt.sdw[0];
      bt.cdo[l] = bt.cdo[0];
      bt.sdo[l] = bt.sdo[0];
      bt.cdm[l] = bt.cdm[0];
      bt.sdm[l] = bt.sdm[0];
    }
#if defined(MPLEO_HAVE_AVX2_KERNEL)
    batch::fill_circular_avx2(bt, n, h, set.gmst_.cos_gmst.data(),
                              set.gmst_.sin_gmst.data(), out);
#endif
    // Epilogue per lane: min/max scan (same value set as the scalar in-loop
    // tracking) and the circular latitude-argument summary.
    for (std::size_t l = 0; l < count; ++l) {
      EphemerisTable& table = set.tables_[batched[first + l]];
      double r_min = 0.0, r_max = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double r = table.r_[k];
        if (k == 0 || r < r_min) r_min = r;
        if (k == 0 || r > r_max) r_max = r;
      }
      table.r_min_ = r_min;
      table.r_max_ = r_max;
      const double u_dot = bt.w_dot[l] + bt.m_dot[l];
      table.lat_arg_.valid = u_dot > 0.0;
      table.lat_arg_.u0 = bt.w0[l] + bt.m0[l] + u_dot * bt.t0[l];
      table.lat_arg_.du = u_dot * h;
      table.lat_arg_.sin_incl = bt.sin_i[l];
      table.lat_arg_.radius_m = bt.a[l];
    }
  };

  const auto fill = [&set, &specs, &grid, &fill_group, &items](std::size_t w) {
    const FillItem& item = items[w];
    if (item.count > 0) {
      fill_group(item.first, item.count);
      return;
    }
    const std::size_t i = item.first;
    if (specs[i].backend == PropagatorBackend::kJ2Analytic) {
      // Unchanged scalar path, kept free of the AnyPropagator indirection.
      const KeplerianPropagator propagator(specs[i].elements, specs[i].epoch,
                                           specs[i].perturbation);
      set.tables_[i] = EphemerisTable::compute(propagator, grid, set.gmst_);
      return;
    }
    const AnyPropagator propagator = make_propagator(specs[i]);
    set.tables_[i] = EphemerisTable::compute(propagator, grid, set.gmst_);
    set.backends_[i] = propagator.backend();
  };
  if (pool != nullptr) {
    pool->parallel_for(items.size(), fill);
  } else {
    for (std::size_t w = 0; w < items.size(); ++w) fill(w);
  }
  return set;
}

EphemerisSet EphemerisSet::compute(std::span<const EphemerisSpec> specs,
                                   const TimeGrid& grid, util::ThreadPool* pool) {
  return compute(specs, grid, GmstTable::for_grid(grid), pool);
}

}  // namespace mpleo::orbit
