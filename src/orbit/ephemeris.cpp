#include "orbit/ephemeris.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "orbit/kepler.hpp"
#include "util/thread_pool.hpp"

namespace mpleo::orbit {
namespace {

// Steps between exact libm resynchronisations of the incremental plane
// rotations. Drift over one interval is a few tens of ulps — sub-micrometre
// at orbital radii, far below the <1 mm table accuracy contract.
constexpr std::size_t kResyncInterval = 64;

// Matches the solve_kepler fast path: below this the orbit is treated as
// circular (E == M) and the mean anomaly advances linearly in time.
constexpr double kCircularEccentricity = 1e-12;

}  // namespace

GmstTable GmstTable::for_grid(const TimeGrid& grid) {
  GmstTable table;
  table.cos_gmst.reserve(grid.count);
  table.sin_gmst.reserve(grid.count);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const double g = gmst_rad(grid.at(i));
    table.cos_gmst.push_back(std::cos(g));
    table.sin_gmst.push_back(std::sin(g));
  }
  return table;
}

std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                       const TimeGrid& grid, const GmstTable& gmst) {
  assert(gmst.size() == grid.count);
  std::vector<util::Vec3> out;
  out.reserve(grid.count);
  const double t0 = grid.start.seconds_since(propagator.epoch());
  for (std::size_t i = 0; i < grid.count; ++i) {
    const double dt = t0 + grid.step_seconds * static_cast<double>(i);
    const util::Vec3 eci = propagator.position_eci_at_offset(dt);
    const double c = gmst.cos_gmst[i];
    const double s = gmst.sin_gmst[i];
    out.push_back({c * eci.x + s * eci.y, -s * eci.x + c * eci.y, eci.z});
  }
  return out;
}

std::vector<util::Vec3> ecef_positions(const KeplerianPropagator& propagator,
                                       const TimeGrid& grid) {
  return ecef_positions(propagator, grid, GmstTable::for_grid(grid));
}

EphemerisTable EphemerisTable::compute(const KeplerianPropagator& propagator,
                                      const TimeGrid& grid, const GmstTable& gmst) {
  if (gmst.size() != grid.count) {
    throw std::invalid_argument("EphemerisTable: GmstTable does not match grid");
  }
  EphemerisTable table;
  const std::size_t n = grid.count;
  table.x_.resize(n);
  table.y_.resize(n);
  table.z_.resize(n);
  table.r_.resize(n);
  if (n == 0) return table;

  const ClassicalElements& coe = propagator.epoch_elements();
  const double a = coe.semi_major_axis_m;
  const double e = coe.eccentricity;
  const double b = a * std::sqrt(1.0 - e * e);  // semi-minor axis
  const double cos_i = std::cos(coe.inclination_rad);
  const double sin_i = std::sin(coe.inclination_rad);

  const double t0 = grid.start.seconds_since(propagator.epoch());
  const double h = grid.step_seconds;
  const double m_dot = propagator.mean_anomaly_rate();
  const double w_dot = propagator.arg_perigee_rate();
  const double o_dot = propagator.raan_rate();
  const bool circular = e < kCircularEccentricity;

  // Per-step rotations of the three time-linear angles.
  const double cdw = std::cos(w_dot * h), sdw = std::sin(w_dot * h);
  const double cdo = std::cos(o_dot * h), sdo = std::sin(o_dot * h);
  const double cdm = std::cos(m_dot * h), sdm = std::sin(m_dot * h);

  double cw = 0.0, sw = 0.0;  // argument of perigee
  double co = 0.0, so = 0.0;  // RAAN
  double ce = 0.0, se = 0.0;  // eccentric anomaly (circular fast path only)
  double r_min = 0.0, r_max = 0.0;

  for (std::size_t k = 0; k < n; ++k) {
    const double dt = t0 + h * static_cast<double>(k);
    if (k % kResyncInterval == 0) {
      const double w = coe.arg_perigee_rad + w_dot * dt;
      cw = std::cos(w);
      sw = std::sin(w);
      const double raan = coe.raan_rad + o_dot * dt;
      co = std::cos(raan);
      so = std::sin(raan);
      if (circular) {
        const double m = coe.mean_anomaly_rad + m_dot * dt;
        ce = std::cos(m);
        se = std::sin(m);
      }
    }
    if (!circular) {
      const double m = coe.mean_anomaly_rad + m_dot * dt;
      const double ecc_anomaly = solve_kepler(m, e);
      ce = std::cos(ecc_anomaly);
      se = std::sin(ecc_anomaly);
    }

    // Perifocal coordinates from the eccentric anomaly (identical geometry
    // to the r/nu form used by elements_to_state, without the atan2).
    const double xp = a * (ce - e);
    const double yp = b * se;
    const double r = a * (1.0 - e * ce);
    // Rz(argp)
    const double x1 = xp * cw - yp * sw;
    const double y1 = xp * sw + yp * cw;
    // Rx(inclination)
    const double y2 = y1 * cos_i;
    const double z2 = y1 * sin_i;
    // Rz(raan - gmst): the ECI->ECEF sidereal rotation folded into the node
    // rotation via the angle-difference identity, using the shared table.
    const double cg = gmst.cos_gmst[k];
    const double sg = gmst.sin_gmst[k];
    const double ca = co * cg + so * sg;
    const double sa = so * cg - co * sg;
    table.x_[k] = x1 * ca - y2 * sa;
    table.y_[k] = x1 * sa + y2 * ca;
    table.z_[k] = z2;
    table.r_[k] = r;
    if (k == 0 || r < r_min) r_min = r;
    if (k == 0 || r > r_max) r_max = r;

    // Advance the incremental rotations to step k+1.
    const double cw_next = cw * cdw - sw * sdw;
    sw = sw * cdw + cw * sdw;
    cw = cw_next;
    const double co_next = co * cdo - so * sdo;
    so = so * cdo + co * sdo;
    co = co_next;
    if (circular) {
      const double ce_next = ce * cdm - se * sdm;
      se = se * cdm + ce * sdm;
      ce = ce_next;
    }
  }

  table.r_min_ = r_min;
  table.r_max_ = r_max;
  if (circular) {
    const double u_dot = w_dot + m_dot;
    table.lat_arg_.valid = u_dot > 0.0;
    table.lat_arg_.u0 = coe.arg_perigee_rad + coe.mean_anomaly_rad + u_dot * t0;
    table.lat_arg_.du = u_dot * h;
    table.lat_arg_.sin_incl = sin_i;
    table.lat_arg_.radius_m = a;
  }
  return table;
}

EphemerisTable EphemerisTable::compute(const KeplerianPropagator& propagator,
                                      const TimeGrid& grid) {
  return compute(propagator, grid, GmstTable::for_grid(grid));
}

EphemerisSet EphemerisSet::compute(std::span<const EphemerisSpec> specs,
                                   const TimeGrid& grid, GmstTable gmst,
                                   util::ThreadPool* pool) {
  if (gmst.size() != grid.count) {
    throw std::invalid_argument("EphemerisSet: GmstTable does not match grid");
  }
  EphemerisSet set;
  set.grid_ = grid;
  set.gmst_ = std::move(gmst);
  set.tables_.resize(specs.size());
  const auto fill = [&set, &specs, &grid](std::size_t i) {
    const KeplerianPropagator propagator(specs[i].elements, specs[i].epoch,
                                         specs[i].perturbation);
    set.tables_[i] = EphemerisTable::compute(propagator, grid, set.gmst_);
  };
  if (pool != nullptr) {
    pool->parallel_for(specs.size(), fill);
  } else {
    for (std::size_t i = 0; i < specs.size(); ++i) fill(i);
  }
  return set;
}

EphemerisSet EphemerisSet::compute(std::span<const EphemerisSpec> specs,
                                   const TimeGrid& grid, util::ThreadPool* pool) {
  return compute(specs, grid, GmstTable::for_grid(grid), pool);
}

}  // namespace mpleo::orbit
