#include "rf/doppler.hpp"

#include <cmath>
#include <sstream>

namespace mpleo::rf {

namespace {

bool finite(double v) noexcept { return std::isfinite(v); }

void add_issue(std::vector<RfConfigIssue>& issues, const char* field,
               double value, const char* requirement) {
  std::ostringstream os;
  os << "value " << value << " " << requirement;
  issues.push_back({"rf", field, os.str()});
}

}  // namespace

std::vector<RfConfigIssue> DopplerAuditConfig::validate() const {
  std::vector<RfConfigIssue> issues;
  if (!finite(rms_tolerance_hz) || rms_tolerance_hz <= 0.0) {
    add_issue(issues, "doppler.rms_tolerance_hz", rms_tolerance_hz,
              "must be finite and > 0");
  }
  if (!finite(carrier_hz) || carrier_hz < kMinCarrierHz || carrier_hz > kMaxCarrierHz) {
    add_issue(issues, "doppler.carrier_hz", carrier_hz,
              "must be inside the [1, 100] GHz satellite allocations");
  }
  if (track_samples < 2) {
    add_issue(issues, "doppler.track_samples", static_cast<double>(track_samples),
              "must be >= 2 to pin a curve shape");
  }
  if (min_track_samples < 2 || min_track_samples > track_samples) {
    add_issue(issues, "doppler.min_track_samples",
              static_cast<double>(min_track_samples),
              "must be in [2, track_samples]");
  }
  if (!finite(sample_spacing_s) || sample_spacing_s <= 0.0) {
    add_issue(issues, "doppler.sample_spacing_s", sample_spacing_s,
              "must be finite and > 0");
  }
  if (!finite(measurement_noise_hz) || measurement_noise_hz < 0.0) {
    add_issue(issues, "doppler.measurement_noise_hz", measurement_noise_hz,
              "must be finite and >= 0");
  }
  return issues;
}

std::vector<double> DopplerAuditConfig::sample_offsets_s() const {
  std::vector<double> offsets;
  offsets.reserve(track_samples);
  const double half = static_cast<double>(track_samples - 1) / 2.0;
  for (std::size_t i = 0; i < track_samples; ++i) {
    offsets.push_back((static_cast<double>(i) - half) * sample_spacing_s);
  }
  return offsets;
}

TrackFit fit_doppler_track(std::span<const double> measured_hz,
                           std::span<const double> predicted_hz) {
  TrackFit fit;
  const std::size_t n = std::min(measured_hz.size(), predicted_hz.size());
  fit.samples = n;
  if (n == 0) return fit;

  // Least-squares constant offset = mean residual; what remains is the
  // curve-shape mismatch the forger cannot buy with an oscillator knob.
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) sum += measured_hz[i] - predicted_hz[i];
  fit.offset_hz = sum / static_cast<double>(n);

  double sq = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double r = measured_hz[i] - predicted_hz[i] - fit.offset_hz;
    sq += r * r;
  }
  fit.rms_hz = std::sqrt(sq / static_cast<double>(n));
  return fit;
}

const char* to_string(ForgeryLevel level) noexcept {
  switch (level) {
    case ForgeryLevel::kFlatTone: return "flat_tone";
    case ForgeryLevel::kLinearRamp: return "linear_ramp";
    case ForgeryLevel::kTimeMirrored: return "time_mirrored";
    case ForgeryLevel::kEphemerisExact: return "ephemeris_exact";
  }
  return "unknown";
}

std::vector<double> forge_doppler_track(ForgeryLevel level,
                                        std::span<const double> true_doppler_hz,
                                        double max_doppler_hz,
                                        util::Xoshiro256PlusPlus& rng) {
  const std::size_t n = true_doppler_hz.size();
  std::vector<double> track(n, 0.0);
  if (n == 0) return track;
  switch (level) {
    case ForgeryLevel::kFlatTone: {
      // A carrier parked somewhere inside the Doppler window: zero slope.
      const double tone = rng.uniform(-0.2, 0.2) * max_doppler_hz;
      for (double& f : track) f = tone;
      break;
    }
    case ForgeryLevel::kLinearRamp: {
      // Knows LEO passes sweep high-to-low, not where in the pass the claim
      // sits: a straight descent across the plausible band.
      const double hi = rng.uniform(0.4, 1.0) * max_doppler_hz;
      const double lo = -rng.uniform(0.4, 1.0) * max_doppler_hz;
      const double denom = static_cast<double>(n > 1 ? n - 1 : 1);
      for (std::size_t i = 0; i < n; ++i) {
        track[i] = hi + (lo - hi) * static_cast<double>(i) / denom;
      }
      break;
    }
    case ForgeryLevel::kTimeMirrored:
      // A stale recording of the real pass played backwards — right
      // magnitudes, reversed slope.
      for (std::size_t i = 0; i < n; ++i) track[i] = true_doppler_hz[n - 1 - i];
      break;
    case ForgeryLevel::kEphemerisExact:
      // The forger ran the true ephemeris and dresses the curve in
      // measurement-like jitter: the audit's documented blind spot.
      for (std::size_t i = 0; i < n; ++i) {
        track[i] = true_doppler_hz[i] + rng.normal(0.0, 10.0);
      }
      break;
  }
  return track;
}

std::vector<double> observe_doppler_track(std::span<const double> predicted_hz,
                                          double noise_sigma_hz,
                                          util::Xoshiro256PlusPlus& rng) {
  std::vector<double> track;
  track.reserve(predicted_hz.size());
  for (const double f : predicted_hz) track.push_back(f + rng.normal(0.0, noise_sigma_hz));
  return track;
}

}  // namespace mpleo::rf
