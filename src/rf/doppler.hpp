// RF grounding for proof-of-coverage receipts: Doppler signatures and track
// fits (ROADMAP item 5, guided by the strf rffit approach).
//
// A geometric audit only checks that the claimed satellite was above the
// verifier's horizon — an insider who knows the ephemeris can forge receipts
// that pass it. The RF layer raises the bar: a contact claim must come with
// the Doppler track the verifier measured during the pass, and the audit
// fits that track against the curve the shared ephemeris kernel predicts.
// The carrier oscillator offset is unknown (TCXO drift), so the fit removes
// the best constant frequency offset first — what must match is the curve
// SHAPE, which encodes the relative trajectory. A forger must therefore
// reproduce the true range-rate history of a pass it never had, which
// requires running the very ephemeris the audit holds; anything less misses
// by kilohertz when LEO Doppler slews at ~2 kHz/s near closest approach.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rf/validation.hpp"
#include "util/rng.hpp"

namespace mpleo::rf {

// Carrier frequencies the audit accepts: the satellite allocations the band
// plans model live well inside [1, 100] GHz.
inline constexpr double kMinCarrierHz = 1.0e9;
inline constexpr double kMaxCarrierHz = 100.0e9;

// Doppler-fit audit stage knobs (adversary::AuditConfig::doppler). Disabled
// by default: the audit path is then bit-identical to the pre-RF auditor.
struct DopplerAuditConfig {
  bool enabled = false;
  // Maximum RMS residual (after constant-offset removal) a claimed track may
  // leave against the predicted curve. Tolerance derivation (DESIGN.md §12):
  // ~10x the honest measurement noise, far below the kHz-scale miss of any
  // track that was not generated from the true ephemeris.
  double rms_tolerance_hz = 250.0;
  // Reference downlink carrier the tracks are measured at.
  double carrier_hz = 11.7e9;
  // Samples per track and their spacing on the audit grid. A track shorter
  // than min_track_samples cannot pin a curve shape and is rejected as
  // implausible.
  std::size_t track_samples = 9;
  std::size_t min_track_samples = 5;
  double sample_spacing_s = 30.0;
  // 1-sigma measurement noise assumed for honest verifier tracks; the
  // campaign synthesizes honest observations with it.
  double measurement_noise_hz = 25.0;

  // Collects every field problem (TleFieldIssue-style); empty = valid.
  [[nodiscard]] std::vector<RfConfigIssue> validate() const;

  // Symmetric sample offsets around the claimed contact time:
  // (i - (n-1)/2) * sample_spacing_s for i in [0, track_samples).
  [[nodiscard]] std::vector<double> sample_offsets_s() const;
};

// One claimed contact's measured RF track: Doppler shift (Hz, relative to
// the nominal carrier) at offsets (s) around the receipt's claimed time. The
// receipt struct itself never changes — its content hash is the ledger's
// duplicate-guard identity — so tracks ride alongside as audit evidence.
struct DopplerObservation {
  double carrier_hz = 0.0;
  std::vector<double> offsets_s;
  std::vector<double> doppler_hz;
};

// Result of fitting a measured track against a predicted curve.
struct TrackFit {
  std::size_t samples = 0;       // paired samples the fit used
  double offset_hz = 0.0;        // best-fit constant frequency offset removed
  double rms_hz = 0.0;           // RMS residual after offset removal
};

// Fits measured against predicted: removes the mean residual (the constant
// oscillator offset a forger gets for free) and reports the RMS of what
// remains — the curve-shape mismatch. Sizes must match; samples = 0 and
// rms = 0 when both are empty.
[[nodiscard]] TrackFit fit_doppler_track(std::span<const double> measured_hz,
                                         std::span<const double> predicted_hz);

// Forgery sophistication ladder for the adversary benches: how much RF
// knowledge the forger invests in the fabricated track.
enum class ForgeryLevel : std::uint8_t {
  kFlatTone,        // constant tone: no Doppler model at all
  kLinearRamp,      // max-to-min ramp: knows the LEO Doppler bound, not the pass
  kTimeMirrored,    // true curve replayed time-reversed: a stale recording
  kEphemerisExact,  // runs the real ephemeris: indistinguishable by design
};

[[nodiscard]] const char* to_string(ForgeryLevel level) noexcept;

// True for the levels the Doppler fit is expected (and CI-gated) to catch.
// kEphemerisExact is the documented residual attack surface: a forger that
// reproduces the true curve passes, by construction.
[[nodiscard]] constexpr bool detectable(ForgeryLevel level) noexcept {
  return level != ForgeryLevel::kEphemerisExact;
}

// Fabricates the track a `level` forger submits for a pass whose true curve
// is `true_doppler_hz` (what the ephemeris predicts; only the two highest
// levels consume it). `max_doppler_hz` bounds the fabricated magnitudes
// (cov::max_doppler_bound_hz at the claimed altitude/carrier); `rng` is the
// forger's seeded behavior stream.
[[nodiscard]] std::vector<double> forge_doppler_track(
    ForgeryLevel level, std::span<const double> true_doppler_hz,
    double max_doppler_hz, util::Xoshiro256PlusPlus& rng);

// Synthesizes the honest verifier measurement: predicted curve plus i.i.d.
// N(0, noise_sigma_hz) measurement noise from `rng`.
[[nodiscard]] std::vector<double> observe_doppler_track(
    std::span<const double> predicted_hz, double noise_sigma_hz,
    util::Xoshiro256PlusPlus& rng);

}  // namespace mpleo::rf
