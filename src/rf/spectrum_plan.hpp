// Consortium spectrum coordination (§4 "Spectrum access"): the parties carve
// one band plan's downlink segment into disjoint per-party channels. With
// everyone on-plan there is no cross-party co-channel interference by
// construction; jamming and spectrum-squatting adversaries break exactly
// that invariant, which is what makes their interference attributable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/spectrum.hpp"
#include "rf/validation.hpp"

namespace mpleo::rf {

// RF environment knobs (validated; see SpectrumConfig::validate).
struct SpectrumConfig {
  // The band the consortium coordinates in; the downlink segment is the one
  // the per-party channels partition (bent-pipe terminals receive there).
  net::BandPlan band;  // defaults to the Ku plan
  // Per-party channel width cap; the partition shrinks it when the band
  // cannot fit every party at this width.
  double channel_bandwidth_hz = 62.5e6;
  // Sidelobe isolation between a victim terminal's beam and a non-serving
  // satellite's emission, dB (subtracted from every co-channel coupling).
  double off_axis_discrimination_db = 12.0;
  // EIRP boost a jamming party radiates over the nominal transponder, dB.
  double jammer_power_boost_db = 10.0;

  // Collects every field problem (TleFieldIssue-style); empty = valid.
  // Rejects an empty band plan (hi <= lo in either direction), carriers
  // outside the [1, 100] GHz allocations, and non-finite/negative knobs.
  [[nodiscard]] std::vector<RfConfigIssue> validate() const;
};

// One party's downlink channel inside the plan.
struct PartyChannel {
  double center_hz = 0.0;
  double bandwidth_hz = 0.0;

  [[nodiscard]] double lo_hz() const noexcept { return center_hz - bandwidth_hz / 2.0; }
  [[nodiscard]] double hi_hz() const noexcept { return center_hz + bandwidth_hz / 2.0; }
};

// The coordinated assignment: `party_count` disjoint equal channels carved
// from the config's downlink segment, in party order.
class SpectrumPlan {
 public:
  // Throws std::invalid_argument (all issues joined) on an invalid config or
  // party_count == 0.
  [[nodiscard]] static SpectrumPlan equal_partition(const SpectrumConfig& config,
                                                    std::size_t party_count);

  [[nodiscard]] std::size_t party_count() const noexcept { return channels_.size(); }
  // Parties beyond the plan own no spectrum (zero-width channel at 0 Hz).
  [[nodiscard]] const PartyChannel& channel(std::uint32_t party) const noexcept;

  // Fractional overlap of party b's channel by party a's channel, in [0, 1]
  // of b's bandwidth. Zero between any two distinct on-plan parties (the
  // partition is disjoint); 1 for a == b.
  [[nodiscard]] double overlap_fraction(std::uint32_t a, std::uint32_t b) const noexcept;

 private:
  std::vector<PartyChannel> channels_;
};

}  // namespace mpleo::rf
