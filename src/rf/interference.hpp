// Co-channel interference (§4 "Spectrum access"): turns spectrum-plan
// violations into capacity loss. Honest parties sit on disjoint channels, so
// cross-party coupling is zero by construction and the clean path stays
// bit-identical. A jamming or spectrum-squatting party radiates onto every
// victim channel; the environment precomputes one coupling factor per
// (interferer, victim) pair, and the scheduler folds the resulting
// interference-to-noise ratios into each granted link's SINR.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rf/spectrum_plan.hpp"

namespace mpleo::rf {

// Precomputed interference geometry over the spectrum plan for one epoch's
// behavior masks. Coupling(interferer -> victim) multiplies the interferer's
// received carrier power at the victim terminal:
//   overlap_fraction * 10^(-off_axis_discrimination_db/10) [* jammer boost].
// On-plan parties overlap nobody, so their coupling row is zero; jammers and
// squatters transmit across the whole downlink segment (overlap = 1), with
// jammers additionally boosted by jammer_power_boost_db.
class InterferenceEnvironment {
 public:
  // `jamming_mask` / `squatting_mask` are per-party flags (Byzantine behavior
  // assignment for the epoch); shorter masks are treated as false-padded.
  // Throws std::invalid_argument (joined issues) on an invalid config.
  InterferenceEnvironment(const SpectrumConfig& config, const SpectrumPlan& plan,
                          const std::vector<bool>& jamming_mask,
                          const std::vector<bool>& squatting_mask);

  [[nodiscard]] std::size_t party_count() const noexcept { return parties_; }
  [[nodiscard]] bool jams(std::uint32_t party) const noexcept;
  [[nodiscard]] bool squats(std::uint32_t party) const noexcept;
  // True when any party is jamming or squatting: the scheduler's fast path
  // skips all RF work when this is false.
  [[nodiscard]] bool any_interferer() const noexcept { return any_interferer_; }

  // Power coupling factor of `interferer`'s emission into `victim`'s channel;
  // zero for self and for any on-plan pair.
  [[nodiscard]] double coupling(std::uint32_t interferer, std::uint32_t victim) const noexcept;

  // True when nonzero coupling between distinct parties exists because the
  // interferer left its assigned channel — the attributable evidence the
  // auditor records against jammers and squatters.
  [[nodiscard]] bool violates_plan(std::uint32_t interferer, std::uint32_t victim) const noexcept;

  // Bandwidth used to convert a granted link's capacity into an effective
  // SNR and back (the per-party channel width of the plan's config).
  [[nodiscard]] double reference_bandwidth_hz() const noexcept {
    return reference_bandwidth_hz_;
  }

 private:
  std::size_t parties_ = 0;
  bool any_interferer_ = false;
  double reference_bandwidth_hz_ = 0.0;
  std::vector<double> coupling_;  // row-major [interferer * parties_ + victim]
  std::vector<bool> jams_;
  std::vector<bool> squats_;
};

// Per-run RF accounting the scheduler attaches to its result when a spectrum
// config is armed. All vectors are indexed by party.
struct RfLinkStats {
  // Granted downlink capacity before / after co-channel degradation, summed
  // over every scheduled step, by the served (victim) party.
  std::vector<double> nominal_bps_by_party;
  std::vector<double> realized_bps_by_party;
  // Interference-to-noise ratio each interfering party injected across all
  // victim links while violating the plan (linear, summed); the auditor turns
  // nonzero entries into fraud evidence.
  std::vector<double> violation_inr_by_party;
  // Number of granted links whose capacity was actually degraded (INR > 0).
  std::size_t degraded_links = 0;
  double nominal_bps_total = 0.0;
  double realized_bps_total = 0.0;

  bool operator==(const RfLinkStats&) const = default;
};

}  // namespace mpleo::rf
