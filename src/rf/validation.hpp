// Structured RF configuration validation, mirroring the TleFieldIssue
// pattern: every field problem found is collected (not just the first), so an
// operator fixing a config sees the whole damage report in one pass. Config
// owners expose `validate()` returning the issue list; constructing a
// component from an invalid config throws with every issue joined into the
// message (see rf::throw_if_invalid).
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace mpleo::rf {

struct RfConfigIssue {
  std::string field;    // e.g. "doppler.rms_tolerance_hz", "spectrum.band"
  std::string message;  // human-readable reason, includes the offending value
};

// Joins issues into one multi-line message: "<context>: N invalid field(s)"
// followed by one "  field: message" line per issue. Empty issues -> "".
[[nodiscard]] std::string format_issues(const std::string& context,
                                        const std::vector<RfConfigIssue>& issues);

// Throws std::invalid_argument carrying format_issues(...) when any issue is
// present; no-op on an empty list.
void throw_if_invalid(const std::string& context,
                      const std::vector<RfConfigIssue>& issues);

}  // namespace mpleo::rf
