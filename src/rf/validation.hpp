// Structured RF configuration validation.
//
// RfConfigIssue is a thin alias of the unified core::ConfigIssue (see
// src/core/validation.hpp): every field problem found is collected (not just
// the first), so an operator fixing a config sees the whole damage report in
// one pass. Config owners expose `validate()` returning the issue list;
// constructing a component from an invalid config throws with every issue
// joined into the message (see rf::throw_if_invalid). RF issues carry
// component "rf".
#pragma once

#include <string>
#include <vector>

#include "core/validation.hpp"

namespace mpleo::rf {

using RfConfigIssue = core::ConfigIssue;

// format_issues joins issues into one multi-line message:
// "<context>: N invalid field(s)" followed by one "  field: message" line per
// issue (empty issues -> ""). throw_if_invalid throws std::invalid_argument
// carrying that message when any error-severity issue is present.
// Using-declarations (not wrappers) so unqualified calls inside mpleo::rf
// don't become ambiguous with the ADL-found core:: overloads.
using core::format_issues;
using core::throw_if_invalid;

}  // namespace mpleo::rf
