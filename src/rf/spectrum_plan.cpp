#include "rf/spectrum_plan.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "rf/doppler.hpp"  // kMinCarrierHz / kMaxCarrierHz

namespace mpleo::rf {

namespace {

bool finite(double v) noexcept { return std::isfinite(v); }

void add_issue(std::vector<RfConfigIssue>& issues, const char* field, double value,
               const char* requirement) {
  std::ostringstream os;
  os << "value " << value << " " << requirement;
  issues.push_back({"rf", field, os.str()});
}

void check_segment(std::vector<RfConfigIssue>& issues, const char* lo_field,
                   const char* hi_field, double lo, double hi) {
  if (!finite(lo) || lo < kMinCarrierHz || lo > kMaxCarrierHz) {
    add_issue(issues, lo_field, lo, "must be inside the [1, 100] GHz allocations");
  }
  if (!finite(hi) || hi < kMinCarrierHz || hi > kMaxCarrierHz) {
    add_issue(issues, hi_field, hi, "must be inside the [1, 100] GHz allocations");
  }
  if (finite(lo) && finite(hi) && hi <= lo) {
    add_issue(issues, hi_field, hi, "must exceed the segment's lower edge (empty band plan)");
  }
}

}  // namespace

std::vector<RfConfigIssue> SpectrumConfig::validate() const {
  std::vector<RfConfigIssue> issues;
  check_segment(issues, "spectrum.band.uplink_lo_hz", "spectrum.band.uplink_hi_hz",
                band.uplink_lo_hz, band.uplink_hi_hz);
  check_segment(issues, "spectrum.band.downlink_lo_hz", "spectrum.band.downlink_hi_hz",
                band.downlink_lo_hz, band.downlink_hi_hz);
  if (!finite(channel_bandwidth_hz) || channel_bandwidth_hz <= 0.0) {
    add_issue(issues, "spectrum.channel_bandwidth_hz", channel_bandwidth_hz,
              "must be finite and > 0");
  }
  if (!finite(off_axis_discrimination_db) || off_axis_discrimination_db < 0.0) {
    add_issue(issues, "spectrum.off_axis_discrimination_db", off_axis_discrimination_db,
              "must be finite and >= 0");
  }
  if (!finite(jammer_power_boost_db) || jammer_power_boost_db < 0.0) {
    add_issue(issues, "spectrum.jammer_power_boost_db", jammer_power_boost_db,
              "must be finite and >= 0");
  }
  return issues;
}

SpectrumPlan SpectrumPlan::equal_partition(const SpectrumConfig& config,
                                           std::size_t party_count) {
  throw_if_invalid("rf::SpectrumPlan", config.validate());
  if (party_count == 0) {
    throw std::invalid_argument("rf::SpectrumPlan: party_count must be > 0");
  }
  const double span = config.band.downlink_hi_hz - config.band.downlink_lo_hz;
  const double slot = span / static_cast<double>(party_count);
  const double width = std::min(config.channel_bandwidth_hz, slot);

  SpectrumPlan plan;
  plan.channels_.reserve(party_count);
  for (std::size_t p = 0; p < party_count; ++p) {
    PartyChannel channel;
    channel.center_hz =
        config.band.downlink_lo_hz + slot * (static_cast<double>(p) + 0.5);
    channel.bandwidth_hz = width;
    plan.channels_.push_back(channel);
  }
  return plan;
}

const PartyChannel& SpectrumPlan::channel(std::uint32_t party) const noexcept {
  static const PartyChannel kNoChannel{};
  if (party >= channels_.size()) return kNoChannel;
  return channels_[party];
}

double SpectrumPlan::overlap_fraction(std::uint32_t a, std::uint32_t b) const noexcept {
  const PartyChannel& ca = channel(a);
  const PartyChannel& cb = channel(b);
  if (ca.bandwidth_hz <= 0.0 || cb.bandwidth_hz <= 0.0) return 0.0;
  const double lo = std::max(ca.lo_hz(), cb.lo_hz());
  const double hi = std::min(ca.hi_hz(), cb.hi_hz());
  if (hi <= lo) return 0.0;
  return (hi - lo) / cb.bandwidth_hz;
}

}  // namespace mpleo::rf
