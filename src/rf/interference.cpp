#include "rf/interference.hpp"

#include "net/link_budget.hpp"

namespace mpleo::rf {

namespace {

bool mask_at(const std::vector<bool>& mask, std::size_t i) noexcept {
  return i < mask.size() && mask[i];
}

}  // namespace

InterferenceEnvironment::InterferenceEnvironment(const SpectrumConfig& config,
                                                 const SpectrumPlan& plan,
                                                 const std::vector<bool>& jamming_mask,
                                                 const std::vector<bool>& squatting_mask) {
  throw_if_invalid("rf::InterferenceEnvironment", config.validate());
  parties_ = plan.party_count();
  reference_bandwidth_hz_ = config.channel_bandwidth_hz;
  jams_.resize(parties_);
  squats_.resize(parties_);
  for (std::size_t p = 0; p < parties_; ++p) {
    jams_[p] = mask_at(jamming_mask, p);
    squats_[p] = mask_at(squatting_mask, p);
    if (jams_[p] || squats_[p]) any_interferer_ = true;
  }

  const double discrimination = net::db_to_linear(-config.off_axis_discrimination_db);
  const double jam_boost = net::db_to_linear(config.jammer_power_boost_db);
  coupling_.assign(parties_ * parties_, 0.0);
  for (std::size_t i = 0; i < parties_; ++i) {
    for (std::size_t v = 0; v < parties_; ++v) {
      if (i == v) continue;
      double overlap;
      double boost = 1.0;
      if (jams_[i]) {
        // A jammer sweeps the whole downlink segment at boosted EIRP: full
        // overlap with every victim channel.
        overlap = 1.0;
        boost = jam_boost;
      } else if (squats_[i]) {
        // A squatter transmits across the band at nominal power, ignoring
        // its assignment.
        overlap = 1.0;
      } else {
        // On-plan party: the partition is disjoint, so this is zero.
        overlap = plan.overlap_fraction(static_cast<std::uint32_t>(i),
                                        static_cast<std::uint32_t>(v));
      }
      coupling_[i * parties_ + v] = overlap * discrimination * boost;
    }
  }
}

bool InterferenceEnvironment::jams(std::uint32_t party) const noexcept {
  return mask_at(jams_, party);
}

bool InterferenceEnvironment::squats(std::uint32_t party) const noexcept {
  return mask_at(squats_, party);
}

double InterferenceEnvironment::coupling(std::uint32_t interferer,
                                         std::uint32_t victim) const noexcept {
  if (interferer >= parties_ || victim >= parties_) return 0.0;
  return coupling_[static_cast<std::size_t>(interferer) * parties_ + victim];
}

bool InterferenceEnvironment::violates_plan(std::uint32_t interferer,
                                            std::uint32_t victim) const noexcept {
  if (interferer == victim) return false;
  return coupling(interferer, victim) > 0.0;
}

}  // namespace mpleo::rf
