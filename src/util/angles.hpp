// Angle normalisation helpers.
#pragma once

#include <cmath>

#include "util/units.hpp"

namespace mpleo::util {

// Wraps an angle to [0, 2*pi).
[[nodiscard]] inline double wrap_two_pi(double rad) noexcept {
  double w = std::fmod(rad, kTwoPi);
  if (w < 0.0) w += kTwoPi;
  return w;
}

// Wraps an angle to (-pi, pi].
[[nodiscard]] inline double wrap_pi(double rad) noexcept {
  double w = wrap_two_pi(rad);
  if (w > kPi) w -= kTwoPi;
  return w;
}

// Smallest absolute angular separation between two angles, in [0, pi].
[[nodiscard]] inline double angular_separation(double a, double b) noexcept {
  return std::fabs(wrap_pi(a - b));
}

}  // namespace mpleo::util
