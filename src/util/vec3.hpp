// Minimal 3-vector used for positions/velocities in metres and m/s.
#pragma once

#include <cmath>
#include <ostream>

namespace mpleo::util {

struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double xx, double yy, double zz) noexcept : x(xx), y(yy), z(zz) {}

  constexpr Vec3& operator+=(const Vec3& o) noexcept {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) noexcept {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) noexcept {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) noexcept {
    x /= s; y /= s; z /= s;
    return *this;
  }

  [[nodiscard]] constexpr double norm_squared() const noexcept { return x * x + y * y + z * z; }
  [[nodiscard]] double norm() const noexcept { return std::sqrt(norm_squared()); }

  // Returns this vector scaled to unit length. Precondition: norm() > 0.
  [[nodiscard]] Vec3 normalized() const noexcept {
    const double n = norm();
    return {x / n, y / n, z / n};
  }
};

[[nodiscard]] constexpr Vec3 operator+(Vec3 a, const Vec3& b) noexcept { return a += b; }
[[nodiscard]] constexpr Vec3 operator-(Vec3 a, const Vec3& b) noexcept { return a -= b; }
[[nodiscard]] constexpr Vec3 operator*(Vec3 a, double s) noexcept { return a *= s; }
[[nodiscard]] constexpr Vec3 operator*(double s, Vec3 a) noexcept { return a *= s; }
[[nodiscard]] constexpr Vec3 operator/(Vec3 a, double s) noexcept { return a /= s; }
[[nodiscard]] constexpr Vec3 operator-(const Vec3& a) noexcept { return {-a.x, -a.y, -a.z}; }

[[nodiscard]] constexpr double dot(const Vec3& a, const Vec3& b) noexcept {
  return a.x * b.x + a.y * b.y + a.z * b.z;
}

[[nodiscard]] constexpr Vec3 cross(const Vec3& a, const Vec3& b) noexcept {
  return {a.y * b.z - a.z * b.y, a.z * b.x - a.x * b.z, a.x * b.y - a.y * b.x};
}

[[nodiscard]] inline double distance(const Vec3& a, const Vec3& b) noexcept {
  return (a - b).norm();
}

inline std::ostream& operator<<(std::ostream& os, const Vec3& v) {
  return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

}  // namespace mpleo::util
