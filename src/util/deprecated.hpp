// Deprecation escape hatch for the pre-RunContext entry points.
//
// MPLEO_DEPRECATED(msg) expands to [[deprecated(msg)]] unless the including
// translation unit defines MPLEO_ALLOW_DEPRECATED first — the opt-out used
// by the tests that pin old-API vs RunContext-API bit-identity, and by
// downstream code that wants a quiet migration window. CI builds the
// examples with -Werror=deprecated-declarations to prove the shipped
// drivers are fully migrated.
#pragma once

#if defined(MPLEO_ALLOW_DEPRECATED)
#define MPLEO_DEPRECATED(msg)
#else
#define MPLEO_DEPRECATED(msg) [[deprecated(msg)]]
#endif
