// A small fixed-size thread pool with a blocking parallel_for primitive.
//
// The simulation kernel (EphemerisSet, VisibilityCache precompute) is
// embarrassingly parallel across satellites: each index writes only its own
// output slot. parallel_for exposes exactly that shape — no futures, no
// per-task allocation on the hot path — and the caller thread participates
// in the work, so a pool is never slower than the serial loop by more than
// the dispatch cost. Work is handed out chunk-by-chunk from an atomic
// cursor, which load-balances uneven per-index costs (eccentric orbits,
// cache-cold satellites) without any per-index synchronisation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mpleo::util {

class ThreadPool {
 public:
  // `thread_count == 0` sizes the pool to the hardware concurrency.
  // A pool of size 1 degenerates to running everything on the caller.
  explicit ThreadPool(std::size_t thread_count = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of threads that execute work (workers + the calling thread).
  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  // Runs fn(i) for every i in [0, count) and blocks until all are done.
  // Indices are handed out in chunks; fn must be safe to call concurrently
  // for distinct i. If any invocation throws, the first exception is
  // rethrown on the caller after the loop drains.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  // Chunked variant: fn(begin, end) over disjoint subranges of [0, count).
  void parallel_for_chunks(std::size_t count,
                           const std::function<void(std::size_t, std::size_t)>& fn);

  // Process-wide pool sized to the hardware; created on first use.
  [[nodiscard]] static ThreadPool& shared();

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::size_t chunk = 1;
    std::size_t next = 0;        // next unclaimed index (guarded by mutex_)
    std::size_t active = 0;      // workers currently inside fn
    std::exception_ptr error;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;   // workers wait here for a job
  std::condition_variable done_;   // submitter waits here for completion
  Job job_;
  bool stop_ = false;
};

}  // namespace mpleo::util
