#include "util/stream_queue.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "util/thread_pool.hpp"

namespace mpleo::util {

ChunkStream::ChunkStream(std::size_t chunk_count, std::size_t slot_count)
    : chunk_count_(chunk_count),
      slot_count_(std::max<std::size_t>(
          1, std::min(slot_count, std::max<std::size_t>(chunk_count, 1)))) {
  produce_turn_.resize(slot_count_);
  for (std::size_t s = 0; s < slot_count_; ++s) produce_turn_[s] = s;
  published_.assign(slot_count_, 0);
}

std::size_t ChunkStream::begin_produce(std::size_t chunk) {
  const std::size_t slot = chunk % slot_count_;
  std::unique_lock lock(mutex_);
  slot_free_.wait(lock,
                  [&] { return aborted_ || produce_turn_[slot] == chunk; });
  if (aborted_) throw ChunkStreamAborted{};
  return slot;
}

void ChunkStream::publish(std::size_t chunk) {
  const std::size_t slot = chunk % slot_count_;
  {
    std::lock_guard lock(mutex_);
    published_[slot] = 1;
  }
  published_cv_.notify_one();
}

bool ChunkStream::wait_ready(std::size_t chunk) {
  const std::size_t slot = chunk % slot_count_;
  std::unique_lock lock(mutex_);
  published_cv_.wait(lock, [&] {
    return aborted_ || (produce_turn_[slot] == chunk && published_[slot] != 0);
  });
  return !aborted_;
}

void ChunkStream::release(std::size_t chunk) {
  const std::size_t slot = chunk % slot_count_;
  {
    std::lock_guard lock(mutex_);
    published_[slot] = 0;
    produce_turn_[slot] = chunk + slot_count_;
  }
  // More than one producer can be parked on this condition (distinct future
  // chunks mapping to distinct slots woken spuriously is fine; correctness
  // only needs the one whose turn arrived to wake eventually).
  slot_free_.notify_all();
}

void ChunkStream::abort() {
  {
    std::lock_guard lock(mutex_);
    aborted_ = true;
  }
  slot_free_.notify_all();
  published_cv_.notify_all();
}

void stream_chunks(ThreadPool* pool, std::size_t chunk_count,
                   std::size_t slot_count,
                   const std::function<void(std::size_t, std::size_t)>& produce,
                   const std::function<void(std::size_t, std::size_t)>& consume) {
  if (chunk_count == 0) return;
  if (pool == nullptr || pool->thread_count() <= 1) {
    // Serial: each chunk is produced then immediately consumed in one slot.
    for (std::size_t c = 0; c < chunk_count; ++c) {
      produce(c, 0);
      consume(c, 0);
    }
    return;
  }

  ChunkStream stream(chunk_count, slot_count);
  std::exception_ptr produce_error;
  std::mutex error_mutex;

  // The pool's parallel_for hands indices out in ascending ranges and, on an
  // error, still drains every remaining index (recording only the first
  // exception). A failed chunk would therefore never publish and the
  // consumer — plus every producer behind the dead slot — would block
  // forever. Aborting the stream BEFORE rethrowing turns all of those waits
  // into immediate ChunkStreamAborted exits, which the driver swallows so
  // the first real error is what propagates.
  const auto run_chunk = [&](std::size_t chunk) {
    std::size_t slot = 0;
    try {
      slot = stream.begin_produce(chunk);
    } catch (const ChunkStreamAborted&) {
      return;  // stream already failed; nothing to clean up
    }
    try {
      produce(chunk, slot);
    } catch (...) {
      {
        std::lock_guard lock(error_mutex);
        if (!produce_error) produce_error = std::current_exception();
      }
      stream.abort();
      return;
    }
    stream.publish(chunk);
  };

  // Producers run on the pool from a helper thread so this thread is free to
  // consume; the helper participates in the parallel_for as one more
  // producer lane.
  std::thread driver([&] { pool->parallel_for(chunk_count, run_chunk); });

  try {
    for (std::size_t c = 0; c < chunk_count; ++c) {
      if (!stream.wait_ready(c)) break;  // aborted: producer error pending
      consume(c, c % stream.slot_count());
      stream.release(c);
    }
  } catch (...) {
    stream.abort();
    driver.join();
    throw;
  }
  driver.join();
  {
    std::lock_guard lock(error_mutex);
    if (produce_error) std::rethrow_exception(produce_error);
  }
}

}  // namespace mpleo::util
