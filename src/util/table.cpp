#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace mpleo::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };

  rule();
  emit(headers_);
  rule();
  for (const auto& row : rows_) emit(row);
  rule();
  return os.str();
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::duration(double seconds) {
  const bool neg = seconds < 0.0;
  double s = std::fabs(seconds);
  const auto days = static_cast<long>(s / 86400.0);
  s -= static_cast<double>(days) * 86400.0;
  const auto hours = static_cast<long>(s / 3600.0);
  s -= static_cast<double>(hours) * 3600.0;
  const auto minutes = static_cast<long>(s / 60.0);

  char buf[64];
  if (days > 0) {
    std::snprintf(buf, sizeof buf, "%s%ldd %ldh %02ldm", neg ? "-" : "", days, hours, minutes);
  } else if (hours > 0) {
    std::snprintf(buf, sizeof buf, "%s%ldh %02ldm", neg ? "-" : "", hours, minutes);
  } else {
    std::snprintf(buf, sizeof buf, "%s%ldm %02.0fs", neg ? "-" : "", minutes,
                  s - static_cast<double>(minutes) * 60.0);
  }
  return buf;
}

}  // namespace mpleo::util
