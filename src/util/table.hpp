// ASCII table renderer used by the bench harnesses to print paper-style rows.
#pragma once

#include <string>
#include <vector>

namespace mpleo::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Adds a row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  // Renders with aligned columns, a header rule, and outer borders.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  // Formatting helpers for cells.
  [[nodiscard]] static std::string num(double v, int precision = 2);
  [[nodiscard]] static std::string pct(double fraction, int precision = 2);
  // Renders seconds as e.g. "1d 16h 03m".
  [[nodiscard]] static std::string duration(double seconds);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mpleo::util
