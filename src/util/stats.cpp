#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mpleo::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  if (n_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = x;
    max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::vector<double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev_of(const std::vector<double>& values) {
  RunningStats rs;
  for (double v : values) rs.add(v);
  return rs.stddev();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0 || !(hi > lo)) throw std::invalid_argument("Histogram: bad range/bins");
}

void Histogram::add(double x) noexcept {
  auto bin = static_cast<long>(std::floor((x - lo_) / width_));
  bin = std::clamp(bin, 0L, static_cast<long>(counts_.size()) - 1L);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin + 1);
}

}  // namespace mpleo::util
