// Physical constants and unit helpers used across the library.
//
// All internal computation is SI: metres, seconds, radians, kilograms,
// watts, hertz. Helpers exist to convert at the API boundary only.
#pragma once

#include <numbers>

namespace mpleo::util {

// --- Mathematical constants ------------------------------------------------
inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

// --- Earth / gravity (WGS-84 + EGM96 values) --------------------------------
// Gravitational parameter of Earth, m^3/s^2.
inline constexpr double kMuEarth = 3.986004418e14;
// WGS-84 equatorial radius, m.
inline constexpr double kEarthEquatorialRadiusM = 6378137.0;
// WGS-84 flattening.
inline constexpr double kEarthFlattening = 1.0 / 298.257223563;
// Mean Earth radius (IUGG), m — used for spherical footprint approximations.
inline constexpr double kEarthMeanRadiusM = 6371008.8;
// Second zonal harmonic (J2) of Earth's geopotential.
inline constexpr double kJ2Earth = 1.08262668e-3;
// Earth rotation rate, rad/s (sidereal).
inline constexpr double kEarthRotationRateRadPerSec = 7.2921158553e-5;

// --- Radio ------------------------------------------------------------------
// Speed of light, m/s.
inline constexpr double kSpeedOfLightMPerSec = 299792458.0;
// Boltzmann constant, J/K.
inline constexpr double kBoltzmannJPerK = 1.380649e-23;

// --- Time -------------------------------------------------------------------
inline constexpr double kSecondsPerDay = 86400.0;
inline constexpr double kSecondsPerHour = 3600.0;
inline constexpr double kSecondsPerWeek = 7.0 * kSecondsPerDay;

// --- Conversions --------------------------------------------------------------
[[nodiscard]] constexpr double deg_to_rad(double deg) noexcept { return deg * kPi / 180.0; }
[[nodiscard]] constexpr double rad_to_deg(double rad) noexcept { return rad * 180.0 / kPi; }
[[nodiscard]] constexpr double km_to_m(double km) noexcept { return km * 1000.0; }
[[nodiscard]] constexpr double m_to_km(double m) noexcept { return m / 1000.0; }
[[nodiscard]] constexpr double hours_to_sec(double h) noexcept { return h * kSecondsPerHour; }
[[nodiscard]] constexpr double sec_to_hours(double s) noexcept { return s / kSecondsPerHour; }
[[nodiscard]] constexpr double days_to_sec(double d) noexcept { return d * kSecondsPerDay; }

}  // namespace mpleo::util
