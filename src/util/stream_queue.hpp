// Bounded-queue chunk streaming between a parallel producer stage and a
// sequential, in-order consumer stage.
//
// The pipelined scheduler's phase 1 builds per-chunk candidate lists in
// parallel and phase 2 must consume them strictly in step order. Filling
// every chunk before draining any (fill-then-drain) makes peak memory
// proportional to the whole horizon; ChunkStream instead recycles a fixed
// ring of S slots: chunk c may only be produced into slot c % S once the
// consumer has released chunk c - S, so at most S chunks of output exist at
// any moment and phase 2 starts the instant chunk 0 lands. Output is
// bit-identical to fill-then-drain because the consumer still sees chunks
// 0, 1, 2, ... in order — only the interleaving of work changes.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace mpleo::util {

class ThreadPool;

// Thrown out of begin_produce when the stream has been aborted (some other
// producer or the consumer failed). Producers let it propagate; the driver
// swallows it so the first real error is what reaches the caller.
struct ChunkStreamAborted : std::runtime_error {
  ChunkStreamAborted() : std::runtime_error("chunk stream aborted") {}
};

class ChunkStream {
 public:
  // `slot_count` is clamped to [1, chunk_count].
  ChunkStream(std::size_t chunk_count, std::size_t slot_count);

  [[nodiscard]] std::size_t chunk_count() const noexcept { return chunk_count_; }
  [[nodiscard]] std::size_t slot_count() const noexcept { return slot_count_; }

  // Producer side: blocks until slot (chunk % slot_count) is free for this
  // chunk (i.e. the consumer has released chunk - slot_count), returning the
  // slot index. Throws ChunkStreamAborted if abort() lands first.
  [[nodiscard]] std::size_t begin_produce(std::size_t chunk);
  // Marks the chunk's output complete; wakes the consumer if it is waiting.
  void publish(std::size_t chunk);

  // Consumer side: blocks until `chunk` has been published. Returns false if
  // the stream aborted instead (the chunk may never arrive).
  [[nodiscard]] bool wait_ready(std::size_t chunk);
  // Frees the chunk's slot for chunk + slot_count; call after consuming.
  void release(std::size_t chunk);

  // Fails the stream: every blocked or future begin_produce throws
  // ChunkStreamAborted and wait_ready returns false. Idempotent.
  void abort();

 private:
  const std::size_t chunk_count_;
  const std::size_t slot_count_;
  std::mutex mutex_;
  std::condition_variable slot_free_;   // producers wait for their turn
  std::condition_variable published_cv_;  // consumer waits for its chunk
  // produce_turn_[s] is the next chunk allowed to occupy slot s (starts at
  // s, advances by slot_count on release). published_[s] flags the slot's
  // current chunk as complete.
  std::vector<std::size_t> produce_turn_;
  std::vector<char> published_;
  bool aborted_ = false;
};

// Runs `produce(chunk, slot)` for every chunk in [0, chunk_count) across the
// pool (inline when `pool` is null) while this thread consumes
// `consume(chunk, slot)` strictly in chunk order, with at most `slot_count`
// chunks in flight. Exceptions from either side abort the stream and the
// first producer error (or the consumer's) is rethrown here after all
// workers drain. Returns once every chunk is consumed.
void stream_chunks(ThreadPool* pool, std::size_t chunk_count,
                   std::size_t slot_count,
                   const std::function<void(std::size_t, std::size_t)>& produce,
                   const std::function<void(std::size_t, std::size_t)>& consume);

}  // namespace mpleo::util
