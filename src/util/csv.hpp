// CSV writer with RFC-4180 quoting, used to dump bench series for plotting.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace mpleo::util {

class CsvWriter {
 public:
  // Writes rows to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  void write_row(const std::vector<std::string>& cells);

  // Quotes a cell if it contains a comma, quote, or newline.
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::ostream* out_;
};

}  // namespace mpleo::util
