#include "util/thread_pool.hpp"

#include <algorithm>

namespace mpleo::util {

ThreadPool::ThreadPool(std::size_t thread_count) {
  if (thread_count == 0) {
    thread_count = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  // The caller thread participates in every parallel_for, so spawn one
  // worker fewer than the requested width.
  workers_.reserve(thread_count - 1);
  for (std::size_t i = 0; i + 1 < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] {
      return stop_ || (job_.fn != nullptr && job_.next < job_.count);
    });
    if (stop_) return;
    // Claim and run chunks until this job is drained.
    while (job_.fn != nullptr && job_.next < job_.count) {
      const std::size_t begin = job_.next;
      const std::size_t end = std::min(begin + job_.chunk, job_.count);
      job_.next = end;
      ++job_.active;
      const auto* fn = job_.fn;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*fn)(begin, end);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      --job_.active;
      if (error && !job_.error) job_.error = error;
      if (job_.next >= job_.count && job_.active == 0) done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(
    std::size_t count, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    fn(0, count);
    return;
  }
  const std::size_t width = thread_count();
  const std::size_t chunk = std::max<std::size_t>(1, count / (width * 8));

  std::unique_lock<std::mutex> lock(mutex_);
  // One job at a time: nested/concurrent submissions run inline instead of
  // deadlocking on the shared job slot.
  if (job_.fn != nullptr) {
    lock.unlock();
    fn(0, count);
    return;
  }
  job_.fn = &fn;
  job_.count = count;
  job_.chunk = chunk;
  job_.next = 0;
  job_.active = 0;
  job_.error = nullptr;
  lock.unlock();
  wake_.notify_all();

  // The submitting thread works too.
  lock.lock();
  while (job_.next < job_.count) {
    const std::size_t begin = job_.next;
    const std::size_t end = std::min(begin + job_.chunk, job_.count);
    job_.next = end;
    ++job_.active;
    lock.unlock();
    std::exception_ptr error;
    try {
      fn(begin, end);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    --job_.active;
    if (error && !job_.error) job_.error = error;
  }
  done_.wait(lock, [this] { return job_.next >= job_.count && job_.active == 0; });
  const std::exception_ptr error = job_.error;
  job_.fn = nullptr;
  job_.error = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(count, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mpleo::util
