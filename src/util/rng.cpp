#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

#include "util/units.hpp"

namespace mpleo::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256PlusPlus::Xoshiro256PlusPlus(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

Xoshiro256PlusPlus::result_type Xoshiro256PlusPlus::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Xoshiro256PlusPlus Xoshiro256PlusPlus::split(std::uint64_t child_index) const noexcept {
  // Mix the current state with the child index through SplitMix64 to obtain
  // a decorrelated child seed. Does not advance the parent.
  SplitMix64 sm(s_[0] ^ rotl(s_[2], 29) ^ (child_index * 0x9E3779B97F4A7C15ULL));
  return Xoshiro256PlusPlus(sm.next());
}

double Xoshiro256PlusPlus::uniform() noexcept {
  // 53 random bits -> [0,1) double.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256PlusPlus::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256PlusPlus::uniform_index(std::uint64_t n) noexcept {
  assert(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    // Split the 64-bit draw into a 128-bit product high/low by hand.
    const __uint128_t m = static_cast<__uint128_t>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Xoshiro256PlusPlus::normal() noexcept {
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

double Xoshiro256PlusPlus::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::vector<std::size_t> Xoshiro256PlusPlus::sample_without_replacement(std::size_t n,
                                                                        std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_index(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace mpleo::util
