// Tiny leveled logger. Not thread-safe by design: the simulator is
// single-threaded per run; benches own their output.
#pragma once

#include <sstream>
#include <string>

namespace mpleo::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace mpleo::util

#define MPLEO_LOG_DEBUG ::mpleo::util::detail::LogLine(::mpleo::util::LogLevel::kDebug)
#define MPLEO_LOG_INFO ::mpleo::util::detail::LogLine(::mpleo::util::LogLevel::kInfo)
#define MPLEO_LOG_WARN ::mpleo::util::detail::LogLine(::mpleo::util::LogLevel::kWarn)
#define MPLEO_LOG_ERROR ::mpleo::util::detail::LogLine(::mpleo::util::LogLevel::kError)
