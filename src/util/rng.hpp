// Deterministic pseudo-random number generation.
//
// All experiment randomness flows through Xoshiro256PlusPlus streams so that
// every bench/table is exactly reproducible from a seed. Streams can be
// split per Monte-Carlo run (split(run_index)) so runs are independent yet
// individually re-creatable.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace mpleo::util {

// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256++ by Blackman & Vigna. Satisfies UniformRandomBitGenerator.
class Xoshiro256PlusPlus {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256PlusPlus(std::uint64_t seed = 0x6d70ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  result_type next() noexcept;

  // Derives an independent child stream; child i is stable across calls.
  [[nodiscard]] Xoshiro256PlusPlus split(std::uint64_t child_index) const noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept;
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  // Uniform integer in [0, n). Precondition: n > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  // Standard normal via Box-Muller (no cached spare; stateless per call pair).
  double normal() noexcept;
  double normal(double mean, double stddev) noexcept;

  // Fisher-Yates partial shuffle: returns k distinct indices drawn uniformly
  // without replacement from [0, n). Precondition: k <= n.
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                    std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace mpleo::util
