// Small statistics toolkit for Monte-Carlo experiment summaries.
#pragma once

#include <cstddef>
#include <vector>

namespace mpleo::util {

// Welford online accumulator: numerically stable mean/variance plus extrema.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  // Merges another accumulator into this one (parallel-combine form).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile with linear interpolation; p in [0,100]. Copies and sorts.
[[nodiscard]] double percentile(std::vector<double> values, double p);

[[nodiscard]] double mean_of(const std::vector<double>& values);
[[nodiscard]] double stddev_of(const std::vector<double>& values);

// Fixed-width histogram over [lo, hi); values outside are clamped to the
// first/last bin. Used by benches to show distributions paper-figure style.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace mpleo::util
