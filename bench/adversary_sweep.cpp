// Adversary sweep: honest-party welfare and payoff vs the fraction of
// Byzantine consortium members, with receipt auditing, quarantine and
// slashing fighting back (§3.2 incentives + §3.4 robustness). Byzantine
// sets are nested across fractions (common random numbers) and the gated
// honest-core payoff is computed against the running union of excluded
// parties, so it is monotone non-increasing by construction; the process
// exits non-zero if that — or detection >= injection — ever fails to hold.
// Writes a machine-readable JSON report (default BENCH_adversary_sweep.json;
// override with --out=PATH).
#include <cstring>

#include "bench_common.hpp"
#include "core/adversary_sweep.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  std::string out_path = "BENCH_adversary_sweep.json";
  bool quick = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
      continue;
    }
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    rest.push_back(argv[i]);
  }

  sim::Scenario defaults;
  defaults.seed = 1042;
  defaults.threads = 0;  // hardware-sized pool unless --threads=N overrides
  const sim::Scenario scenario = bench::start(
      static_cast<int>(rest.size()), rest.data(),
      "Adversary sweep: honest-party payoff vs Byzantine fraction",
      "audited receipts + quarantine keep honest payoff degrading gracefully, "
      "never collapsing",
      defaults);

  core::AdversarySweepConfig config;
  config.seed = scenario.seed;
  config.intensity = scenario.adversary_intensity;
  if (scenario.adversary_mode != sim::AdversaryMode::kOff) {
    config.mix = adversary::mix_for_mode(scenario.adversary_mode);
  }
  if (quick) {
    config.byzantine_fractions = {0.0, 0.25, 0.5};
    config.parties = 6;
    config.satellites_per_party = 8;
    config.terminals_per_party = 4;
    config.epochs = 2;
  }

  sim::RunContext context(scenario);
  const std::vector<core::AdversarySweepPoint> points =
      core::adversary_sweep(config, context);

  bool monotone = true;
  bool detected_ge_injected = true;
  util::Table table({"byzantine", "parties", "injected", "detected", "quarantined",
                     "expelled", "detect epochs", "slashed", "honest welfare",
                     "honest payoff", "honest balance"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const core::AdversarySweepPoint& p = points[i];
    if (i > 0 && p.honest_core_payoff > points[i - 1].honest_core_payoff + 1e-9) {
      monotone = false;
    }
    if (p.fraud_detected < p.fraud_injected) detected_ge_injected = false;
    table.add_row({util::Table::pct(p.byzantine_fraction),
                   util::Table::num(static_cast<double>(p.byzantine_parties)),
                   util::Table::num(static_cast<double>(p.fraud_injected)),
                   util::Table::num(static_cast<double>(p.fraud_detected)),
                   util::Table::num(static_cast<double>(p.quarantined_parties)),
                   util::Table::num(static_cast<double>(p.expelled_parties)),
                   util::Table::num(p.mean_detection_epochs),
                   util::Table::num(p.total_slashed),
                   util::Table::pct(p.honest_core_welfare),
                   util::Table::num(p.honest_core_payoff),
                   util::Table::num(p.mean_honest_balance)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nhonest payoff monotone non-increasing in byzantine fraction: %s\n",
              monotone ? "yes" : "NO");
  std::printf("audit detected >= injected at every point: %s\n",
              detected_ge_injected ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "adversary_sweep: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": {\"parties\": %zu, \"satellites\": %zu,"
               " \"terminals\": %zu, \"stations\": %zu, \"epochs\": %zu,"
               " \"epoch_seconds\": %.1f, \"step_seconds\": %.1f, \"seed\": %llu},\n"
               "  \"points\": [",
               config.parties, config.parties * config.satellites_per_party,
               config.parties * config.terminals_per_party,
               config.parties * config.stations_per_party, config.epochs,
               config.epoch_duration_s, config.step_s,
               static_cast<unsigned long long>(config.seed));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const core::AdversarySweepPoint& p = points[i];
    std::fprintf(out,
                 "%s\n    {\"byzantine_fraction\": %.4f, \"byzantine_parties\": %zu,"
                 " \"fraud_injected\": %zu, \"fraud_detected\": %zu,"
                 " \"quarantined_parties\": %zu, \"expelled_parties\": %zu,"
                 " \"mean_detection_epochs\": %.4f, \"total_slashed\": %.6f,"
                 " \"honest_core_welfare\": %.6f, \"honest_core_payoff\": %.6f,"
                 " \"mean_honest_balance\": %.6f}",
                 i == 0 ? "" : ",", p.byzantine_fraction, p.byzantine_parties,
                 p.fraud_injected, p.fraud_detected, p.quarantined_parties,
                 p.expelled_parties, p.mean_detection_epochs, p.total_slashed,
                 p.honest_core_welfare, p.honest_core_payoff, p.mean_honest_balance);
  }
  std::fprintf(out,
               "\n  ],\n"
               "  \"honest_payoff_monotone\": %s,\n"
               "  \"fraud_detected_ge_injected\": %s\n"
               "}\n",
               monotone ? "true" : "false", detected_ge_injected ? "true" : "false");
  std::fclose(out);
  std::printf("report written to %s\n", out_path.c_str());
  return (monotone && detected_ge_injected) ? 0 : 1;
}
