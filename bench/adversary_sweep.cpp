// Adversary sweep: honest-party welfare and payoff vs the fraction of
// Byzantine consortium members, with receipt auditing, quarantine and
// slashing fighting back (§3.2 incentives + §3.4 robustness). Byzantine
// sets are nested across fractions (common random numbers) and the gated
// honest-core payoff is computed against the running union of excluded
// parties, so it is monotone non-increasing by construction; the process
// exits non-zero if that — or detection >= injection — ever fails to hold.
// Writes a machine-readable JSON report (default BENCH_adversary_sweep.json;
// override with --out=PATH).
#include <cstring>

#include "bench_common.hpp"
#include "core/adversary_sweep.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  std::string out_path = "BENCH_adversary_sweep.json";
  bool quick = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
      continue;
    }
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    rest.push_back(argv[i]);
  }

  sim::Scenario defaults;
  defaults.seed = 1042;
  defaults.threads = 0;  // hardware-sized pool unless --threads=N overrides
  const sim::Scenario scenario = bench::start(
      static_cast<int>(rest.size()), rest.data(),
      "Adversary sweep: honest-party payoff vs Byzantine fraction",
      "audited receipts + quarantine keep honest payoff degrading gracefully, "
      "never collapsing",
      defaults);

  core::AdversarySweepConfig config;
  config.seed = scenario.seed;
  config.intensity = scenario.adversary_intensity;
  if (scenario.adversary_mode != sim::AdversaryMode::kOff) {
    config.mix = adversary::mix_for_mode(scenario.adversary_mode);
  }
  if (quick) {
    config.byzantine_fractions = {0.0, 0.25, 0.5};
    config.parties = 6;
    config.satellites_per_party = 8;
    config.terminals_per_party = 4;
    config.epochs = 2;
  }

  core::RfSweepConfig rf_config;
  if (quick) {
    rf_config.doppler_trials = 50;
    rf_config.jammer_fractions = {0.0, 0.25, 0.5};
  }

  sim::RunContext context(scenario);
  const std::vector<core::AdversarySweepPoint> points =
      core::adversary_sweep(config, context);
  const core::RfSweepResult rf = core::rf_adversary_sweep(config, rf_config, context);

  bool monotone = true;
  bool detected_ge_injected = true;
  util::Table table({"byzantine", "parties", "injected", "detected", "quarantined",
                     "expelled", "detect epochs", "slashed", "honest welfare",
                     "honest payoff", "honest balance"});
  for (std::size_t i = 0; i < points.size(); ++i) {
    const core::AdversarySweepPoint& p = points[i];
    if (i > 0 && p.honest_core_payoff > points[i - 1].honest_core_payoff + 1e-9) {
      monotone = false;
    }
    if (p.fraud_detected < p.fraud_injected) detected_ge_injected = false;
    table.add_row({util::Table::pct(p.byzantine_fraction),
                   util::Table::num(static_cast<double>(p.byzantine_parties)),
                   util::Table::num(static_cast<double>(p.fraud_injected)),
                   util::Table::num(static_cast<double>(p.fraud_detected)),
                   util::Table::num(static_cast<double>(p.quarantined_parties)),
                   util::Table::num(static_cast<double>(p.expelled_parties)),
                   util::Table::num(p.mean_detection_epochs),
                   util::Table::num(p.total_slashed),
                   util::Table::pct(p.honest_core_welfare),
                   util::Table::num(p.honest_core_payoff),
                   util::Table::num(p.mean_honest_balance)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nhonest payoff monotone non-increasing in byzantine fraction: %s\n",
              monotone ? "yes" : "NO");
  std::printf("audit detected >= injected at every point: %s\n",
              detected_ge_injected ? "yes" : "NO");

  // RF section gates: the Doppler fit must reject >= 99% of forged tracks at
  // every detectable sophistication level while flagging zero honest tracks,
  // jamming must degrade honest welfare monotonically (nested jammer sets),
  // and every jamming point with jammers must produce attributed violation
  // evidence (detection >= injection for continuous emitters).
  bool rf_detection = true;
  bool rf_honest_clean = true;
  util::Table doppler_table({"forgery level", "gated", "forged", "rejected",
                             "detection", "honest", "flagged"});
  for (const core::RfDopplerPoint& p : rf.doppler) {
    if (p.gated && p.detection_rate < 0.99) rf_detection = false;
    if (p.honest_flagged != 0) rf_honest_clean = false;
    doppler_table.add_row({rf::to_string(p.level), p.gated ? "yes" : "no",
                           util::Table::num(static_cast<double>(p.forged_submitted)),
                           util::Table::num(static_cast<double>(p.forged_rejected)),
                           util::Table::pct(p.detection_rate),
                           util::Table::num(static_cast<double>(p.honest_submitted)),
                           util::Table::num(static_cast<double>(p.honest_flagged))});
  }
  bool rf_welfare_monotone = true;
  bool rf_violations_detected = true;
  util::Table jamming_table({"jammer frac", "jammers", "nominal bps", "realized bps",
                             "honest welfare", "violations", "quarantined", "slashed"});
  for (std::size_t i = 0; i < rf.jamming.size(); ++i) {
    const core::RfJammingPoint& p = rf.jamming[i];
    if (i > 0 && p.honest_welfare > rf.jamming[i - 1].honest_welfare + 1e-9) {
      rf_welfare_monotone = false;
    }
    if (p.jamming_parties > 0 && p.violations_detected < p.jamming_parties) {
      rf_violations_detected = false;
    }
    jamming_table.add_row({util::Table::pct(p.jammer_fraction),
                           util::Table::num(static_cast<double>(p.jamming_parties)),
                           util::Table::num(p.capacity_nominal_bps),
                           util::Table::num(p.capacity_realized_bps),
                           util::Table::pct(p.honest_welfare),
                           util::Table::num(static_cast<double>(p.violations_detected)),
                           util::Table::num(static_cast<double>(p.quarantined_parties)),
                           util::Table::num(p.total_slashed)});
  }
  std::printf("\nRF doppler-fit audit (per forgery sophistication):\n");
  std::fputs(doppler_table.to_string().c_str(), stdout);
  std::printf("\nRF jamming sweep (per jammer fraction):\n");
  std::fputs(jamming_table.to_string().c_str(), stdout);
  std::printf("\ndoppler fit rejects >= 99%% of detectable forgeries: %s\n",
              rf_detection ? "yes" : "NO");
  std::printf("doppler fit flags zero honest receipts: %s\n",
              rf_honest_clean ? "yes" : "NO");
  std::printf("jamming welfare monotone non-increasing: %s\n",
              rf_welfare_monotone ? "yes" : "NO");
  std::printf("violations detected >= jamming parties at every point: %s\n",
              rf_violations_detected ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "adversary_sweep: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": {\"parties\": %zu, \"satellites\": %zu,"
               " \"terminals\": %zu, \"stations\": %zu, \"epochs\": %zu,"
               " \"epoch_seconds\": %.1f, \"step_seconds\": %.1f, \"seed\": %llu},\n"
               "  \"points\": [",
               config.parties, config.parties * config.satellites_per_party,
               config.parties * config.terminals_per_party,
               config.parties * config.stations_per_party, config.epochs,
               config.epoch_duration_s, config.step_s,
               static_cast<unsigned long long>(config.seed));
  for (std::size_t i = 0; i < points.size(); ++i) {
    const core::AdversarySweepPoint& p = points[i];
    std::fprintf(out,
                 "%s\n    {\"byzantine_fraction\": %.4f, \"byzantine_parties\": %zu,"
                 " \"fraud_injected\": %zu, \"fraud_detected\": %zu,"
                 " \"quarantined_parties\": %zu, \"expelled_parties\": %zu,"
                 " \"mean_detection_epochs\": %.4f, \"total_slashed\": %.6f,"
                 " \"honest_core_welfare\": %.6f, \"honest_core_payoff\": %.6f,"
                 " \"mean_honest_balance\": %.6f}",
                 i == 0 ? "" : ",", p.byzantine_fraction, p.byzantine_parties,
                 p.fraud_injected, p.fraud_detected, p.quarantined_parties,
                 p.expelled_parties, p.mean_detection_epochs, p.total_slashed,
                 p.honest_core_welfare, p.honest_core_payoff, p.mean_honest_balance);
  }
  std::fprintf(out,
               "\n  ],\n"
               "  \"rf\": {\n"
               "    \"doppler_trials\": %zu,\n"
               "    \"doppler\": [",
               rf_config.doppler_trials);
  for (std::size_t i = 0; i < rf.doppler.size(); ++i) {
    const core::RfDopplerPoint& p = rf.doppler[i];
    std::fprintf(out,
                 "%s\n      {\"level\": \"%s\", \"gated\": %s,"
                 " \"forged_submitted\": %zu, \"forged_rejected\": %zu,"
                 " \"honest_submitted\": %zu, \"honest_flagged\": %zu,"
                 " \"detection_rate\": %.6f}",
                 i == 0 ? "" : ",", rf::to_string(p.level), p.gated ? "true" : "false",
                 p.forged_submitted, p.forged_rejected, p.honest_submitted,
                 p.honest_flagged, p.detection_rate);
  }
  std::fprintf(out,
               "\n    ],\n"
               "    \"jamming\": [");
  for (std::size_t i = 0; i < rf.jamming.size(); ++i) {
    const core::RfJammingPoint& p = rf.jamming[i];
    std::fprintf(out,
                 "%s\n      {\"jammer_fraction\": %.4f, \"jamming_parties\": %zu,"
                 " \"capacity_nominal_bps\": %.6f, \"capacity_realized_bps\": %.6f,"
                 " \"honest_welfare\": %.6f, \"violations_detected\": %zu,"
                 " \"quarantined_parties\": %zu, \"expelled_parties\": %zu,"
                 " \"total_slashed\": %.6f}",
                 i == 0 ? "" : ",", p.jammer_fraction, p.jamming_parties,
                 p.capacity_nominal_bps, p.capacity_realized_bps, p.honest_welfare,
                 p.violations_detected, p.quarantined_parties, p.expelled_parties,
                 p.total_slashed);
  }
  std::fprintf(out,
               "\n    ],\n"
               "    \"rf_detection_gate\": %s,\n"
               "    \"rf_honest_clean\": %s,\n"
               "    \"rf_welfare_monotone\": %s,\n"
               "    \"rf_violations_detected\": %s\n"
               "  },\n"
               "  \"honest_payoff_monotone\": %s,\n"
               "  \"fraud_detected_ge_injected\": %s\n"
               "}\n",
               rf_detection ? "true" : "false", rf_honest_clean ? "true" : "false",
               rf_welfare_monotone ? "true" : "false",
               rf_violations_detected ? "true" : "false", monotone ? "true" : "false",
               detected_ge_injected ? "true" : "false");
  std::fclose(out);
  std::printf("report written to %s\n", out_path.c_str());
  const bool rf_ok =
      rf_detection && rf_honest_clean && rf_welfare_monotone && rf_violations_detected;
  return (monotone && detected_ge_injected && rf_ok) ? 0 : 1;
}
