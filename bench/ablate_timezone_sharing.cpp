// Ablation (§1-2, the sharing argument on the traffic axis): demand is
// diurnal, so a satellite's busy hour over Tokyo is its idle hour over New
// York. Pooling capacity across time zones serves the same demand with less
// capacity — or the same capacity with fewer drops.
//
// Model: two regions 10 time zones apart offer diurnal load into (a) two
// dedicated half-capacity pipes vs (b) one shared full-capacity pipe.
#include "bench_common.hpp"
#include "net/queueing.hpp"
#include "net/traffic.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.duration_s = 2.0 * 86400.0;
  defaults.step_s = 300.0;
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: time-zone multiplexing of shared capacity",
      "shared pool serves anti-correlated regional peaks better than "
      "dedicated splits",
      defaults);

  const orbit::TimeGrid grid = scenario.grid();
  net::DiurnalProfile profile;
  profile.base_bps = 30e6;
  profile.peak_bps = 150e6;

  const double lon_tokyo = util::deg_to_rad(139.65);
  const double lon_nyc = util::deg_to_rad(-74.01);

  std::vector<double> tokyo(grid.count), nyc(grid.count), combined(grid.count);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const orbit::TimePoint t = grid.at(i);
    tokyo[i] = net::diurnal_demand_bps(profile, t, lon_tokyo);
    nyc[i] = net::diurnal_demand_bps(profile, t, lon_nyc);
    combined[i] = tokyo[i] + nyc[i];
  }

  util::Table table({"total capacity (Mbps)", "dedicated delivered %",
                     "shared delivered %", "dedicated mean delay",
                     "shared mean delay"});
  net::QueueConfig queue_cfg;
  queue_cfg.buffer_bytes = 256e6;

  for (const double capacity_mbps : {120.0, 160.0, 200.0, 260.0}) {
    // Dedicated: each region gets half the pool.
    const std::vector<double> half(grid.count, capacity_mbps / 2.0 * 1e6);
    const net::QueueStats ded_tokyo =
        net::simulate_fifo_queue(tokyo, half, grid.step_seconds, queue_cfg);
    const net::QueueStats ded_nyc =
        net::simulate_fifo_queue(nyc, half, grid.step_seconds, queue_cfg);
    const double ded_delivered =
        (ded_tokyo.delivered_bytes + ded_nyc.delivered_bytes) /
        (ded_tokyo.offered_bytes + ded_nyc.offered_bytes);
    const double ded_delay =
        (ded_tokyo.mean_delay_s + ded_nyc.mean_delay_s) / 2.0;

    // Shared: one pool carries both regions.
    const std::vector<double> full(grid.count, capacity_mbps * 1e6);
    const net::QueueStats shared =
        net::simulate_fifo_queue(combined, full, grid.step_seconds, queue_cfg);

    table.add_row({util::Table::num(capacity_mbps, 0),
                   util::Table::pct(ded_delivered),
                   util::Table::pct(shared.delivery_fraction()),
                   util::Table::num(ded_delay, 1) + " s",
                   util::Table::num(shared.mean_delay_s, 1) + " s"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nTokyo's 8 pm peak is ~6 am in New York: the shared pool rides the\n"
              "anti-correlation, the dedicated split cannot — the traffic-side\n"
              "version of the paper's idle-satellite argument.\n");
  return 0;
}
