// Figure 6: coverage reduction when the LARGEST party of an 11-party,
// 1000-satellite MP-LEO constellation denies service, as the contribution
// ratio is skewed from 1:1:...:1 to 10:1:...:1.
//
// Paper anchors: equal contributions (91 satellites each) minimize the loss;
// at 10:1 (500 + 10x50) the loss is ~5.5% of weighted coverage (~10 h/week),
// but the network remains serviceable.
#include "bench_common.hpp"
#include "core/robustness.hpp"
#include "util/stats.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  const sim::Scenario scenario = bench::start(
      argc, argv, "Fig 6: largest party of 11 withdraws (1000 sats)",
      "equal split -> minimal loss; 10:1 skew -> ~5.5% loss (~10h/week)");
  bench::Experiment exp(scenario);

  constexpr std::size_t kTotal = 1000;
  constexpr std::size_t kOtherParties = 10;

  const std::vector<cov::GroundSite> sites =
      cov::sites_from_cities(cov::paper_cities());
  cov::VisibilityCache cache(exp.engine, exp.catalog, sites);
  util::Xoshiro256PlusPlus rng(scenario.seed);
  const double window = exp.engine.grid().duration_seconds();

  util::Table table({"ratio", "largest party sats", "coverage drop %", "lost time",
                     "coverage after"});

  for (std::size_t ratio = 1; ratio <= 10; ++ratio) {
    const auto sizes = core::partition_by_ratio(kTotal, ratio, kOtherParties);
    util::RunningStats drop, after_stat;
    for (std::size_t run = 0; run < scenario.runs; ++run) {
      util::Xoshiro256PlusPlus run_rng = rng.split(ratio * 104729 + run);
      const auto base =
          constellation::sample_indices(exp.catalog.size(), kTotal, run_rng);
      const auto parties = core::assign_to_parties(base, sizes);

      const core::WithdrawalImpact impact =
          core::withdrawal_impact(cache, base, parties.front());
      drop.add(impact.drop_fraction());
      after_stat.add(impact.after_fraction);
    }
    table.add_row({std::to_string(ratio) + ":1", std::to_string(sizes.front()),
                   util::Table::pct(drop.mean()), bench::hours(drop.mean() * window),
                   util::Table::pct(after_stat.mean())});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
