// Simulator micro-benchmarks (google-benchmark): the hot paths every figure
// rides on — Kepler solves, propagation, per-step visibility, mask algebra.
//
// Besides the google-benchmark suite, `perf_simulator --compare` runs the
// scalar-vs-batched pipeline comparison on the canonical 500-satellite x
// 100-site x 1-day/60s workload, verifies the batched masks are
// bit-identical to the scalar reference, and writes a machine-readable JSON
// report (default BENCH_perf_simulator.json; override with --out=PATH).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "constellation/starlink.hpp"
#include "core/mpleo.hpp"
#include "util/thread_pool.hpp"

using namespace mpleo;

namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

void BM_KeplerSolve(benchmark::State& state) {
  const double e = static_cast<double>(state.range(0)) / 100.0;
  double m = 0.0;
  for (auto _ : state) {
    m += 0.1;
    benchmark::DoNotOptimize(orbit::solve_kepler(m, e));
  }
}
BENCHMARK(BM_KeplerSolve)->Arg(0)->Arg(10)->Arg(70);

void BM_PropagateState(benchmark::State& state) {
  const orbit::KeplerianPropagator prop(
      orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0), kEpoch);
  double dt = 0.0;
  for (auto _ : state) {
    dt += 60.0;
    benchmark::DoNotOptimize(prop.state_at_offset(dt));
  }
}
BENCHMARK(BM_PropagateState);

void BM_GmstTableWeek(benchmark::State& state) {
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch, 7.0 * 86400.0, 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::GmstTable::for_grid(grid));
  }
}
BENCHMARK(BM_GmstTableWeek);

void BM_VisibilityMaskWeek(benchmark::State& state) {
  // One satellite against N sites over a one-week 60 s grid — the inner loop
  // of every coverage experiment (batched ephemeris-table path).
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch, 7.0 * 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0);
  sat.epoch = kEpoch;
  const auto all = cov::sites_from_cities(cov::paper_cities());
  const std::vector<cov::GroundSite> sites(all.begin(),
                                           all.begin() + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.visibility_masks(sat, sites));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.count));
}
BENCHMARK(BM_VisibilityMaskWeek)->Arg(1)->Arg(21);

void BM_VisibilityMaskWeekReference(benchmark::State& state) {
  // The exhaustive scalar scan the batched kernel is measured against.
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch, 7.0 * 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0);
  sat.epoch = kEpoch;
  const auto all = cov::sites_from_cities(cov::paper_cities());
  const std::vector<cov::GroundSite> sites(all.begin(),
                                           all.begin() + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.visibility_masks_reference(sat, sites));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.count));
}
BENCHMARK(BM_VisibilityMaskWeekReference)->Arg(1)->Arg(21);

void BM_EphemerisTableDay(benchmark::State& state) {
  // One satellite propagated into a shared table over a 1-day/60s grid.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0);
  const orbit::GmstTable gmst = orbit::GmstTable::for_grid(grid);
  const orbit::KeplerianPropagator prop(
      orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0), kEpoch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::EphemerisTable::compute(prop, grid, gmst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.count));
}
BENCHMARK(BM_EphemerisTableDay);

void BM_EphemerisSetDay(benchmark::State& state) {
  // A whole catalog of tables; Arg is the satellite count. Thread count 1
  // (serial) vs hardware (shared pool) via the second Arg.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0);
  const orbit::GmstTable gmst = orbit::GmstTable::for_grid(grid);
  constellation::WalkerShell shell;
  shell.plane_count = 10;
  shell.sats_per_plane = 10;
  const auto sats = shell.build(kEpoch);
  const std::vector<orbit::EphemerisSpec> specs = cov::ephemeris_specs(sats);
  util::ThreadPool* pool = state.range(0) == 0 ? nullptr : &util::ThreadPool::shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::EphemerisSet::compute(specs, grid, gmst, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(specs.size() * grid.count));
}
BENCHMARK(BM_EphemerisSetDay)->Arg(0)->Arg(1);

void BM_MaskUnion1000(benchmark::State& state) {
  // Union of 1000 one-week masks — the Monte-Carlo subset operation.
  const std::size_t steps = 10081;
  util::Xoshiro256PlusPlus rng(1);
  std::vector<cov::StepMask> masks;
  masks.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    cov::StepMask m(steps);
    for (int k = 0; k < 60; ++k) {
      m.set(rng.uniform_index(steps));
    }
    masks.push_back(std::move(m));
  }
  for (auto _ : state) {
    cov::StepMask acc(steps);
    for (const auto& m : masks) acc |= m;
    benchmark::DoNotOptimize(acc.count());
  }
}
BENCHMARK(BM_MaskUnion1000);

void BM_IntervalSetInsert(benchmark::State& state) {
  util::Xoshiro256PlusPlus rng(2);
  for (auto _ : state) {
    cov::IntervalSet set;
    for (int i = 0; i < 200; ++i) {
      const double start = rng.uniform(0.0, 1e5);
      set.insert(start, start + rng.uniform(10.0, 500.0));
    }
    benchmark::DoNotOptimize(set.total_length());
  }
}
BENCHMARK(BM_IntervalSetInsert);

void BM_BuildStarlinkCatalog(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(constellation::build_starlink_catalog(kEpoch));
  }
}
BENCHMARK(BM_BuildStarlinkCatalog);

void BM_SchedulerStep(benchmark::State& state) {
  // One scheduling step: N satellites x 4 terminals x 4 stations.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<constellation::Satellite> sats(n);
  std::vector<util::Vec3> positions;
  for (std::size_t i = 0; i < n; ++i) {
    sats[i].owner_party = static_cast<std::uint32_t>(i % 4);
    positions.push_back(orbit::geodetic_to_ecef(orbit::Geodetic::from_degrees(
        10.0 + 0.3 * static_cast<double>(i % 40), 20.0, 550e3)));
  }
  std::vector<net::Terminal> terminals(4);
  std::vector<net::GroundStation> stations(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    terminals[i].id = i;
    terminals[i].owner_party = i;
    terminals[i].location = orbit::Geodetic::from_degrees(10.0 + i, 20.0 + i);
    terminals[i].radio = net::default_user_terminal();
    stations[i].id = i;
    stations[i].owner_party = i;
    stations[i].location = orbit::Geodetic::from_degrees(10.5 + i, 20.5 + i);
    stations[i].radio = net::default_ground_station();
  }
  const net::BentPipeScheduler scheduler(net::SchedulerConfig{}, sats, terminals,
                                         stations);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule_step(positions, 0));
  }
}
BENCHMARK(BM_SchedulerStep)->Arg(10)->Arg(100);

void BM_IslTopologyBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256PlusPlus rng(3);
  std::vector<util::Vec3> positions;
  for (std::size_t i = 0; i < n; ++i) {
    const util::Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
    positions.push_back(dir.normalized() * (util::kEarthMeanRadiusM + 550e3));
  }
  const net::IslConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::IslTopology::build(positions, cfg));
  }
}
BENCHMARK(BM_IslTopologyBuild)->Arg(100)->Arg(400);

void BM_ConjunctionScreen50(benchmark::State& state) {
  const auto sats = constellation::single_plane(550e3, 53.0, 0.0, 50, kEpoch);
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 6000.0, 30.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::screen_conjunctions(sats, grid, 50e3));
  }
}
BENCHMARK(BM_ConjunctionScreen50);

void BM_RelayBudget(benchmark::State& state) {
  const auto terminal = net::default_user_terminal();
  const auto transponder = net::default_transponder();
  const auto station = net::default_ground_station();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::compute_relay(terminal, transponder, station, 800e3,
                                                900e3, net::RelayMode::kTransparent));
  }
}
BENCHMARK(BM_RelayBudget);

// --compare: the acceptance workload. 500 satellites (Walker 25x20) against
// 100 ground sites over one day at 60 s steps, scalar reference vs the shared
// ephemeris kernel (serial and pooled). Masks must match bit-for-bit; the
// process exits non-zero if they do not, so CI can gate on it.
int run_compare(const std::string& out_path) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);

  constellation::WalkerShell shell;
  shell.plane_count = 25;
  shell.sats_per_plane = 20;
  const std::vector<constellation::Satellite> sats = shell.build(kEpoch);

  std::vector<cov::GroundSite> sites;
  sites.reserve(100);
  for (int i = 0; i < 100; ++i) {
    const double lat = -60.0 + 120.0 * static_cast<double>(i % 10) / 9.0;
    const double lon = -180.0 + 360.0 * static_cast<double>(i / 10) / 10.0;
    sites.push_back({"site-" + std::to_string(i),
                     orbit::TopocentricFrame(orbit::Geodetic::from_degrees(lat, lon)),
                     1.0});
  }

  const double sat_steps =
      static_cast<double>(sats.size()) * static_cast<double>(grid.count);
  using clock = std::chrono::steady_clock;

  // Scalar reference: propagate every (satellite, site, step) independently.
  auto t0 = clock::now();
  std::vector<std::vector<cov::StepMask>> reference;
  reference.reserve(sats.size());
  for (const constellation::Satellite& sat : sats) {
    reference.push_back(engine.visibility_masks_reference(sat, sites));
  }
  const double sec_reference = std::chrono::duration<double>(clock::now() - t0).count();

  // Batched serial: one shared ephemeris table per satellite, then masks.
  bool identical = true;
  t0 = clock::now();
  {
    const orbit::EphemerisSet set = engine.ephemerides(sats);
    for (std::size_t i = 0; i < sats.size(); ++i) {
      const std::vector<cov::StepMask> masks =
          engine.visibility_masks(set.table(i), sites);
      for (std::size_t j = 0; j < masks.size(); ++j) {
        if (!(masks[j] == reference[i][j])) identical = false;
      }
    }
  }
  const double sec_batched = std::chrono::duration<double>(clock::now() - t0).count();

  // Batched pooled: same pipeline with the ephemeris fill spread over threads.
  util::ThreadPool pool;
  t0 = clock::now();
  {
    const orbit::EphemerisSet set = engine.ephemerides(sats, &pool);
    for (std::size_t i = 0; i < sats.size(); ++i) {
      const std::vector<cov::StepMask> masks =
          engine.visibility_masks(set.table(i), sites);
      for (std::size_t j = 0; j < masks.size(); ++j) {
        if (!(masks[j] == reference[i][j])) identical = false;
      }
    }
  }
  const double sec_pooled = std::chrono::duration<double>(clock::now() - t0).count();

  const double thr_reference = sat_steps / sec_reference;
  const double thr_batched = sat_steps / sec_batched;
  const double thr_pooled = sat_steps / sec_pooled;

  std::printf("workload: %zu satellites x %zu sites x %zu steps (1 day / 60 s)\n",
              sats.size(), sites.size(), grid.count);
  std::printf("scalar reference : %8.3f s  %10.3e sat*steps/s\n", sec_reference,
              thr_reference);
  std::printf("batched (serial) : %8.3f s  %10.3e sat*steps/s  (%.2fx)\n", sec_batched,
              thr_batched, sec_reference / sec_batched);
  std::printf("batched (%2zu thr) : %8.3f s  %10.3e sat*steps/s  (%.2fx)\n",
              pool.thread_count(), sec_pooled, thr_pooled, sec_reference / sec_pooled);
  std::printf("masks bit-identical: %s\n", identical ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "perf_simulator: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": {\"satellites\": %zu, \"sites\": %zu, \"steps\": %zu,"
               " \"step_seconds\": 60.0},\n"
               "  \"threads\": %zu,\n"
               "  \"scalar_reference\": {\"seconds\": %.6f, \"sat_steps_per_sec\": %.6e},\n"
               "  \"batched_serial\": {\"seconds\": %.6f, \"sat_steps_per_sec\": %.6e,"
               " \"speedup\": %.4f},\n"
               "  \"batched_pooled\": {\"seconds\": %.6f, \"sat_steps_per_sec\": %.6e,"
               " \"speedup\": %.4f},\n"
               "  \"masks_identical\": %s\n"
               "}\n",
               sats.size(), sites.size(), grid.count, pool.thread_count(),
               sec_reference, thr_reference, sec_batched, thr_batched,
               sec_reference / sec_batched, sec_pooled, thr_pooled,
               sec_reference / sec_pooled, identical ? "true" : "false");
  std::fclose(out);
  std::printf("report written to %s\n", out_path.c_str());
  return identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool compare = false;
  std::string out_path = "BENCH_perf_simulator.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare") == 0) {
      compare = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (compare) return run_compare(out_path);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
