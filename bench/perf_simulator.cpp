// Simulator micro-benchmarks (google-benchmark): the hot paths every figure
// rides on — Kepler solves, propagation, per-step visibility, mask algebra.
#include <benchmark/benchmark.h>

#include "constellation/starlink.hpp"
#include "core/mpleo.hpp"

using namespace mpleo;

namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

void BM_KeplerSolve(benchmark::State& state) {
  const double e = static_cast<double>(state.range(0)) / 100.0;
  double m = 0.0;
  for (auto _ : state) {
    m += 0.1;
    benchmark::DoNotOptimize(orbit::solve_kepler(m, e));
  }
}
BENCHMARK(BM_KeplerSolve)->Arg(0)->Arg(10)->Arg(70);

void BM_PropagateState(benchmark::State& state) {
  const orbit::KeplerianPropagator prop(
      orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0), kEpoch);
  double dt = 0.0;
  for (auto _ : state) {
    dt += 60.0;
    benchmark::DoNotOptimize(prop.state_at_offset(dt));
  }
}
BENCHMARK(BM_PropagateState);

void BM_GmstTableWeek(benchmark::State& state) {
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch, 7.0 * 86400.0, 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::GmstTable::for_grid(grid));
  }
}
BENCHMARK(BM_GmstTableWeek);

void BM_VisibilityMaskWeek(benchmark::State& state) {
  // One satellite against N sites over a one-week 60 s grid — the inner loop
  // of every coverage experiment.
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch, 7.0 * 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0);
  sat.epoch = kEpoch;
  const auto all = cov::sites_from_cities(cov::paper_cities());
  const std::vector<cov::GroundSite> sites(all.begin(),
                                           all.begin() + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.visibility_masks(sat, sites));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.count));
}
BENCHMARK(BM_VisibilityMaskWeek)->Arg(1)->Arg(21);

void BM_MaskUnion1000(benchmark::State& state) {
  // Union of 1000 one-week masks — the Monte-Carlo subset operation.
  const std::size_t steps = 10081;
  util::Xoshiro256PlusPlus rng(1);
  std::vector<cov::StepMask> masks;
  masks.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    cov::StepMask m(steps);
    for (int k = 0; k < 60; ++k) {
      m.set(rng.uniform_index(steps));
    }
    masks.push_back(std::move(m));
  }
  for (auto _ : state) {
    cov::StepMask acc(steps);
    for (const auto& m : masks) acc |= m;
    benchmark::DoNotOptimize(acc.count());
  }
}
BENCHMARK(BM_MaskUnion1000);

void BM_IntervalSetInsert(benchmark::State& state) {
  util::Xoshiro256PlusPlus rng(2);
  for (auto _ : state) {
    cov::IntervalSet set;
    for (int i = 0; i < 200; ++i) {
      const double start = rng.uniform(0.0, 1e5);
      set.insert(start, start + rng.uniform(10.0, 500.0));
    }
    benchmark::DoNotOptimize(set.total_length());
  }
}
BENCHMARK(BM_IntervalSetInsert);

void BM_BuildStarlinkCatalog(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(constellation::build_starlink_catalog(kEpoch));
  }
}
BENCHMARK(BM_BuildStarlinkCatalog);

void BM_SchedulerStep(benchmark::State& state) {
  // One scheduling step: N satellites x 4 terminals x 4 stations.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<constellation::Satellite> sats(n);
  std::vector<util::Vec3> positions;
  for (std::size_t i = 0; i < n; ++i) {
    sats[i].owner_party = static_cast<std::uint32_t>(i % 4);
    positions.push_back(orbit::geodetic_to_ecef(orbit::Geodetic::from_degrees(
        10.0 + 0.3 * static_cast<double>(i % 40), 20.0, 550e3)));
  }
  std::vector<net::Terminal> terminals(4);
  std::vector<net::GroundStation> stations(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    terminals[i].id = i;
    terminals[i].owner_party = i;
    terminals[i].location = orbit::Geodetic::from_degrees(10.0 + i, 20.0 + i);
    terminals[i].radio = net::default_user_terminal();
    stations[i].id = i;
    stations[i].owner_party = i;
    stations[i].location = orbit::Geodetic::from_degrees(10.5 + i, 20.5 + i);
    stations[i].radio = net::default_ground_station();
  }
  const net::BentPipeScheduler scheduler(net::SchedulerConfig{}, sats, terminals,
                                         stations);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule_step(positions, 0));
  }
}
BENCHMARK(BM_SchedulerStep)->Arg(10)->Arg(100);

void BM_IslTopologyBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256PlusPlus rng(3);
  std::vector<util::Vec3> positions;
  for (std::size_t i = 0; i < n; ++i) {
    const util::Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
    positions.push_back(dir.normalized() * (util::kEarthMeanRadiusM + 550e3));
  }
  const net::IslConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::IslTopology::build(positions, cfg));
  }
}
BENCHMARK(BM_IslTopologyBuild)->Arg(100)->Arg(400);

void BM_ConjunctionScreen50(benchmark::State& state) {
  const auto sats = constellation::single_plane(550e3, 53.0, 0.0, 50, kEpoch);
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 6000.0, 30.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::screen_conjunctions(sats, grid, 50e3));
  }
}
BENCHMARK(BM_ConjunctionScreen50);

void BM_RelayBudget(benchmark::State& state) {
  const auto terminal = net::default_user_terminal();
  const auto transponder = net::default_transponder();
  const auto station = net::default_ground_station();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::compute_relay(terminal, transponder, station, 800e3,
                                                900e3, net::RelayMode::kTransparent));
  }
}
BENCHMARK(BM_RelayBudget);

}  // namespace

BENCHMARK_MAIN();
