// Simulator micro-benchmarks (google-benchmark): the hot paths every figure
// rides on — Kepler solves, propagation, per-step visibility, mask algebra.
//
// Besides the google-benchmark suite, two acceptance modes write a
// machine-readable JSON report (default BENCH_perf_simulator.json; override
// with --out=PATH) and exit non-zero on any bit-identity mismatch:
//
//   --compare            scalar-vs-batched visibility on the canonical
//                        500-satellite x 100-site x 1-day/60s workload
//   --compare-scheduler  run_reference vs the two-phase pipelined scheduler
//                        on 500 satellites x 200 terminals x 20 stations x
//                        1 day/60s across 4 parties, plus a faulted run
//   --backends           per-backend ephemeris fill throughput (J2 scalar,
//                        J2 lane-batched SIMD, SGP4) plus the lane-batched
//                        bit-identity check and the cross-backend
//                        position-error report (the accuracy gate)
//
// All three may be passed together; the report then carries every section.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#if defined(__unix__)
#include <sys/resource.h>
#endif

#include "bench_common.hpp"
#include "constellation/population.hpp"
#include "constellation/starlink.hpp"
#include "core/mpleo.hpp"
#include "orbit/simd.hpp"
#include "sim/workload.hpp"
#include "util/thread_pool.hpp"

using namespace mpleo;

namespace {

const orbit::TimePoint kEpoch = orbit::TimePoint::from_iso8601("2024-11-18T00:00:00Z");

void BM_KeplerSolve(benchmark::State& state) {
  const double e = static_cast<double>(state.range(0)) / 100.0;
  double m = 0.0;
  for (auto _ : state) {
    m += 0.1;
    benchmark::DoNotOptimize(orbit::solve_kepler(m, e));
  }
}
BENCHMARK(BM_KeplerSolve)->Arg(0)->Arg(10)->Arg(70);

void BM_PropagateState(benchmark::State& state) {
  const orbit::KeplerianPropagator prop(
      orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0), kEpoch);
  double dt = 0.0;
  for (auto _ : state) {
    dt += 60.0;
    benchmark::DoNotOptimize(prop.state_at_offset(dt));
  }
}
BENCHMARK(BM_PropagateState);

void BM_GmstTableWeek(benchmark::State& state) {
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch, 7.0 * 86400.0, 60.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::GmstTable::for_grid(grid));
  }
}
BENCHMARK(BM_GmstTableWeek);

void BM_VisibilityMaskWeek(benchmark::State& state) {
  // One satellite against N sites over a one-week 60 s grid — the inner loop
  // of every coverage experiment (batched ephemeris-table path).
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch, 7.0 * 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0);
  sat.epoch = kEpoch;
  const auto all = cov::sites_from_cities(cov::paper_cities());
  const std::vector<cov::GroundSite> sites(all.begin(),
                                           all.begin() + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.visibility_masks(sat, sites));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.count));
}
BENCHMARK(BM_VisibilityMaskWeek)->Arg(1)->Arg(21);

void BM_VisibilityMaskWeekReference(benchmark::State& state) {
  // The exhaustive scalar scan the batched kernel is measured against.
  const orbit::TimeGrid grid =
      orbit::TimeGrid::over_duration(kEpoch, 7.0 * 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);
  constellation::Satellite sat;
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0);
  sat.epoch = kEpoch;
  const auto all = cov::sites_from_cities(cov::paper_cities());
  const std::vector<cov::GroundSite> sites(all.begin(),
                                           all.begin() + state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.visibility_masks_reference(sat, sites));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.count));
}
BENCHMARK(BM_VisibilityMaskWeekReference)->Arg(1)->Arg(21);

void BM_EphemerisTableDay(benchmark::State& state) {
  // One satellite propagated into a shared table over a 1-day/60s grid.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0);
  const orbit::GmstTable gmst = orbit::GmstTable::for_grid(grid);
  const orbit::KeplerianPropagator prop(
      orbit::ClassicalElements::circular(550e3, 53.0, 10.0, 20.0), kEpoch);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::EphemerisTable::compute(prop, grid, gmst));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(grid.count));
}
BENCHMARK(BM_EphemerisTableDay);

void BM_EphemerisSetDay(benchmark::State& state) {
  // A whole catalog of tables; Arg is the satellite count. Thread count 1
  // (serial) vs hardware (shared pool) via the second Arg.
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0);
  const orbit::GmstTable gmst = orbit::GmstTable::for_grid(grid);
  constellation::WalkerShell shell;
  shell.plane_count = 10;
  shell.sats_per_plane = 10;
  const auto sats = shell.build(kEpoch);
  const std::vector<orbit::EphemerisSpec> specs = cov::ephemeris_specs(sats);
  util::ThreadPool* pool = state.range(0) == 0 ? nullptr : &util::ThreadPool::shared();
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::EphemerisSet::compute(specs, grid, gmst, pool));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(specs.size() * grid.count));
}
BENCHMARK(BM_EphemerisSetDay)->Arg(0)->Arg(1);

void BM_MaskUnion1000(benchmark::State& state) {
  // Union of 1000 one-week masks — the Monte-Carlo subset operation.
  const std::size_t steps = 10081;
  util::Xoshiro256PlusPlus rng(1);
  std::vector<cov::StepMask> masks;
  masks.reserve(1000);
  for (int i = 0; i < 1000; ++i) {
    cov::StepMask m(steps);
    for (int k = 0; k < 60; ++k) {
      m.set(rng.uniform_index(steps));
    }
    masks.push_back(std::move(m));
  }
  for (auto _ : state) {
    cov::StepMask acc(steps);
    for (const auto& m : masks) acc |= m;
    benchmark::DoNotOptimize(acc.count());
  }
}
BENCHMARK(BM_MaskUnion1000);

void BM_IntervalSetInsert(benchmark::State& state) {
  util::Xoshiro256PlusPlus rng(2);
  for (auto _ : state) {
    cov::IntervalSet set;
    for (int i = 0; i < 200; ++i) {
      const double start = rng.uniform(0.0, 1e5);
      set.insert(start, start + rng.uniform(10.0, 500.0));
    }
    benchmark::DoNotOptimize(set.total_length());
  }
}
BENCHMARK(BM_IntervalSetInsert);

void BM_BuildStarlinkCatalog(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(constellation::build_starlink_catalog(kEpoch));
  }
}
BENCHMARK(BM_BuildStarlinkCatalog);

void BM_SchedulerStep(benchmark::State& state) {
  // One scheduling step: N satellites x 4 terminals x 4 stations.
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<constellation::Satellite> sats(n);
  std::vector<util::Vec3> positions;
  for (std::size_t i = 0; i < n; ++i) {
    sats[i].owner_party = static_cast<std::uint32_t>(i % 4);
    positions.push_back(orbit::geodetic_to_ecef(orbit::Geodetic::from_degrees(
        10.0 + 0.3 * static_cast<double>(i % 40), 20.0, 550e3)));
  }
  std::vector<net::Terminal> terminals(4);
  std::vector<net::GroundStation> stations(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    terminals[i].id = i;
    terminals[i].owner_party = i;
    terminals[i].location = orbit::Geodetic::from_degrees(10.0 + i, 20.0 + i);
    terminals[i].radio = net::default_user_terminal();
    stations[i].id = i;
    stations[i].owner_party = i;
    stations[i].location = orbit::Geodetic::from_degrees(10.5 + i, 20.5 + i);
    stations[i].radio = net::default_ground_station();
  }
  const net::BentPipeScheduler scheduler(net::SchedulerConfig{}, sats, terminals,
                                         stations);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.schedule_step(positions, 0));
  }
}
BENCHMARK(BM_SchedulerStep)->Arg(10)->Arg(100);

void BM_IslTopologyBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256PlusPlus rng(3);
  std::vector<util::Vec3> positions;
  for (std::size_t i = 0; i < n; ++i) {
    const util::Vec3 dir{rng.normal(), rng.normal(), rng.normal()};
    positions.push_back(dir.normalized() * (util::kEarthMeanRadiusM + 550e3));
  }
  const net::IslConfig cfg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::IslTopology::build(positions, cfg));
  }
}
BENCHMARK(BM_IslTopologyBuild)->Arg(100)->Arg(400);

void BM_ConjunctionScreen50(benchmark::State& state) {
  const auto sats = constellation::single_plane(550e3, 53.0, 0.0, 50, kEpoch);
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 6000.0, 30.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orbit::screen_conjunctions(sats, grid, 50e3));
  }
}
BENCHMARK(BM_ConjunctionScreen50);

void BM_RelayBudget(benchmark::State& state) {
  const auto terminal = net::default_user_terminal();
  const auto transponder = net::default_transponder();
  const auto station = net::default_ground_station();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::compute_relay(terminal, transponder, station, 800e3,
                                                900e3, net::RelayMode::kTransparent));
  }
}
BENCHMARK(BM_RelayBudget);

// --compare: the acceptance workload. 500 satellites (Walker 25x20) against
// 100 ground sites over one day at 60 s steps, scalar reference vs the shared
// ephemeris kernel (serial and pooled). Masks must match bit-for-bit; the
// process exits non-zero if they do not, so CI can gate on it. Writes its
// JSON object (fields only, no braces) into `out`; returns false on mismatch.
bool run_compare(std::FILE* out) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0);
  const cov::CoverageEngine engine(grid, 25.0);

  constellation::WalkerShell shell;
  shell.plane_count = 25;
  shell.sats_per_plane = 20;
  const std::vector<constellation::Satellite> sats = shell.build(kEpoch);

  std::vector<cov::GroundSite> sites;
  sites.reserve(100);
  for (int i = 0; i < 100; ++i) {
    const double lat = -60.0 + 120.0 * static_cast<double>(i % 10) / 9.0;
    const double lon = -180.0 + 360.0 * static_cast<double>(i / 10) / 10.0;
    sites.push_back({"site-" + std::to_string(i),
                     orbit::TopocentricFrame(orbit::Geodetic::from_degrees(lat, lon)),
                     1.0});
  }

  const double sat_steps =
      static_cast<double>(sats.size()) * static_cast<double>(grid.count);
  using clock = std::chrono::steady_clock;

  // Scalar reference: propagate every (satellite, site, step) independently.
  auto t0 = clock::now();
  std::vector<std::vector<cov::StepMask>> reference;
  reference.reserve(sats.size());
  for (const constellation::Satellite& sat : sats) {
    reference.push_back(engine.visibility_masks_reference(sat, sites));
  }
  const double sec_reference = std::chrono::duration<double>(clock::now() - t0).count();

  // Batched serial: one shared ephemeris table per satellite, then masks.
  bool identical = true;
  t0 = clock::now();
  {
    const orbit::EphemerisSet set = engine.ephemerides(sats);
    for (std::size_t i = 0; i < sats.size(); ++i) {
      const std::vector<cov::StepMask> masks =
          engine.visibility_masks(set.table(i), sites);
      for (std::size_t j = 0; j < masks.size(); ++j) {
        if (!(masks[j] == reference[i][j])) identical = false;
      }
    }
  }
  const double sec_batched = std::chrono::duration<double>(clock::now() - t0).count();

  // Batched pooled: same pipeline with the ephemeris fill spread over threads.
  util::ThreadPool pool;
  t0 = clock::now();
  {
    const orbit::EphemerisSet set = engine.ephemerides(sats, &pool);
    for (std::size_t i = 0; i < sats.size(); ++i) {
      const std::vector<cov::StepMask> masks =
          engine.visibility_masks(set.table(i), sites);
      for (std::size_t j = 0; j < masks.size(); ++j) {
        if (!(masks[j] == reference[i][j])) identical = false;
      }
    }
  }
  const double sec_pooled = std::chrono::duration<double>(clock::now() - t0).count();

  const double thr_reference = sat_steps / sec_reference;
  const double thr_batched = sat_steps / sec_batched;
  const double thr_pooled = sat_steps / sec_pooled;

  std::printf("workload: %zu satellites x %zu sites x %zu steps (1 day / 60 s)\n",
              sats.size(), sites.size(), grid.count);
  std::printf("scalar reference : %8.3f s  %10.3e sat*steps/s\n", sec_reference,
              thr_reference);
  std::printf("batched (serial) : %8.3f s  %10.3e sat*steps/s  (%.2fx)\n", sec_batched,
              thr_batched, sec_reference / sec_batched);
  std::printf("batched (%2zu thr) : %8.3f s  %10.3e sat*steps/s  (%.2fx)\n",
              pool.thread_count(), sec_pooled, thr_pooled, sec_reference / sec_pooled);
  std::printf("masks bit-identical: %s\n", identical ? "yes" : "NO");

  std::fprintf(out,
               "  \"ephemeris_compare\": {\n"
               "    \"workload\": {\"satellites\": %zu, \"sites\": %zu, \"steps\": %zu,"
               " \"step_seconds\": 60.0},\n"
               "    \"threads\": %zu,\n"
               "    \"scalar_reference\": {\"seconds\": %.6f, \"sat_steps_per_sec\": %.6e},\n"
               "    \"batched_serial\": {\"seconds\": %.6f, \"sat_steps_per_sec\": %.6e,"
               " \"speedup\": %.4f},\n"
               "    \"batched_pooled\": {\"seconds\": %.6f, \"sat_steps_per_sec\": %.6e,"
               " \"speedup\": %.4f},\n"
               "    \"masks_identical\": %s\n"
               "  }",
               sats.size(), sites.size(), grid.count, pool.thread_count(),
               sec_reference, thr_reference, sec_batched, thr_batched,
               sec_reference / sec_batched, sec_pooled, thr_pooled,
               sec_reference / sec_pooled, identical ? "true" : "false");
  return identical;
}

// --compare-scheduler: the scheduling acceptance workload. 500 satellites
// (Walker 25x20) split across 4 parties, 200 user terminals, 20 ground
// stations, one day at 60 s steps. The scalar reference (run_reference, the
// pre-pipeline per-step joint scan) races the two-phase pipelined run()
// serially and pooled; every ScheduleResult must match the reference bit for
// bit, down to link ordering, and a faulted run over a shorter grid pins the
// degraded-operations contract too. Returns false on any identity mismatch.
//
// The pooled and faulted runs go through `context` (which owns the worker
// pool), so phase timings, candidate occupancy, beam rejections and
// fault-forced detaches accumulate in its metrics registry; main() appends
// them to the JSON report as the "obs" section.
bool run_compare_scheduler(std::FILE* out, sim::RunContext& context) {
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0);

  // The reference workload comes from the same Scenario scale-preset builder
  // the mega runs use, so the 500-sat acceptance fleet is defined in exactly
  // one place (sim::build_workload).
  const sim::Scenario ref_scenario = sim::ScenarioBuilder()
                                         .epoch(kEpoch)
                                         .scale(sim::ScalePreset::kReference)
                                         .build();
  const sim::Workload workload = sim::build_workload(ref_scenario);
  const std::size_t kParties = workload.party_count;
  const std::vector<constellation::Satellite>& sats = workload.satellites;
  const std::vector<net::Terminal>& terminals = workload.terminals;
  const std::vector<net::GroundStation>& stations = workload.stations;

  const net::BentPipeScheduler scheduler(workload.scheduler, sats, terminals,
                                         stations);
  using clock = std::chrono::steady_clock;

  // Best of three repetitions per variant: the workload runs in fractions of
  // a second, so a single sample would fold scheduler noise into the speedup
  // the CI regression gate keys on.
  constexpr int kRepeats = 5;
  const auto timed = [&](auto&& invoke) {
    double best = 0.0;
    net::ScheduleResult result;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const auto t0 = clock::now();
      result = invoke();
      const double sec = std::chrono::duration<double>(clock::now() - t0).count();
      if (rep == 0 || sec < best) best = sec;
    }
    return std::pair{std::move(result), best};
  };

  const auto [reference, sec_reference] = timed(
      [&] { return scheduler.run_reference(grid, kParties, nullptr, /*keep_steps=*/true); });
  const auto [serial, sec_serial] =
      timed([&] { return scheduler.run(grid, kParties, /*keep_steps=*/true); });
  const auto [pooled, sec_pooled] = timed(
      [&] { return scheduler.run(grid, kParties, context, /*keep_steps=*/true); });

  const bool identical = serial == reference && pooled == reference;

  // Footprint-stream phase 1 (no pair masks, spatial-index candidate
  // discovery, uncapped) against the same reference: with
  // max_candidates_per_terminal == 0 the streamed path is exact, so the full
  // ScheduleResult — link ordering included — must match bit for bit.
  net::SchedulerConfig streamed_config;
  streamed_config.visibility_mode = net::VisibilityMode::kFootprintStream;
  const net::BentPipeScheduler streamed_scheduler(streamed_config, sats, terminals,
                                                  stations);
  const auto [streamed, sec_streamed] = timed(
      [&] { return streamed_scheduler.run(grid, kParties, context, /*keep_steps=*/true); });
  const bool streamed_identical = streamed == reference;

  // Faulted identity on a 6 h sub-grid: outages, degradations, and station
  // faults exercise the detach/backoff path through both schedulers.
  const orbit::TimeGrid fault_grid =
      orbit::TimeGrid::over_duration(kEpoch, 6.0 * 3600.0, 60.0);
  fault::FaultTimeline faults(fault_grid, sats.size(), stations.size());
  for (std::size_t si = 0; si < sats.size(); si += 7) {
    const double start = static_cast<double>(si % 11) * 1800.0;
    faults.add_satellite_outage(si, start, start + 3600.0);
  }
  for (std::size_t si = 3; si < sats.size(); si += 9) {
    const double start = static_cast<double>(si % 13) * 1200.0;
    faults.add_transponder_degradation(si, start, start + 5400.0, 0.5);
  }
  for (std::size_t gi = 0; gi < stations.size(); gi += 3) {
    faults.add_station_outage(gi, 3600.0 * static_cast<double>(gi % 4), 3600.0 * 5.0);
  }
  context.use_faults(&faults);
  const net::ScheduleResult faulted_reference =
      scheduler.run_reference(fault_grid, kParties, &faults, /*keep_steps=*/true);
  const bool faulted_identical =
      scheduler.run(fault_grid, kParties, context, /*keep_steps=*/true) ==
      faulted_reference;
  const bool streamed_faulted_identical =
      streamed_scheduler.run(fault_grid, kParties, context, /*keep_steps=*/true) ==
      faulted_reference;
  context.clear_faults();

  std::printf(
      "scheduler workload: %zu satellites x %zu terminals x %zu stations"
      " x %zu steps (1 day / 60 s, %zu parties)\n",
      sats.size(), terminals.size(), stations.size(), grid.count, kParties);
  std::printf("scalar reference    : %8.3f s\n", sec_reference);
  std::printf("pipelined (serial)  : %8.3f s  (%.2fx)\n", sec_serial,
              sec_reference / sec_serial);
  std::printf("pipelined (%2zu thr)  : %8.3f s  (%.2fx)\n", context.thread_count(),
              sec_pooled, sec_reference / sec_pooled);
  std::printf("streamed  (%2zu thr)  : %8.3f s  (%.2fx)\n", context.thread_count(),
              sec_streamed, sec_reference / sec_streamed);
  std::printf("schedules bit-identical: %s   faulted: %s   streamed: %s/%s\n",
              identical ? "yes" : "NO", faulted_identical ? "yes" : "NO",
              streamed_identical ? "yes" : "NO",
              streamed_faulted_identical ? "yes" : "NO");

  std::fprintf(out,
               "  \"scheduler_compare\": {\n"
               "    \"workload\": {\"satellites\": %zu, \"terminals\": %zu,"
               " \"stations\": %zu, \"parties\": %zu, \"steps\": %zu,"
               " \"step_seconds\": 60.0},\n"
               "    \"threads\": %zu,\n"
               "    \"scalar_reference\": {\"seconds\": %.6f},\n"
               "    \"pipelined_serial\": {\"seconds\": %.6f, \"speedup\": %.4f},\n"
               "    \"pipelined_pooled\": {\"seconds\": %.6f, \"speedup\": %.4f},\n"
               "    \"pipelined_streamed\": {\"seconds\": %.6f, \"speedup\": %.4f},\n"
               "    \"bit_identical\": %s,\n"
               "    \"faulted_bit_identical\": %s,\n"
               "    \"streamed_bit_identical\": %s\n"
               "  }",
               sats.size(), terminals.size(), stations.size(), kParties, grid.count,
               context.thread_count(), sec_reference, sec_serial,
               sec_reference / sec_serial, sec_pooled, sec_reference / sec_pooled,
               sec_streamed, sec_reference / sec_streamed,
               identical ? "true" : "false", faulted_identical ? "true" : "false",
               streamed_identical && streamed_faulted_identical ? "true" : "false");
  return identical && faulted_identical && streamed_identical &&
         streamed_faulted_identical;
}

// --backends: per-backend ephemeris-fill throughput on the canonical
// 500-satellite x 1-day/60s catalog — the pure EphemerisSet fill with no
// visibility work, so the number isolates the propagation kernel itself.
// Three variants run serially: the J2 analytic fill with the SIMD dispatch
// forced scalar, the same fill forced onto the AVX2 lane-batched kernel, and
// the SGP4 backend. The lane-batched tables must match the scalar tables
// bit for bit, and the SGP4-vs-J2 maximum position error must stay inside
// the documented one-day envelope (DESIGN.md §11). Returns false on a
// bit-identity or envelope violation.
bool run_compare_backends(std::FILE* out) {
  // Each timed fill allocates ~23 MB of tables and frees them before the
  // next repetition; without the trim guard every repetition would re-fault
  // every page and mostly time the kernel instead of the fill.
  bench::disable_malloc_trim();
  const orbit::TimeGrid grid = orbit::TimeGrid::over_duration(kEpoch, 86400.0, 60.0);
  const orbit::GmstTable gmst = orbit::GmstTable::for_grid(grid);

  constellation::WalkerShell shell;
  shell.plane_count = 25;
  shell.sats_per_plane = 20;
  const std::vector<constellation::Satellite> sats = shell.build(kEpoch);
  const std::vector<orbit::EphemerisSpec> j2_specs = cov::ephemeris_specs(sats);
  const std::vector<orbit::EphemerisSpec> sgp4_specs =
      cov::ephemeris_specs(sats, orbit::PropagatorBackend::kSgp4);

  const double sat_steps =
      static_cast<double>(sats.size()) * static_cast<double>(grid.count);
  using clock = std::chrono::steady_clock;

  // Best-of-N wall time for one serial fill; the first call's result is kept
  // for the identity/accuracy checks below.
  constexpr int kRepeats = 3;
  const auto timed_fill = [&](const std::vector<orbit::EphemerisSpec>& specs) {
    orbit::EphemerisSet set;
    double best = 0.0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      const auto t0 = clock::now();
      orbit::EphemerisSet current = orbit::EphemerisSet::compute(specs, grid, gmst);
      const double sec = std::chrono::duration<double>(clock::now() - t0).count();
      if (rep == 0) set = std::move(current);
      if (rep == 0 || sec < best) best = sec;
    }
    return std::pair{std::move(set), best};
  };

  const orbit::SimdMode initial_mode = orbit::active_simd_mode();
  orbit::force_simd_mode(orbit::SimdMode::kScalar);
  const auto [scalar_set, sec_scalar] = timed_fill(j2_specs);

  const bool have_avx2 = orbit::cpu_supports_avx2();
  orbit::force_simd_mode(have_avx2 ? orbit::SimdMode::kAvx2
                                   : orbit::SimdMode::kScalar);
  const auto [batched_set, sec_batched] = timed_fill(j2_specs);
  const auto [sgp4_set, sec_sgp4] = timed_fill(sgp4_specs);
  orbit::force_simd_mode(initial_mode);

  // Lane-batched J2 vs scalar J2: bit-identical, coordinate by coordinate.
  bool identical = true;
  for (std::size_t i = 0; i < sats.size() && identical; ++i) {
    const orbit::EphemerisTable& a = scalar_set.table(i);
    const orbit::EphemerisTable& b = batched_set.table(i);
    for (std::size_t k = 0; k < grid.count; ++k) {
      if (a.x()[k] != b.x()[k] || a.y()[k] != b.y()[k] || a.z()[k] != b.z()[k] ||
          a.radius_m()[k] != b.radius_m()[k]) {
        identical = false;
        break;
      }
    }
  }

  // Cross-backend accuracy: max |r_sgp4 - r_j2| over every satellite and
  // step of the day. Dominated by the Kozai vs un-Kozai mean-motion
  // conventions (see DESIGN.md §11); the envelope matches the
  // backend-property test's documented worst case.
  constexpr double kEnvelopeM = 1500e3;
  double max_error_m = 0.0;
  bool sgp4_ran = true;
  for (std::size_t i = 0; i < sats.size(); ++i) {
    if (sgp4_set.backend(i) != orbit::PropagatorBackend::kSgp4) sgp4_ran = false;
    for (std::size_t k = 0; k < grid.count; ++k) {
      const util::Vec3 d =
          scalar_set.table(i).position_ecef(k) - sgp4_set.table(i).position_ecef(k);
      max_error_m = std::max(max_error_m, d.norm());
    }
  }
  const bool within_envelope = sgp4_ran && max_error_m < kEnvelopeM;

  const double thr_scalar = sat_steps / sec_scalar;
  const double thr_batched = sat_steps / sec_batched;
  const double thr_sgp4 = sat_steps / sec_sgp4;

  std::printf("backend workload: %zu satellites x %zu steps (1 day / 60 s)\n",
              sats.size(), grid.count);
  std::printf("j2 scalar fill   : %8.3f s  %10.3e sat*steps/s\n", sec_scalar,
              thr_scalar);
  std::printf("j2 batched (%s): %8.3f s  %10.3e sat*steps/s  (%.2fx)\n",
              have_avx2 ? "avx2" : "none", sec_batched, thr_batched,
              sec_scalar / sec_batched);
  std::printf("sgp4 fill        : %8.3f s  %10.3e sat*steps/s\n", sec_sgp4, thr_sgp4);
  std::printf("batched bit-identical: %s\n", identical ? "yes" : "NO");
  std::printf("sgp4 vs j2 max error : %.3f km over 1 day (envelope %.0f km): %s\n",
              max_error_m / 1e3, kEnvelopeM / 1e3,
              within_envelope ? "within" : "EXCEEDED");

  std::fprintf(out,
               "  \"backend_compare\": {\n"
               "    \"workload\": {\"satellites\": %zu, \"steps\": %zu,"
               " \"step_seconds\": 60.0},\n"
               "    \"simd\": \"%s\",\n"
               "    \"j2_scalar\": {\"seconds\": %.6f, \"sat_steps_per_sec\": %.6e},\n"
               "    \"j2_batched\": {\"seconds\": %.6f, \"sat_steps_per_sec\": %.6e,"
               " \"speedup\": %.4f},\n"
               "    \"sgp4\": {\"seconds\": %.6f, \"sat_steps_per_sec\": %.6e},\n"
               "    \"batched_bit_identical\": %s,\n"
               "    \"cross_backend\": {\"max_error_m\": %.3f, \"envelope_m\": %.1f,"
               " \"within_envelope\": %s}\n"
               "  }",
               sats.size(), grid.count, have_avx2 ? "avx2" : "scalar", sec_scalar,
               thr_scalar, sec_batched, thr_batched, sec_scalar / sec_batched,
               sec_sgp4, thr_sgp4, identical ? "true" : "false", max_error_m,
               kEnvelopeM, within_envelope ? "true" : "false");
  return identical && within_envelope;
}

// Current peak resident set, in bytes (0 where getrusage is unavailable).
std::size_t peak_rss_bytes() {
#if defined(__unix__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;  // KB on Linux
  }
#endif
  return 0;
}

// --scale=mega|mega-smoke: the mega-constellation scale-out workload. The
// synthetic Gen2-scale Starlink catalog (~30k satellites across 7 shells)
// serves population-gridded user terminals over one day at 60 s steps
// through the footprint-stream scheduler: spatial-index candidate discovery,
// shell-sharded satellite iteration, bounded-queue chunk streaming, and a
// per-terminal candidate cap so staging memory stays bounded. mega is the
// full 30k x 1M acceptance run; mega-smoke cuts the catalog to 3k satellites
// and 50k terminals so CI can exercise the identical code path in seconds.
// Writes the "mega_scale" JSON section (throughput + peak RSS, the fields
// tools/check_perf_regression.py --mega gates on). Returns false if the run
// granted no links at all (a scheduling pipeline failure).
bool run_mega(std::FILE* out, bool smoke) {
  bench::disable_malloc_trim();
  // The whole workload definition — Gen2-scale catalog, population-gridded
  // sites, footprint-stream scheduler preset — comes from the Scenario scale
  // preset, so this bench, the CI smoke step and any example requesting
  // --scale=mega all run the identical workload.
  const sim::Scenario scenario =
      sim::ScenarioBuilder()
          .epoch(kEpoch)
          .threads(0)
          .scale(smoke ? sim::ScalePreset::kMegaSmoke : sim::ScalePreset::kMega)
          .build();
  const orbit::TimeGrid grid = scenario.grid();
  const sim::Workload workload = sim::build_workload(scenario);
  const std::size_t kParties = workload.party_count;
  const net::SchedulerConfig& config = workload.scheduler;
  const std::size_t terminal_count = workload.terminals.size();

  const net::BentPipeScheduler scheduler(config, workload.satellites,
                                         workload.terminals, workload.stations);
  sim::RunContext context(scenario);

  std::printf("mega workload: %zu satellites x %zu terminals x %zu stations"
              " x %zu steps (1 day / 60 s, %zu parties)%s\n",
              workload.satellites.size(), workload.terminals.size(),
              workload.stations.size(), grid.count, kParties, smoke ? " [smoke]" : "");
  std::fflush(stdout);

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const net::ScheduleResult result =
      scheduler.run(grid, kParties, context, /*keep_steps=*/false);
  const double seconds = std::chrono::duration<double>(clock::now() - t0).count();

  const double terminal_steps =
      static_cast<double>(terminal_count) * static_cast<double>(grid.count);
  const double tps = terminal_steps / seconds;
  const double links_granted = result.total_served_seconds / grid.step_seconds;
  const std::size_t rss = peak_rss_bytes();

  // Bit-identity spot check at bench time: the footprint-stream pipeline vs
  // the pair-mask pipeline on a deterministic sub-fleet of this exact
  // workload (first 200 satellites, first 2,000 terminals, 6 h). Uncapped,
  // the streamed path is exact, so the two ScheduleResults must match down
  // to link ordering. Full-scale identity against run_reference is pinned by
  // --compare-scheduler; this flag proves the mega catalog/site geometry
  // never flips bits either, and feeds the "bit_identical" gate in
  // tools/check_perf_regression.py --mega.
  const bool identical = [&] {
    const orbit::TimeGrid sub_grid =
        orbit::TimeGrid::over_duration(kEpoch, 6.0 * 3600.0, 60.0);
    const std::vector<constellation::Satellite> sub_sats(
        workload.satellites.begin(),
        workload.satellites.begin() +
            std::min<std::size_t>(workload.satellites.size(), 200));
    const std::vector<net::Terminal> sub_terminals(
        workload.terminals.begin(),
        workload.terminals.begin() +
            std::min<std::size_t>(workload.terminals.size(), 2000));
    net::SchedulerConfig streamed_config = config;
    streamed_config.max_candidates_per_terminal = 0;  // uncapped -> exact
    net::SchedulerConfig pair_config = streamed_config;
    pair_config.visibility_mode = net::VisibilityMode::kPairMasks;
    const net::BentPipeScheduler streamed_scheduler(streamed_config, sub_sats,
                                                    sub_terminals, workload.stations);
    const net::BentPipeScheduler pair_scheduler(pair_config, sub_sats,
                                                sub_terminals, workload.stations);
    return streamed_scheduler.run(sub_grid, kParties, /*keep_steps=*/true) ==
           pair_scheduler.run(sub_grid, kParties, /*keep_steps=*/true);
  }();

  const bool ok = result.total_served_seconds > 0.0 && identical;

  std::printf("scheduled        : %8.1f s  %10.3e terminal*steps/s\n", seconds, tps);
  std::printf("links granted    : %.0f  (served %.3e s, unserved %.3e s)\n",
              links_granted, result.total_served_seconds,
              result.total_unserved_seconds);
  std::printf("peak RSS         : %.2f GB\n", static_cast<double>(rss) / 1e9);
  std::printf("sub-fleet identity (stream vs pair-mask): %s\n",
              identical ? "bit-identical" : "MISMATCH");

  std::fprintf(out,
               "  \"mega_scale\": {\n"
               "    \"workload\": {\"satellites\": %zu, \"terminals\": %zu,"
               " \"stations\": %zu, \"parties\": %zu, \"steps\": %zu,"
               " \"step_seconds\": 60.0, \"scale\": \"%s\"},\n"
               "    \"threads\": %zu,\n"
               "    \"stream\": {\"chunk_steps\": %zu, \"slots\": %zu,"
               " \"candidate_cap\": %zu},\n"
               "    \"seconds\": %.3f,\n"
               "    \"terminal_steps_per_sec\": %.6e,\n"
               "    \"links_granted\": %.0f,\n"
               "    \"peak_rss_bytes\": %zu,\n"
               "    \"bit_identical\": %s,\n"
               "    \"obs\": %s\n"
               "  }",
               workload.satellites.size(), workload.terminals.size(),
               workload.stations.size(), kParties, grid.count,
               smoke ? "mega-smoke" : "mega", context.thread_count(),
               config.stream_chunk_steps, config.stream_slots,
               config.max_candidates_per_terminal, seconds, tps, links_granted, rss,
               identical ? "true" : "false", context.metrics().to_json(4).c_str());
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool compare = false;
  bool compare_scheduler = false;
  std::string out_path = "BENCH_perf_simulator.json";
  bool backends = false;
  bool mega = false;
  bool mega_smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compare") == 0) {
      compare = true;
    } else if (std::strcmp(argv[i], "--compare-scheduler") == 0) {
      compare_scheduler = true;
    } else if (std::strcmp(argv[i], "--backends") == 0) {
      backends = true;
    } else if (std::strcmp(argv[i], "--scale=mega") == 0) {
      mega = true;
    } else if (std::strcmp(argv[i], "--scale=mega-smoke") == 0) {
      mega_smoke = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    }
  }
  if (compare || compare_scheduler || backends || mega || mega_smoke) {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "perf_simulator: cannot open %s for writing\n",
                   out_path.c_str());
      return 1;
    }
    // One hardware-pooled run context drives every pooled/faulted compare
    // pass; the accumulated metrics become the report's "obs" section.
    sim::Scenario obs_scenario;
    obs_scenario.threads = 0;
    sim::RunContext context(obs_scenario);
    std::fprintf(out, "{\n");
    bool ok = true;
    bool first_section = true;
    const auto separate = [&] {
      if (!first_section) std::fprintf(out, ",\n");
      first_section = false;
    };
    if (compare) {
      separate();
      ok = run_compare(out) && ok;
    }
    if (backends) {
      separate();
      ok = run_compare_backends(out) && ok;
    }
    if (compare_scheduler) {
      separate();
      ok = run_compare_scheduler(out, context) && ok;
      std::fprintf(out, ",\n  \"obs\": %s", context.metrics().to_json(2).c_str());
    }
    if (mega || mega_smoke) {
      separate();
      ok = run_mega(out, /*smoke=*/!mega) && ok;
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("report written to %s\n", out_path.c_str());
    return ok ? 0 : 1;
  }

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
