// Shared plumbing for the figure-reproduction benches: scenario parsing,
// catalog/engine construction, and the paper-expectation banner.
#pragma once

#include <cstdio>
#include <string>

#if defined(__GLIBC__)
#include <climits>
#include <malloc.h>
#endif

#include "core/mpleo.hpp"

namespace mpleo::bench {

// Keeps glibc from handing freed arena pages back to the OS. The benches
// allocate and free large mask/table working sets between repetitions;
// with the default trim threshold every repetition re-faults every page and
// the measurement mostly times the kernel's page-fault path (~3x slower).
// No-op on non-glibc platforms.
inline void disable_malloc_trim() {
#if defined(__GLIBC__)
  mallopt(M_TRIM_THRESHOLD, INT_MAX);
#endif
}

struct Experiment {
  sim::Scenario scenario;
  cov::CoverageEngine engine;
  std::vector<constellation::Satellite> catalog;
  // Shared run context (pool sized by scenario.threads, metrics, trace);
  // non-copyable, so Experiment is constructed in place and stays put.
  sim::RunContext context;

  explicit Experiment(const sim::Scenario& sc)
      : scenario(sc),
        engine(sc.grid(), sc.elevation_mask_deg),
        catalog(constellation::build_starlink_catalog(
            sc.epoch, {.include_gen2 = sc.include_gen2_catalog})),
        context(sc) {}
};

// Parses flags and prints the standard banner. Exits the process with a
// usage message on bad flags.
inline sim::Scenario start(int argc, char** argv, const char* title,
                           const char* paper_claim, sim::Scenario defaults = {}) {
  disable_malloc_trim();
  sim::Scenario scenario;
  try {
    scenario = sim::parse_scenario(argc, argv, defaults);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
  std::printf("=== %s ===\n", title);
  std::printf("paper: %s\n", paper_claim);
  std::printf("setup: %s\n\n", sim::describe(scenario).c_str());
  return scenario;
}

inline std::string hours(double seconds) { return util::Table::duration(seconds); }

}  // namespace mpleo::bench
