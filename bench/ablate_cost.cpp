// Ablation (§1-2 economics): cost per covered hour for sovereign
// constellations of increasing size vs contributing 50 satellites to a
// shared 1000-satellite MP-LEO. Coverage numbers are measured (Taipei
// receiver, sampled Starlink catalog); costs come from core::CostModel.
#include "bench_common.hpp"
#include "core/cost_model.hpp"
#include "util/stats.hpp"

using namespace mpleo;

namespace {

double mean_taipei_coverage(cov::VisibilityCache& cache, const bench::Experiment& exp,
                            std::size_t n, std::size_t runs,
                            util::Xoshiro256PlusPlus& rng) {
  util::RunningStats covered;
  for (std::size_t run = 0; run < runs; ++run) {
    util::Xoshiro256PlusPlus run_rng = rng.split(n * 53 + run);
    const auto indices =
        constellation::sample_indices(exp.catalog.size(), n, run_rng);
    covered.add(cache.union_mask(indices, 0).fraction());
  }
  return covered.mean();
}

}  // namespace

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.runs = 10;
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: economics of sovereign vs shared constellations",
      "mega-constellations cost $10-30B; 50 shared satellites buy ~1000-sat "
      "coverage at ~5% of the cost",
      defaults);
  bench::Experiment exp(scenario);

  const std::vector<cov::GroundSite> taipei{cov::GroundSite::from_city(cov::taipei())};
  cov::VisibilityCache cache(exp.engine, exp.catalog, taipei);
  util::Xoshiro256PlusPlus rng(scenario.seed);

  core::CostModel model;
  constexpr std::size_t kGroundStations = 2;

  util::Table table({"strategy", "sats funded", "Taipei coverage", "lifetime cost",
                     "cost per covered hour"});
  auto add_row = [&](const char* name, std::size_t funded, double coverage) {
    const double cost = model.lifetime_cost(funded, kGroundStations);
    table.add_row({name, std::to_string(funded), util::Table::pct(coverage),
                   "$" + util::Table::num(cost / 1e6, 0) + "M",
                   coverage > 0.0
                       ? "$" + util::Table::num(model.cost_per_covered_hour(
                                                    funded, kGroundStations, coverage),
                                                0)
                       : "n/a"});
  };

  for (const std::size_t n : {100UL, 500UL, 1000UL}) {
    const double coverage = mean_taipei_coverage(cache, exp, n, scenario.runs, rng);
    add_row("sovereign", n, coverage);
  }
  // MP-LEO: fund 50, ride the shared 1000.
  const double shared_cov = mean_taipei_coverage(cache, exp, 1000, scenario.runs, rng);
  add_row("MP-LEO (50 of shared 1000)", 50, shared_cov);
  std::fputs(table.to_string().c_str(), stdout);

  const core::SharingAdvantage advantage = core::sharing_advantage(model, 1000, 50, 2);
  std::printf("\nsame-coverage cost ratio sovereign/shared: %.1fx ($%.0fM vs $%.0fM)\n",
              advantage.cost_ratio, advantage.sovereign_lifetime_cost / 1e6,
              advantage.shared_lifetime_cost / 1e6);

  // The intro's headline number.
  core::CostModel mega;
  mega.satellite_unit_cost = 1.0e6;
  mega.launch_cost_per_satellite = 1.2e6;
  std::printf("mega-constellation CAPEX (12000 sats, 100 gateways): $%.1fB "
              "(paper quotes $10-30B)\n",
              mega.constellation_capex(12000, 100) / 1e9);
  return 0;
}
