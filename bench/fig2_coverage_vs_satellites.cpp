// Figure 2: percentage of time without coverage vs number of satellites,
// for a receiver in Taipei, sampling satellites from the Starlink catalog.
//
// Paper anchors: 100 satellites -> >50% uncovered with gaps over an hour;
// >=1000 satellites -> >=99.5% coverage.
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  const sim::Scenario scenario = bench::start(
      argc, argv, "Fig 2: coverage gap vs constellation size (Taipei)",
      "100 sats -> >50% uncovered (gaps >1h); 1000 sats -> >=99.5% covered");
  bench::Experiment exp(scenario);

  const std::vector<cov::GroundSite> taipei{cov::GroundSite::from_city(cov::taipei())};
  cov::VisibilityCache cache(exp.engine, exp.catalog, taipei);
  util::Xoshiro256PlusPlus rng(scenario.seed);

  util::Table table({"satellites", "uncovered % (mean±sd)", "max gap (mean)",
                     "max gap (worst run)", "covered %"});

  for (const std::size_t n : {10UL, 50UL, 100UL, 200UL, 500UL, 1000UL, 2000UL}) {
    util::RunningStats uncovered, max_gap;
    for (std::size_t run = 0; run < scenario.runs; ++run) {
      util::Xoshiro256PlusPlus run_rng = rng.split(run);
      const auto indices =
          constellation::sample_indices(exp.catalog.size(), n, run_rng);
      const cov::CoverageStats stats =
          exp.engine.stats(cache.union_mask(indices, 0));
      uncovered.add(1.0 - stats.covered_fraction);
      max_gap.add(stats.max_gap_seconds);
    }
    table.add_row({std::to_string(n),
                   util::Table::pct(uncovered.mean()) + " ± " +
                       util::Table::pct(uncovered.stddev()),
                   bench::hours(max_gap.mean()), bench::hours(max_gap.max()),
                   util::Table::pct(1.0 - uncovered.mean())});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
