// Ablation: power limits on spare capacity (§3.2 financial viability meets
// physics). A satellite can only sell the transponder time its energy
// balance affords: eclipse season and battery depth-of-discharge cap the
// sellable duty cycle.
#include "bench_common.hpp"
#include "net/power.hpp"
#include "orbit/sun.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.duration_s = 2.0 * 86400.0;
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: power-limited spare capacity",
      "panel size and battery DoD bound the sellable transponder duty cycle",
      defaults);

  const orbit::TimeGrid grid = scenario.grid();
  const cov::CoverageEngine engine(grid, scenario.elevation_mask_deg);
  const auto sites = cov::sites_from_cities(cov::paper_cities());

  // One Starlink-like satellite; transmit whenever any city is in footprint.
  constellation::Satellite sat;
  sat.name = "PWR-1";
  sat.elements = orbit::ClassicalElements::circular(550e3, 53.0, 40.0, 10.0);
  sat.epoch = scenario.epoch;

  const orbit::KeplerianPropagator prop(sat.elements, sat.epoch);
  cov::StepMask sunlit(grid.count);
  for (std::size_t i = 0; i < grid.count; ++i) {
    const orbit::TimePoint t = grid.at(i);
    if (!orbit::is_eclipsed(prop.state_at(t).position, orbit::sun_direction_eci(t))) {
      sunlit.set(i);
    }
  }
  cov::StepMask wanted(grid.count);
  for (const cov::StepMask& mask : engine.visibility_masks(sat, sites)) wanted |= mask;

  const double sunlit_frac = sunlit.fraction();
  std::printf("orbit sunlit fraction: %.1f%%; transponder demanded %.1f%% of time\n\n",
              sunlit_frac * 100.0, wanted.fraction() * 100.0);

  util::Table table({"panel W", "battery Wh", "served %", "denied steps",
                     "min charge Wh", "sustainable duty"});
  for (const double panel_w : {150.0, 250.0, 400.0}) {
    for (const double battery_wh : {200.0, 600.0}) {
      net::PowerConfig cfg;
      cfg.solar_panel_w = panel_w;
      cfg.battery_capacity_wh = battery_wh;
      const net::PowerTimelineResult result =
          net::simulate_power(cfg, sunlit, wanted, grid.step_seconds);
      const double served =
          wanted.count() > 0
              ? static_cast<double>(result.transmitted.count()) /
                    static_cast<double>(wanted.count())
              : 0.0;
      table.add_row({util::Table::num(panel_w, 0), util::Table::num(battery_wh, 0),
                     util::Table::pct(served), std::to_string(result.denied_steps),
                     util::Table::num(result.min_charge_wh, 0),
                     util::Table::pct(net::sustainable_transmit_duty(cfg, sunlit_frac))});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
