// Ablation: sensitivity of the Fig-2 curve to the terminal elevation mask.
// The paper's conclusions rest on footprint geometry; this quantifies how
// the uncovered-time curve shifts with the mask (15/25/35 deg).
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.runs = 10;
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: elevation mask vs coverage gap (Taipei)",
      "lower masks enlarge footprints and shift the Fig-2 curve left",
      defaults);

  util::Table table({"mask (deg)", "N=100 uncovered %", "N=500 uncovered %",
                     "N=1000 uncovered %", "footprint % of Earth"});

  for (const double mask : {15.0, 25.0, 35.0}) {
    sim::Scenario variant = scenario;
    variant.elevation_mask_deg = mask;
    bench::Experiment exp(variant);
    const std::vector<cov::GroundSite> taipei{cov::GroundSite::from_city(cov::taipei())};
    cov::VisibilityCache cache(exp.engine, exp.catalog, taipei);
    util::Xoshiro256PlusPlus rng(scenario.seed);

    std::vector<std::string> row{util::Table::num(mask, 0)};
    for (const std::size_t n : {100UL, 500UL, 1000UL}) {
      util::RunningStats uncovered;
      for (std::size_t run = 0; run < scenario.runs; ++run) {
        util::Xoshiro256PlusPlus run_rng = rng.split(n * 31 + run);
        const auto indices =
            constellation::sample_indices(exp.catalog.size(), n, run_rng);
        uncovered.add(1.0 - cache.union_mask(indices, 0).fraction());
      }
      row.push_back(util::Table::pct(uncovered.mean()));
    }
    row.push_back(util::Table::pct(cov::footprint_area_fraction(550e3, mask), 3));
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
