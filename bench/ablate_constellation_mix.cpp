// Ablation: constellation geometry and who gets covered. Starlink's
// 53-deg-heavy delta shells, OneWeb's polar star, and Kuiper's three-
// inclination mix distribute the same per-satellite capacity very
// differently across latitudes — the fleet-scale version of Fig 4c's
// "inclination diversity buys coverage".
#include "bench_common.hpp"
#include "constellation/fleets.hpp"
#include "util/stats.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.runs = 5;
  defaults.duration_s = 2.0 * 86400.0;
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: fleet geometry vs who gets covered",
      "polar stars serve high latitudes; low-inclination shells serve the "
      "tropics; mixes interpolate",
      defaults);

  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);

  struct Probe {
    const char* name;
    double lat, lon;
  };
  const Probe probes[] = {
      {"Singapore (1N)", 1.35, 103.8},
      {"Taipei (25N)", 25.03, 121.56},
      {"London (51N)", 51.5, -0.13},
      {"Reykjavik (64N)", 64.1, -21.9},
      {"Svalbard (78N)", 78.2, 15.6},
  };
  std::vector<cov::GroundSite> sites;
  for (const Probe& p : probes) {
    sites.push_back({p.name, orbit::TopocentricFrame(
                                 orbit::Geodetic::from_degrees(p.lat, p.lon)), 1.0});
  }

  struct Fleet {
    const char* name;
    std::vector<constellation::Satellite> catalog;
  };
  const Fleet fleets[] = {
      {"Starlink (53-deg heavy)",
       constellation::build_starlink_catalog(scenario.epoch)},
      {"OneWeb (polar star)",
       constellation::build_catalog(constellation::oneweb_shells(), scenario.epoch)},
      {"Kuiper (3-inclination)",
       constellation::build_catalog(constellation::kuiper_shells(), scenario.epoch)},
  };

  constexpr std::size_t kSampleSize = 200;
  util::Table table({"fleet (200-sat sample)", "Singapore", "Taipei", "London",
                     "Reykjavik", "Svalbard"});
  util::Xoshiro256PlusPlus rng(scenario.seed);

  for (const Fleet& fleet : fleets) {
    std::vector<util::RunningStats> covered(sites.size());
    for (std::size_t run = 0; run < scenario.runs; ++run) {
      util::Xoshiro256PlusPlus run_rng = rng.split(run);
      const auto sample =
          constellation::sample_satellites(fleet.catalog, kSampleSize, run_rng);
      for (std::size_t j = 0; j < sites.size(); ++j) {
        covered[j].add(
            engine.stats(engine.coverage_mask(sample, sites[j].frame)).covered_fraction);
      }
    }
    std::vector<std::string> row{fleet.name};
    for (const auto& stats : covered) row.push_back(util::Table::pct(stats.mean()));
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nan MP-LEO that lets parties pick diverse inclinations (Fig 4c's\n"
              "incentive) naturally interpolates between these columns.\n");
  return 0;
}
