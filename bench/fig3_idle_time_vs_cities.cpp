// Figure 3: satellite idle time vs number of cities served.
//
// Paper anchors: serving a single major city leaves each satellite ~99%
// idle; idle time decreases as terminals are placed in more of the 21 cities
// (top-20 one-per-country + Melbourne).
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.runs = 10;  // each run samples a fresh satellite subset
  const sim::Scenario scenario = bench::start(
      argc, argv, "Fig 3: satellite idle time vs cities served",
      "1 city -> ~99% idle per satellite; idle decreases with more cities",
      defaults);
  bench::Experiment exp(scenario);

  const auto& cities = cov::paper_cities();
  const std::vector<cov::GroundSite> sites = cov::sites_from_cities(cities, false);
  util::Xoshiro256PlusPlus rng(scenario.seed);

  constexpr std::size_t kSatsPerRun = 150;
  // idle_stats[k] aggregates idle fraction when serving the first k+1 cities.
  std::vector<util::RunningStats> idle_stats(cities.size());

  for (std::size_t run = 0; run < scenario.runs; ++run) {
    util::Xoshiro256PlusPlus run_rng = rng.split(run);
    const auto indices =
        constellation::sample_indices(exp.catalog.size(), kSatsPerRun, run_rng);
    for (const std::size_t sat_index : indices) {
      const auto per_city = exp.engine.visibility_masks(exp.catalog[sat_index], sites);
      cov::StepMask busy(exp.engine.grid().count);
      for (std::size_t k = 0; k < cities.size(); ++k) {
        busy |= per_city[k];  // cumulative: first k+1 cities
        idle_stats[k].add(1.0 - busy.fraction());
      }
    }
  }

  util::Table table({"cities served", "idle % (mean±sd)", "busy h/week (mean)"});
  for (std::size_t k = 0; k < cities.size(); ++k) {
    table.add_row(
        {std::to_string(k + 1),
         util::Table::pct(idle_stats[k].mean()) + " ± " +
             util::Table::pct(idle_stats[k].stddev()),
         util::Table::num((1.0 - idle_stats[k].mean()) *
                          exp.engine.grid().duration_seconds() / 3600.0, 2)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
