// Figure 4b: impact of phase placement. Base: 12 satellites in one orbital
// plane (53 deg, 546 km) spaced 30 deg apart. A 13th satellite is added at
// phase offsets 1..29 deg from one of them.
//
// Paper anchor: the midpoint (15 deg — farthest from both neighbours) yields
// the maximum coverage improvement.
#include "bench_common.hpp"
#include "core/placement.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  const sim::Scenario scenario = bench::start(
      argc, argv, "Fig 4b: coverage gain vs in-plane phase offset",
      "gain peaks at the 15-deg midpoint between two existing satellites");
  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);

  const auto base =
      constellation::single_plane(546e3, 53.0, 0.0, 12, scenario.epoch);
  const std::vector<cov::GroundSite> sites =
      cov::sites_from_cities(cov::paper_cities());
  const core::PlacementOptimizer optimizer(engine, sites);

  std::vector<double> offsets;
  for (int deg = 1; deg <= 29; ++deg) offsets.push_back(static_cast<double>(deg));
  const auto candidates =
      constellation::phase_offset_candidates(base.front().elements, offsets);
  const auto evals = optimizer.evaluate(base, candidates, scenario.epoch);

  double best_gain = 0.0;
  int best_offset = 0;
  util::Table table({"phase offset (deg)", "coverage gain", "gain (min)"});
  for (std::size_t i = 0; i < evals.size(); ++i) {
    const double gain = evals[i].gained_weighted_seconds;
    table.add_row({std::to_string(static_cast<int>(offsets[i])), bench::hours(gain),
                   util::Table::num(gain / 60.0, 1)});
    if (gain > best_gain) {
      best_gain = gain;
      best_offset = static_cast<int>(offsets[i]);
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nbest offset: %d deg (paper: 15 deg midpoint)\n", best_offset);
  return 0;
}
