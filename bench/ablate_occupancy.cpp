// Ablation (§1, abstract): "independent constellations ... lead to
// unnecessary orbital occupancy." Compare N sovereign constellations (each
// sized for its own continuous coverage) against one shared MP-LEO sized
// once — counting satellites, occupied altitude bands, crowding, and
// close-approach pairs in the busiest shell.
#include "bench_common.hpp"
#include "orbit/conjunction.hpp"

using namespace mpleo;

namespace {

// A sovereign constellation for one country: its own Walker shell at a
// slightly offset altitude (operators deconflict by a few km today).
std::vector<constellation::Satellite> sovereign_shell(double altitude_m, double raan0,
                                                      orbit::TimePoint epoch,
                                                      constellation::SatelliteId first_id) {
  constellation::WalkerShell shell;
  shell.label = "SOV";
  shell.altitude_m = altitude_m;
  shell.inclination_deg = 53.0;
  shell.plane_count = 18;
  shell.sats_per_plane = 20;  // 360 sats: enough for near-continuous regional svc
  shell.phasing_factor = 5;
  shell.raan_offset_deg = raan0;
  return shell.build(epoch, first_id);
}

}  // namespace

int main(int argc, char** argv) {
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: orbital occupancy of sovereign vs shared deployments",
      "N independent constellations multiply satellites, crowded bands and "
      "close approaches; one shared constellation does not");

  // Six countries each fly a 360-sat sovereign constellation at 540-555 km.
  std::vector<constellation::Satellite> sovereign;
  constellation::SatelliteId next_id = 0;
  for (int country = 0; country < 6; ++country) {
    const auto shell = sovereign_shell(540e3 + 3e3 * country, 7.0 * country,
                                       scenario.epoch, next_id);
    next_id += static_cast<constellation::SatelliteId>(shell.size());
    sovereign.insert(sovereign.end(), shell.begin(), shell.end());
  }

  // The shared alternative: one 600-sat MP-LEO serves all six.
  constellation::WalkerShell shared_shell;
  shared_shell.label = "MPLEO";
  shared_shell.altitude_m = 550e3;
  shared_shell.inclination_deg = 53.0;
  shared_shell.plane_count = 30;
  shared_shell.sats_per_plane = 20;
  shared_shell.phasing_factor = 7;
  const auto shared = shared_shell.build(scenario.epoch);

  // Conjunction screening over one orbit at 5 s resolution on a sample of
  // each population (full N^2 over 2160 sats x 1200 steps is unnecessary for
  // the comparison).
  const orbit::TimeGrid screen_grid =
      orbit::TimeGrid::over_duration(scenario.epoch, 6000.0, 5.0);
  util::Xoshiro256PlusPlus rng(scenario.seed);
  auto sample_of = [&](const std::vector<constellation::Satellite>& sats) {
    return constellation::sample_satellites(sats, 120, rng);
  };
  const auto sovereign_sample = sample_of(sovereign);
  const auto shared_sample = sample_of(shared);
  const double threshold = 25e3;  // screening distance used by operators

  const auto sovereign_hits =
      orbit::screen_conjunctions(sovereign_sample, screen_grid, threshold);
  const auto shared_hits =
      orbit::screen_conjunctions(shared_sample, screen_grid, threshold);

  const auto sovereign_bands = orbit::altitude_occupancy(sovereign, 5e3);
  const auto shared_bands = orbit::altitude_occupancy(shared, 5e3);

  util::Table table({"deployment", "satellites", "altitude bands (5 km)",
                     "crowding (sats/band)", "close pairs <25 km (120-sat sample)"});
  table.add_row({"6 sovereign constellations", std::to_string(sovereign.size()),
                 std::to_string(sovereign_bands.size()),
                 util::Table::num(orbit::crowding_index(sovereign_bands), 1),
                 std::to_string(sovereign_hits.size())});
  table.add_row({"1 shared MP-LEO", std::to_string(shared.size()),
                 std::to_string(shared_bands.size()),
                 util::Table::num(orbit::crowding_index(shared_bands), 1),
                 std::to_string(shared_hits.size())});
  std::fputs(table.to_string().c_str(), stdout);

  if (!sovereign_hits.empty()) {
    std::printf("\ntightest sovereign close approach: %.1f km\n",
                sovereign_hits.front().min_distance_m / 1000.0);
  }
  std::printf("\nthe shared constellation serves the same six regions with %.0fx\n"
              "fewer satellites in orbit.\n",
              static_cast<double>(sovereign.size()) / static_cast<double>(shared.size()));
  return 0;
}
