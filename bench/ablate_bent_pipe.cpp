// Ablation: transparent (RF repeater) vs regenerative (decode-and-forward)
// bent-pipe (§3.1 vs §4), across slant range and ground-segment class.
//
// Finding this bench demonstrates: with a gateway-class dish the downlink is
// so much stronger than the 2 W terminal uplink that the transparent
// repeater's noise re-amplification costs <0.1 dB — the paper's transparent
// choice is nearly free for the bent-pipe service model. The penalty only
// approaches its 3 dB worst case when hops are balanced, e.g. satellite
// relay directly to another user terminal (P2P) with per-beam power backoff.
#include "bench_common.hpp"
#include "net/bent_pipe.hpp"

using namespace mpleo;

namespace {

struct ReceiverClass {
  const char* name;
  net::RadioConfig station;
  double satellite_tx_power_dbw;  // per-beam downlink PA
};

}  // namespace

int main(int argc, char** argv) {
  (void)bench::start(argc, argv,
                     "Ablation: transparent vs regenerative bent-pipe",
                     "transparent penalty ~0 dB for gateway downlinks; grows "
                     "toward 3 dB as hops balance (P2P relay)");

  const net::RadioConfig terminal = net::default_user_terminal();

  net::RadioConfig gateway = net::default_ground_station();
  net::RadioConfig small_dish = gateway;
  small_dish.receive_gain_dbi = 33.0;
  small_dish.system_noise_temp_k = 250.0;
  net::RadioConfig peer_terminal = gateway;
  peer_terminal.receive_gain_dbi = 33.0;
  peer_terminal.system_noise_temp_k = 350.0;

  const ReceiverClass classes[] = {
      {"gateway dish (45 dBi)", gateway, 14.0},
      {"small dish (33 dBi)", small_dish, 11.0},
      {"P2P user terminal", peer_terminal, 3.0},  // shared-beam power backoff
  };

  util::Table table({"receiver", "range (km)", "up SNR dB", "down SNR dB",
                     "transparent dB", "regen dB", "penalty dB", "transparent Mbps",
                     "regen Mbps"});

  for (const ReceiverClass& rx : classes) {
    net::TransponderConfig transponder = net::default_transponder();
    transponder.transmit.transmit_power_dbw = rx.satellite_tx_power_dbw;
    for (const double range_km : {560.0, 900.0, 1400.0}) {
      const double range_m = range_km * 1000.0;
      const net::RelayBudget transparent =
          net::compute_relay(terminal, transponder, rx.station, range_m, range_m,
                             net::RelayMode::kTransparent);
      const net::RelayBudget regen =
          net::compute_relay(terminal, transponder, rx.station, range_m, range_m,
                             net::RelayMode::kRegenerative);
      table.add_row({rx.name, util::Table::num(range_km, 0),
                     util::Table::num(transparent.uplink.snr_db, 1),
                     util::Table::num(transparent.downlink.snr_db, 1),
                     util::Table::num(transparent.end_to_end_snr_db, 2),
                     util::Table::num(regen.end_to_end_snr_db, 2),
                     util::Table::num(regen.end_to_end_snr_db -
                                          transparent.end_to_end_snr_db, 2),
                     util::Table::num(transparent.end_to_end_capacity_bps / 1e6, 0),
                     util::Table::num(regen.end_to_end_capacity_bps / 1e6, 0)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
