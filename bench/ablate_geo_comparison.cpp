// Ablation (§2): "why not use geostationary satellites that do not move
// with respect to earth? Such satellites operate at heights of around
// 36000 km, leading to orders of magnitude degradation in network latency
// (second-level) and capacity compared to LEO satellites."
//
// This bench puts numbers on that sentence: propagation latency and link
// budget for the LEO constellation vs a GEO satellite, same terminal class.
#include "bench_common.hpp"
#include "coverage/latency.hpp"
#include "net/bent_pipe.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.duration_s = 86400.0;
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: LEO vs GEO latency and capacity",
      "GEO: ~120 ms one-way, ~0.5 s bent-pipe RTT; LEO: a few ms — orders of "
      "magnitude apart",
      defaults);

  const orbit::TimeGrid grid = scenario.grid();
  const orbit::TopocentricFrame taipei_frame(cov::taipei().location);

  // LEO: one Starlink-like satellite sampled where it passes over Taipei.
  constellation::Satellite leo;
  leo.elements = orbit::ClassicalElements::circular(550e3, 53.0, 121.0, 25.0);
  leo.epoch = scenario.epoch;
  const cov::LatencyStats leo_stats =
      cov::propagation_latency_stats(leo, taipei_frame, grid, scenario.elevation_mask_deg);

  // GEO reference at zenith (best case for GEO).
  const double geo_one_way = cov::geo_zenith_one_way_delay_ms();

  util::Table latency({"system", "one-way min", "one-way mean", "one-way max",
                       "bent-pipe RTT (mean)"});
  latency.add_row({"LEO 550 km", util::Table::num(leo_stats.min_one_way_ms, 2) + " ms",
                   util::Table::num(leo_stats.mean_one_way_ms, 2) + " ms",
                   util::Table::num(leo_stats.max_one_way_ms, 2) + " ms",
                   util::Table::num(leo_stats.mean_bent_pipe_rtt_ms(), 1) + " ms"});
  latency.add_row({"GEO 35786 km", util::Table::num(geo_one_way, 1) + " ms",
                   util::Table::num(geo_one_way, 1) + " ms",
                   util::Table::num(geo_one_way, 1) + " ms",
                   util::Table::num(4.0 * geo_one_way, 1) + " ms"});
  std::fputs(latency.to_string().c_str(), stdout);
  std::printf("\nlatency ratio (GEO/LEO mean): %.0fx\n\n",
              geo_one_way / leo_stats.mean_one_way_ms);

  // Capacity at the same terminal: free-space loss alone costs
  // 20*log10(35786/ ~700) ~ 34 dB against GEO.
  const net::RadioConfig terminal = net::default_user_terminal();
  const net::TransponderConfig transponder = net::default_transponder();
  const net::RadioConfig gateway = net::default_ground_station();

  util::Table capacity({"system", "slant range", "uplink SNR", "end-to-end capacity"});
  for (const auto& [name, range_m] :
       std::initializer_list<std::pair<const char*, double>>{
           {"LEO 550 km (typ. 700 km slant)", 700e3},
           {"GEO 35786 km", 35786e3}}) {
    const net::RelayBudget budget = net::compute_relay(
        terminal, transponder, gateway, range_m, range_m, net::RelayMode::kTransparent);
    capacity.add_row({name, util::Table::num(range_m / 1000.0, 0) + " km",
                      util::Table::num(budget.uplink.snr_db, 1) + " dB",
                      util::Table::num(budget.end_to_end_capacity_bps / 1e6, 1) +
                          " Mbps"});
  }
  std::fputs(capacity.to_string().c_str(), stdout);
  return 0;
}
