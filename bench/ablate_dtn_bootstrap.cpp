// Ablation (§4 "Bootstrapping decentralized networks"): what can an early,
// sparse MP-LEO actually sell? Delay-tolerant store-and-forward from a
// remote IoT site to a gateway city, as the constellation grows from 5 to
// 100 satellites — plus the early-adopter token emission schedule.
#include "bench_common.hpp"
#include "core/bootstrap.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.runs = 10;
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: delay-tolerant service from sparse constellations",
      "early sparse deployments can serve delay-tolerant apps (IoT, bulk)",
      defaults);
  bench::Experiment exp(scenario);

  // Remote IoT source (Amazon basin) -> gateway destination (New York).
  const std::vector<cov::GroundSite> sites{
      {"amazon-iot", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(-3.1, -60.0)),
       1.0},
      {"nyc-gateway", orbit::TopocentricFrame(orbit::Geodetic::from_degrees(40.7, -74.0)),
       1.0}};
  cov::VisibilityCache cache(exp.engine, exp.catalog, sites);
  util::Xoshiro256PlusPlus rng(scenario.seed);

  util::Table table({"satellites", "delivered %", "mean latency", "p95 latency",
                     "max latency"});
  for (const std::size_t n : {5UL, 10UL, 25UL, 50UL, 100UL}) {
    util::RunningStats delivered, mean_lat, p95_lat, max_lat;
    for (std::size_t run = 0; run < scenario.runs; ++run) {
      util::Xoshiro256PlusPlus run_rng = rng.split(n * 131 + run);
      const auto indices = constellation::sample_indices(exp.catalog.size(), n, run_rng);
      const cov::StepMask up = cache.union_mask(indices, 0);
      const cov::StepMask down = cache.union_mask(indices, 1);
      const core::DtnStats stats = core::dtn_stats(up, down, scenario.step_s);
      const double total = static_cast<double>(stats.delivered + stats.stranded);
      delivered.add(total > 0.0 ? static_cast<double>(stats.delivered) / total : 0.0);
      mean_lat.add(stats.mean_latency_s);
      p95_lat.add(stats.p95_latency_s);
      max_lat.add(stats.max_latency_s);
    }
    table.add_row({std::to_string(n), util::Table::pct(delivered.mean()),
                   bench::hours(mean_lat.mean()), bench::hours(p95_lat.mean()),
                   bench::hours(max_lat.max())});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // Early-adopter economics: share of eventual token supply minted per year.
  core::EmissionSchedule schedule;
  const double supply = schedule.total_supply();
  util::Table emission({"year", "tokens minted", "% of total supply",
                        "cumulative %"});
  for (std::size_t year = 0; year < 5; ++year) {
    const double minted =
        schedule.cumulative((year + 1) * 12) - schedule.cumulative(year * 12);
    emission.add_row({std::to_string(year + 1), util::Table::num(minted, 0),
                      util::Table::pct(minted / supply),
                      util::Table::pct(schedule.cumulative((year + 1) * 12) / supply)});
  }
  std::printf("\nearly-adopter emission schedule (halving every 12 epochs):\n");
  std::fputs(emission.to_string().c_str(), stdout);
  return 0;
}
