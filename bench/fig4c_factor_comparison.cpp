// Figure 4c: which orbital factor buys the most coverage? Base: 4 Starlink-
// like satellites (53 deg inclination, same plane, ~90 deg apart in phase).
// Candidates: (1) different inclination (43 deg), (2) same plane/phase but
// different altitude, (3) same plane, different phase.
//
// Paper anchors: the inclination change wins (~1h11m gain); the other two
// factors still contribute >30 minutes each.
#include "bench_common.hpp"
#include "core/placement.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  const sim::Scenario scenario = bench::start(
      argc, argv, "Fig 4c: inclination vs altitude vs phase",
      "different inclination best (~1h11m); altitude and phase each >30min");
  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);

  const auto base =
      constellation::single_plane(546e3, 53.0, 0.0, 4, scenario.epoch);
  const std::vector<cov::GroundSite> sites =
      cov::sites_from_cities(cov::paper_cities());
  const core::PlacementOptimizer optimizer(engine, sites);

  // Candidate categories mirror the paper: 43-deg inclination; +25 km
  // altitude at the same plane/phase; 45-deg phase shift (midpoint of the
  // 90-deg spacing).
  const auto candidates =
      constellation::factor_candidates(base.front().elements, 43.0, 25e3, 45.0);
  const auto evals = optimizer.evaluate(base, candidates, scenario.epoch);

  util::Table table({"candidate", "coverage gain", "gain (min)"});
  for (const auto& e : evals) {
    table.add_row({e.slot.label, bench::hours(e.gained_weighted_seconds),
                   util::Table::num(e.gained_weighted_seconds / 60.0, 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  const auto best = std::max_element(
      evals.begin(), evals.end(), [](const auto& a, const auto& b) {
        return a.gained_weighted_seconds < b.gained_weighted_seconds;
      });
  std::printf("\nbest factor: %s (paper: inclination change)\n", best->slot.label.c_str());
  return 0;
}
