// Resilience sweep: coverage and served fraction vs per-satellite failure
// rate and MTTR — the fault-injection generalization of Fig 5. Instead of
// half the constellation leaving forever, satellites fail stochastically and
// come back after repair, so the before/after cliff becomes a family of
// MTBF/MTTR curves. Within a sweep the failure candidates are shared across
// rates (common random numbers), so served fraction is monotonically
// non-increasing in the rate by construction; the process exits non-zero if
// that ever fails to hold. Writes a machine-readable JSON report (default
// BENCH_resilience_sweep.json; override with --out=PATH).
#include <cstring>

#include "bench_common.hpp"
#include "core/robustness.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  std::string out_path = "BENCH_resilience_sweep.json";
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      rest.push_back(argv[i]);
    }
  }

  sim::Scenario defaults;
  defaults.duration_s = 86400.0;  // one day keeps the default sweep quick
  defaults.runs = 5;
  defaults.threads = 0;  // hardware-sized pool unless --threads=N overrides
  const sim::Scenario scenario = bench::start(
      static_cast<int>(rest.size()), rest.data(),
      "Resilience sweep: coverage vs failure rate under recovery",
      "transient failures with repair degrade coverage smoothly, not as a cliff",
      defaults);
  bench::Experiment exp(scenario);

  const std::vector<cov::GroundSite> sites = cov::sites_from_cities(cov::paper_cities());
  cov::VisibilityCache cache(exp.engine, exp.catalog, sites);

  // A mid-size MP-LEO consortium: 500 satellites sampled from the catalog.
  util::Xoshiro256PlusPlus rng(scenario.seed);
  const std::vector<std::size_t> fleet =
      constellation::sample_indices(exp.catalog.size(), 500, rng);

  core::ResilienceConfig config;
  config.failure_rates_per_sat_day = {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0};
  config.runs = scenario.runs;
  config.seed = scenario.seed;

  const std::vector<double> mttr_values = {1800.0, 7200.0, 6.0 * 3600.0};
  std::vector<std::vector<core::ResiliencePoint>> sweeps;
  bool monotone = true;

  util::Table table({"MTTR", "failures/sat/day", "coverage", "served fraction",
                     "worst gap"});
  for (const double mttr : mttr_values) {
    config.mttr_seconds = mttr;
    const std::vector<core::ResiliencePoint> points =
        core::resilience_sweep(cache, fleet, config, exp.context);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const core::ResiliencePoint& p = points[i];
      if (i > 0 && p.mean_served_fraction >
                       points[i - 1].mean_served_fraction + 1e-12) {
        monotone = false;
      }
      table.add_row({bench::hours(mttr),
                     util::Table::num(p.failure_rate_per_sat_day),
                     util::Table::pct(p.mean_coverage_fraction),
                     util::Table::pct(p.mean_served_fraction),
                     bench::hours(p.mean_worst_gap_seconds)});
    }
    sweeps.push_back(points);
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nserved fraction monotone non-increasing in failure rate: %s\n",
              monotone ? "yes" : "NO");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "resilience_sweep: cannot open %s for writing\n",
                 out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": {\"satellites\": %zu, \"sites\": %zu, \"steps\": %zu,"
               " \"step_seconds\": %.1f, \"runs\": %zu, \"seed\": %llu},\n"
               "  \"mttr_sweeps\": [",
               fleet.size(), sites.size(), exp.engine.grid().count,
               exp.engine.grid().step_seconds, config.runs,
               static_cast<unsigned long long>(config.seed));
  for (std::size_t m = 0; m < sweeps.size(); ++m) {
    std::fprintf(out, "%s\n    {\"mttr_seconds\": %.1f, \"points\": [",
                 m == 0 ? "" : ",", mttr_values[m]);
    for (std::size_t i = 0; i < sweeps[m].size(); ++i) {
      const core::ResiliencePoint& p = sweeps[m][i];
      std::fprintf(out,
                   "%s\n      {\"failure_rate_per_sat_day\": %.4f,"
                   " \"coverage_fraction\": %.6f, \"served_fraction\": %.6f,"
                   " \"worst_gap_seconds\": %.1f}",
                   i == 0 ? "" : ",", p.failure_rate_per_sat_day,
                   p.mean_coverage_fraction, p.mean_served_fraction,
                   p.mean_worst_gap_seconds);
    }
    std::fprintf(out, "\n    ]}");
  }
  std::fprintf(out,
               "\n  ],\n"
               "  \"served_fraction_monotone\": %s\n"
               "}\n",
               monotone ? "true" : "false");
  std::fclose(out);
  std::printf("report written to %s\n", out_path.c_str());
  return monotone ? 0 : 1;
}
