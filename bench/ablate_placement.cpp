// Ablation: incremental deployment strategies (§3.3). Starting from a small
// base, add 6 satellites using three policies and compare the resulting
// population-weighted coverage:
//   clustered — all additions in the base's plane, adjacent phases
//               (what a naive regional operator might do);
//   random    — uniformly random slots;
//   greedy    — the paper's incentive-aligned gap filling (maximize marginal
//               population-weighted coverage).
#include "bench_common.hpp"
#include "core/placement.hpp"
#include "util/stats.hpp"

using namespace mpleo;

namespace {

double coverage_of(const cov::CoverageEngine& engine,
                   const std::vector<cov::GroundSite>& sites,
                   const std::vector<constellation::Satellite>& sats) {
  return engine.weighted_coverage_seconds(sats, sites);
}

constellation::Satellite place(const orbit::ClassicalElements& coe,
                               orbit::TimePoint epoch) {
  constellation::Satellite sat;
  sat.elements = coe;
  sat.epoch = epoch;
  return sat;
}

}  // namespace

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.duration_s = 2.0 * 86400.0;  // greedy search is the expensive part
  defaults.step_s = 120.0;
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: placement strategy for 6 added satellites",
      "greedy gap-filling > random > same-plane clustering", defaults);

  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);
  const std::vector<cov::GroundSite> sites =
      cov::sites_from_cities(cov::paper_cities());
  const auto base = constellation::single_plane(550e3, 53.0, 0.0, 6, scenario.epoch);
  const double window = engine.grid().duration_seconds();
  const double base_cov = coverage_of(engine, sites, base);

  constexpr int kAdditions = 6;

  // Strategy 1: clustered in the same plane right next to satellite 0.
  std::vector<constellation::Satellite> clustered = base;
  for (int i = 0; i < kAdditions; ++i) {
    auto coe = base.front().elements;
    coe.mean_anomaly_rad += util::deg_to_rad(4.0 * (i + 1));
    clustered.push_back(place(coe, scenario.epoch));
  }

  // Strategy 2: random slots (averaged over seeds).
  util::Xoshiro256PlusPlus rng(scenario.seed);
  util::RunningStats random_cov;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<constellation::Satellite> randomly = base;
    util::Xoshiro256PlusPlus trial_rng = rng.split(static_cast<std::uint64_t>(trial));
    for (int i = 0; i < kAdditions; ++i) {
      randomly.push_back(place(orbit::ClassicalElements::circular(
                                   trial_rng.uniform(525e3, 575e3),
                                   trial_rng.uniform() < 0.75 ? 53.0 : 97.6,
                                   trial_rng.uniform(0.0, 360.0),
                                   trial_rng.uniform(0.0, 360.0)),
                               scenario.epoch));
    }
    random_cov.add(coverage_of(engine, sites, randomly));
  }

  // Strategy 3: greedy gap-filling over a coarse slot grid.
  const core::PlacementOptimizer optimizer(engine, sites);
  constellation::SlotGrid grid;
  for (double raan = 0.0; raan < 360.0; raan += 45.0) grid.raan_values_deg.push_back(raan);
  for (double ph = 0.0; ph < 360.0; ph += 45.0) grid.phase_values_deg.push_back(ph);
  grid.inclination_values_deg = {43.0, 53.0, 70.0, 97.6};
  grid.altitude_values_m = {550e3};
  const auto slots = constellation::enumerate_slots(grid);
  const auto picks = optimizer.plan_incremental(base, slots, scenario.epoch, kAdditions);
  std::vector<constellation::Satellite> greedy = base;
  for (const auto& pick : picks) greedy.push_back(place(pick.slot.elements, scenario.epoch));

  util::Table table({"strategy", "weighted coverage", "% of window", "gain over base"});
  auto add_row = [&](const char* name, double cov) {
    table.add_row({name, bench::hours(cov), util::Table::pct(cov / window),
                   bench::hours(cov - base_cov)});
  };
  add_row("base (6 sats)", base_cov);
  add_row("clustered +6", coverage_of(engine, sites, clustered));
  add_row("random +6 (mean of 5)", random_cov.mean());
  add_row("greedy gap-fill +6", coverage_of(engine, sites, greedy));
  std::fputs(table.to_string().c_str(), stdout);

  std::printf("\ngreedy picks:\n");
  for (const auto& pick : picks) {
    std::printf("  %-28s +%s\n", pick.slot.label.c_str(),
                bench::hours(pick.gained_weighted_seconds).c_str());
  }
  return 0;
}
