// Figure 4a: population-weighted coverage gain from adding one randomly
// sampled satellite to an existing constellation of 1, 100, or 500.
//
// Paper anchors: base of 1 -> average gain over 1 hour, maximum over 4
// hours; gains shrink as the base grows.
#include "bench_common.hpp"
#include "util/stats.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  const sim::Scenario scenario = bench::start(
      argc, argv, "Fig 4a: marginal coverage of one added satellite",
      "base 1 -> ~1h avg gain (max >4h); decreasing for bases 100 and 500");
  bench::Experiment exp(scenario);

  const std::vector<cov::GroundSite> sites =
      cov::sites_from_cities(cov::paper_cities());
  cov::VisibilityCache cache(exp.engine, exp.catalog, sites);
  util::Xoshiro256PlusPlus rng(scenario.seed);
  const double window = exp.engine.grid().duration_seconds();

  util::Table table({"base satellites", "gain avg", "gain sd", "gain max", "gain min"});

  for (const std::size_t base_size : {1UL, 100UL, 500UL}) {
    util::RunningStats gain;
    for (std::size_t run = 0; run < scenario.runs; ++run) {
      util::Xoshiro256PlusPlus run_rng = rng.split(base_size * 1000 + run);
      auto indices =
          constellation::sample_indices(exp.catalog.size(), base_size + 1, run_rng);
      const std::vector<std::size_t> base(indices.begin(), indices.end() - 1);
      const double before = cache.weighted_coverage_fraction(base);
      const double after = cache.weighted_coverage_fraction(indices);
      gain.add((after - before) * window);
    }
    table.add_row({std::to_string(base_size), bench::hours(gain.mean()),
                   bench::hours(gain.stddev()), bench::hours(gain.max()),
                   bench::hours(gain.min())});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
