// Ablation (§4 "Bent-pipe architectures and ISLs"): how much coverage do
// inter-satellite links buy when ground stations are scarce?
//
// Setup: a terminal in Taipei, a 100-satellite Walker shell, and gateways
// drawn from the global GSaaS teleport inventory. Bent-pipe (0 hops) needs a
// satellite that sees both the terminal and a gateway at once; each extra
// ISL hop relaxes that.
#include "bench_common.hpp"
#include "net/ground_station.hpp"
#include "net/isl.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  sim::Scenario defaults;
  defaults.duration_s = 86400.0;
  defaults.step_s = 120.0;
  const sim::Scenario scenario = bench::start(
      argc, argv, "Ablation: ISL hops vs gateway count (Taipei terminal)",
      "ISLs substitute for ground stations: few gateways + hops ~ many gateways",
      defaults);

  const cov::CoverageEngine engine(scenario.grid(), scenario.elevation_mask_deg);
  constellation::WalkerShell shell;
  shell.label = "ISL";
  shell.plane_count = 10;
  shell.sats_per_plane = 10;
  shell.phasing_factor = 3;
  const auto sats = shell.build(scenario.epoch);
  const orbit::TopocentricFrame terminal(cov::taipei().location);

  // Gateway pools of increasing size from the teleport inventory.
  const auto listings = net::GsaasInventory::global_default().listings();
  auto gateways_of = [&](std::size_t count) {
    std::vector<cov::GroundSite> gws;
    for (std::size_t i = 0; i < std::min(count, listings.size()); ++i) {
      gws.push_back({listings[i].station.name,
                     orbit::TopocentricFrame(listings[i].station.location), 1.0});
    }
    return gws;
  };

  util::Table table({"gateways", "hops=0 (bent-pipe)", "hops=1", "hops=2", "hops=4"});
  for (const std::size_t gw_count : {1UL, 3UL, 6UL, 12UL}) {
    const auto gateways = gateways_of(gw_count);
    std::vector<std::string> row{std::to_string(gateways.size())};
    for (const int hops : {0, 1, 2, 4}) {
      net::IslConfig cfg;
      cfg.max_hops = hops;
      const cov::StepMask mask =
          net::isl_coverage_mask(engine, sats, terminal, gateways, cfg);
      row.push_back(util::Table::pct(mask.fraction()));
    }
    table.add_row(std::move(row));
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nreading: each column is Taipei coverage; moving right adds ISL\n"
              "hops, moving down adds rented gateways. ISLs and gateways are\n"
              "substitutes — the paper's no-ISL design works once the gateway\n"
              "pool is dense enough.\n");
  return 0;
}
