// Figure 5: coverage reduction when a random half of the constellation
// denies service, for constellations of 200, 500, 1000, 2000 satellites.
//
// Paper anchors: L=200 -> ~24% coverage drop (~1d16h of weighted coverage
// time); the loss shrinks to ~0.4% at L=2000.
#include "bench_common.hpp"
#include "core/robustness.hpp"
#include "util/stats.hpp"

using namespace mpleo;

int main(int argc, char** argv) {
  const sim::Scenario scenario = bench::start(
      argc, argv, "Fig 5: half the constellation withdraws",
      "L=200 -> ~24% drop (1d16h); L=2000 -> ~0.4% drop");
  bench::Experiment exp(scenario);

  const std::vector<cov::GroundSite> sites =
      cov::sites_from_cities(cov::paper_cities());
  cov::VisibilityCache cache(exp.engine, exp.catalog, sites);
  util::Xoshiro256PlusPlus rng(scenario.seed);
  const double window = exp.engine.grid().duration_seconds();

  util::Table table({"satellites (L)", "coverage before", "coverage after L/2 exit",
                     "lost time", "coverage drop %"});

  for (const std::size_t total : {200UL, 500UL, 1000UL, 2000UL}) {
    util::RunningStats before, after, drop_abs;
    for (std::size_t run = 0; run < scenario.runs; ++run) {
      util::Xoshiro256PlusPlus run_rng = rng.split(total * 7919 + run);
      const auto base =
          constellation::sample_indices(exp.catalog.size(), total, run_rng);
      // Withdraw a random half of the base.
      const auto pick = run_rng.sample_without_replacement(total, total / 2);
      std::vector<std::size_t> withdrawn;
      withdrawn.reserve(pick.size());
      for (std::size_t p : pick) withdrawn.push_back(base[p]);

      const core::WithdrawalImpact impact =
          core::withdrawal_impact(cache, base, withdrawn);
      before.add(impact.before_fraction);
      after.add(impact.after_fraction);
      // The paper's Fig-5 "% drop in coverage" is the absolute drop in the
      // weighted coverage fraction (24.17% at L=200, 0.37% at L=2000).
      drop_abs.add(impact.drop_fraction());
    }
    table.add_row({std::to_string(total), util::Table::pct(before.mean()),
                   util::Table::pct(after.mean()),
                   bench::hours((before.mean() - after.mean()) * window),
                   util::Table::pct(drop_abs.mean())});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}
