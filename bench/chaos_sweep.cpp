// Chaos sweep: centralized vs decentralized availability under correlated
// failure events (§2 + §3.4). A seeded fault::EventBook (storm, regional
// blackout, party withdrawal, mixed) is compiled — same seed, same draws —
// against a centralized single-party topology and a decentralized 4-party
// consortium of EQUAL fleet size, and replayed through the
// degradation-policy scheduler. The process exits non-zero if the
// empty-book identity flag fails, if decentralized worst-window
// availability drops below centralized on a withdrawal-bearing profile, or
// if any SLO field comes back NaN. Writes a machine-readable JSON report
// (default BENCH_chaos_sweep.json; override with --out=PATH).
#include <cmath>
#include <cstring>

#include "bench_common.hpp"
#include "core/chaos_sweep.hpp"

using namespace mpleo;

namespace {

bool withdrawal_bearing(fault::EventProfile profile) {
  return profile == fault::EventProfile::kWithdrawal ||
         profile == fault::EventProfile::kMixed;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_chaos_sweep.json";
  bool quick = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
      continue;
    }
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    rest.push_back(argv[i]);
  }

  sim::Scenario defaults;
  defaults.seed = 2042;
  defaults.threads = 0;  // hardware-sized pool unless --threads=N overrides
  const sim::Scenario scenario = bench::start(
      static_cast<int>(rest.size()), rest.data(),
      "Chaos sweep: correlated failures, centralized vs decentralized",
      "a party-withdrawal shock is a total loss for a centralized operator but "
      "a quarter-fleet loss for the consortium",
      defaults);

  core::ChaosSweepConfig config;
  config.event_seed = scenario.event_seed;
  config.event_intensity = scenario.event_intensity;
  if (scenario.events != fault::EventProfile::kOff) {
    config.profiles = {scenario.events};
  }
  // The chaos cells run with every mitigation armed; the identity pair
  // inside chaos_sweep() always uses a disabled policy instead.
  config.policy.enabled = true;
  config.policy.spare_hysteresis_margin = 0.15;
  config.policy.backoff_initial_steps = 2;
  config.policy.backoff_multiplier = 2.0;
  config.policy.backoff_max_steps = 16;
  config.policy.backoff_clean_horizon_steps = 8;
  if (quick) {
    config.duration_s = 2.0 * 3600.0;
    config.slo_window_steps = 15;
  }

  sim::RunContext context(scenario);
  const core::ChaosSweepResult sweep = core::chaos_sweep(config, context);

  bool slo_finite = true;
  bool availability_gate = true;
  util::Table table({"profile", "topology", "availability", "worst window",
                     "flaps", "detaches", "recoveries", "mean ttr s",
                     "max ttr s", "unrecovered"});
  for (const core::ChaosCell& cell : sweep.cells) {
    if (!std::isfinite(cell.slo.availability) ||
        !std::isfinite(cell.slo.worst_window_availability) ||
        !std::isfinite(cell.mean_recovery_s)) {
      slo_finite = false;
    }
    table.add_row({fault::to_string(cell.profile),
                   cell.decentralized ? "decentralized" : "centralized",
                   util::Table::pct(cell.slo.availability),
                   util::Table::pct(cell.slo.worst_window_availability),
                   util::Table::num(static_cast<double>(cell.slo.grant_flaps)),
                   util::Table::num(static_cast<double>(cell.failure_forced_detaches)),
                   util::Table::num(static_cast<double>(cell.slo.recovery_seconds.size())),
                   util::Table::num(cell.mean_recovery_s),
                   util::Table::num(cell.max_recovery_s),
                   util::Table::num(static_cast<double>(cell.slo.unrecovered_terminals))});
  }
  // Cells come in (decentralized, centralized) pairs per profile.
  for (std::size_t i = 0; i + 1 < sweep.cells.size(); i += 2) {
    const core::ChaosCell& dec = sweep.cells[i];
    const core::ChaosCell& cen = sweep.cells[i + 1];
    if (!withdrawal_bearing(dec.profile)) continue;
    if (dec.slo.worst_window_availability <
        cen.slo.worst_window_availability - 1e-12) {
      availability_gate = false;
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nempty book + disabled policy bit-identical to fault-free run: %s\n",
              sweep.empty_book_identity ? "yes" : "NO");
  std::printf("decentralized worst-window >= centralized on withdrawal profiles: %s\n",
              availability_gate ? "yes" : "NO");
  std::printf("every SLO field finite: %s\n", slo_finite ? "yes" : "NO");
  std::printf("storm grant flaps, hysteresis on vs off: %llu vs %llu\n",
              static_cast<unsigned long long>(sweep.storm_flaps_hysteresis_on),
              static_cast<unsigned long long>(sweep.storm_flaps_hysteresis_off));

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "chaos_sweep: cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"workload\": {\"duration_seconds\": %.1f, \"step_seconds\": %.1f,"
               " \"event_seed\": %llu, \"event_intensity\": %.4f,"
               " \"slo_window_steps\": %zu},\n"
               "  \"cells\": [",
               config.duration_s, config.step_s,
               static_cast<unsigned long long>(config.event_seed),
               config.event_intensity, config.slo_window_steps);
  for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
    const core::ChaosCell& cell = sweep.cells[i];
    std::fprintf(out,
                 "%s\n    {\"profile\": \"%s\", \"topology\": \"%s\","
                 " \"availability\": %.6f, \"worst_window_availability\": %.6f,"
                 " \"grant_flaps\": %llu, \"failure_forced_detaches\": %zu,"
                 " \"recoveries\": %zu, \"mean_recovery_seconds\": %.4f,"
                 " \"max_recovery_seconds\": %.4f, \"unrecovered_terminals\": %zu,"
                 " \"shed_terminal_steps\": %llu}",
                 i == 0 ? "" : ",", fault::to_string(cell.profile),
                 cell.decentralized ? "decentralized" : "centralized",
                 cell.slo.availability, cell.slo.worst_window_availability,
                 static_cast<unsigned long long>(cell.slo.grant_flaps),
                 cell.failure_forced_detaches, cell.slo.recovery_seconds.size(),
                 cell.mean_recovery_s, cell.max_recovery_s,
                 cell.slo.unrecovered_terminals,
                 static_cast<unsigned long long>(cell.slo.shed_terminal_steps));
  }
  std::fprintf(out,
               "\n  ],\n"
               "  \"empty_book_identity\": %s,\n"
               "  \"availability_gate\": %s,\n"
               "  \"slo_finite\": %s,\n"
               "  \"storm_flaps_hysteresis_on\": %llu,\n"
               "  \"storm_flaps_hysteresis_off\": %llu\n"
               "}\n",
               sweep.empty_book_identity ? "true" : "false",
               availability_gate ? "true" : "false", slo_finite ? "true" : "false",
               static_cast<unsigned long long>(sweep.storm_flaps_hysteresis_on),
               static_cast<unsigned long long>(sweep.storm_flaps_hysteresis_off));
  std::fclose(out);
  std::printf("report written to %s\n", out_path.c_str());
  return (sweep.empty_book_identity && availability_gate && slo_finite) ? 0 : 1;
}
